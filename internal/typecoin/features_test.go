package typecoin

import (
	"bytes"
	"errors"
	"testing"

	"typecoin/internal/bkey"
	"typecoin/internal/chainhash"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
	"typecoin/internal/proof"
	"typecoin/internal/wire"
)

// --- fallback lists (Section 5) ---

// fallbackFixture builds a state holding one token and a primary/fallback
// pair spending it: the primary discharges if(before(cutoff), good), the
// fallback returns the token.
func fallbackFixture(t *testing.T, cutoff uint64) (*State, *FallbackList) {
	t.Helper()
	owner := newKey(t, "owner").PubKey()
	s := NewState()
	t0 := NewTx()
	if err := t0.Basis.DeclareFam(lf.This("tok"), lf.KProp{}); err != nil {
		t.Fatal(err)
	}
	if err := t0.Basis.DeclareFam(lf.This("good"), lf.KProp{}); err != nil {
		t.Fatal(err)
	}
	tokL := logic.Atom(lf.This("tok"))
	redeem := logic.Lolli(tokL, logic.If(logic.Before(cutoff), logic.Atom(lf.This("good"))))
	if err := t0.Basis.DeclareProp(lf.This("redeem"), redeem); err != nil {
		t.Fatal(err)
	}
	t0.Grant = tokL
	t0.Outputs = []Output{{Type: tokL, Amount: 700, Owner: owner}}
	t0.Proof = proof.Lam{Name: "d", Ty: t0.Domain(),
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.V("c")}}}
	if _, err := s.CheckTx(t0, anyOracle()); err != nil {
		t.Fatal(err)
	}
	carrier0 := chainhash.HashB([]byte("fallback-c0"))
	if err := s.Apply(t0, carrier0); err != nil {
		t.Fatal(err)
	}
	op := wire.OutPoint{Hash: carrier0, Index: 0}
	tokG := tokAt(carrier0)
	goodG := logic.Atom(lf.TxRef(carrier0, "good"))

	primary := NewTx()
	primary.Inputs = []Input{{Source: op, Type: tokG, Amount: 700}}
	primary.Outputs = []Output{{Type: goodG, Amount: 700, Owner: owner}}
	primary.Proof = proof.Lam{Name: "d", Ty: primary.Domain(),
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.Apply(proof.Const{Ref: lf.TxRef(carrier0, "redeem")}, proof.V("a"))}}}

	// "A typical fallback transaction simply returns all inputs to their
	// original owners."
	fb := NewTx()
	fb.Inputs = primary.Inputs
	fb.Outputs = []Output{{Type: tokG, Amount: 700, Owner: owner}}
	fb.Proof = proof.Lam{Name: "d", Ty: fb.Domain(),
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.V("a")}}}
	return s, &FallbackList{Txs: []*Tx{primary, fb}}
}

func TestFallbackSelectPrimary(t *testing.T) {
	s, list := fallbackFixture(t, 5000)
	if err := list.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Before the cutoff the primary wins.
	tx, idx, err := list.Select(s, &logic.MapOracle{Time: 1000})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if idx != 0 || tx != list.Txs[0] {
		t.Errorf("selected index %d, want 0 (primary)", idx)
	}
	// After the cutoff the fallback is used instead.
	tx, idx, err = list.Select(s, &logic.MapOracle{Time: 9000})
	if err != nil {
		t.Fatalf("Select late: %v", err)
	}
	if idx != 1 || tx != list.Txs[1] {
		t.Errorf("selected index %d, want 1 (fallback)", idx)
	}
}

func TestFallbackValidateShape(t *testing.T) {
	s, list := fallbackFixture(t, 5000)
	_ = s
	// Different output amount breaks the same-bitcoin-transaction rule.
	bad := *list.Txs[1]
	bad.Outputs = []Output{{Type: bad.Outputs[0].Type, Amount: 1, Owner: bad.Outputs[0].Owner}}
	broken := &FallbackList{Txs: []*Tx{list.Txs[0], &bad}}
	if err := broken.Validate(); !errors.Is(err, ErrListShape) {
		t.Errorf("amount mismatch: %v", err)
	}
	// Different owner likewise.
	other := newKey(t, "other").PubKey()
	bad2 := *list.Txs[1]
	bad2.Outputs = []Output{{Type: bad2.Outputs[0].Type, Amount: 700, Owner: other}}
	broken2 := &FallbackList{Txs: []*Tx{list.Txs[0], &bad2}}
	if err := broken2.Validate(); !errors.Is(err, ErrListShape) {
		t.Errorf("owner mismatch: %v", err)
	}
	// Different input source likewise.
	bad3 := *list.Txs[1]
	bad3.Inputs = []Input{{Source: wire.OutPoint{Index: 9}, Type: bad3.Inputs[0].Type, Amount: 700}}
	broken3 := &FallbackList{Txs: []*Tx{list.Txs[0], &bad3}}
	if err := broken3.Validate(); !errors.Is(err, ErrListShape) {
		t.Errorf("source mismatch: %v", err)
	}
	// Empty list.
	if err := (&FallbackList{}).Validate(); !errors.Is(err, ErrListEmpty) {
		t.Errorf("empty list: %v", err)
	}
}

func TestFallbackNoValidMember(t *testing.T) {
	s, list := fallbackFixture(t, 5000)
	// Only the (expiring) primary, no fallback: past the cutoff nothing
	// is valid and the inputs are spoiled.
	lonely := &FallbackList{Txs: list.Txs[:1]}
	if _, _, err := lonely.Select(s, &logic.MapOracle{Time: 9000}); !errors.Is(err, ErrNoValidTx) {
		t.Errorf("want ErrNoValidTx, got %v", err)
	}
}

func TestFallbackListHash(t *testing.T) {
	_, list := fallbackFixture(t, 5000)
	// A singleton list hashes like its lone transaction (ordinary
	// transactions are the special case).
	single := &FallbackList{Txs: list.Txs[:1]}
	if single.Hash() != list.Txs[0].Hash() {
		t.Error("singleton list hash differs from tx hash")
	}
	// The full list hashes differently, and order matters.
	if list.Hash() == single.Hash() {
		t.Error("list hash ignores fallbacks")
	}
	reversed := &FallbackList{Txs: []*Tx{list.Txs[1], list.Txs[0]}}
	if reversed.Hash() == list.Hash() {
		t.Error("list hash ignores order")
	}
}

// --- open transactions (Section 7) ---

func openFixture(t *testing.T) (*OpenTx, wire.OutPoint) {
	t.Helper()
	alice := newKey(t, "alice").PubKey()
	prizeOp := wire.OutPoint{Hash: chainhash.HashB([]byte("prize")), Index: 0}
	sol := Atom0(t)
	template := NewTx()
	template.Inputs = []Input{
		{Type: sol, Amount: 100},                      // hole 0
		{Source: prizeOp, Type: logic.One, Amount: 5}, // fixed
	}
	template.Outputs = []Output{
		{Type: sol, Amount: 100, Owner: alice},
		{Type: logic.One, Amount: 5}, // owner hole
	}
	template.Proof = proof.Lam{Name: "d", Ty: logic.One,
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.V("a")}}}
	return &OpenTx{Template: template, OpenInputs: []int{0}, OpenOwners: []int{1}}, prizeOp
}

// Atom0 builds a throwaway atomic proposition.
func Atom0(t *testing.T) logic.Prop {
	t.Helper()
	return logic.Atom(lf.TxRef(chainhash.HashB([]byte("base")), "solution"))
}

func TestOpenFillAndMatch(t *testing.T) {
	open, _ := openFixture(t)
	bob := newKey(t, "bob").PubKey()
	src := wire.OutPoint{Hash: chainhash.HashB([]byte("sol")), Index: 1}
	filled, err := open.Fill(
		map[int]wire.OutPoint{0: src},
		map[int]*bkey.PublicKey{1: bob})
	if err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if filled.Inputs[0].Source != src {
		t.Error("input hole not filled")
	}
	if filled.Outputs[1].Owner == nil {
		t.Error("owner hole not filled")
	}
	if err := open.Matches(filled); err != nil {
		t.Errorf("Matches: %v", err)
	}
	// The template itself is unchanged (holes still open).
	if open.Template.Outputs[1].Owner != nil {
		t.Error("Fill mutated the template")
	}
}

func TestOpenFillErrors(t *testing.T) {
	open, _ := openFixture(t)
	bob := newKey(t, "bob").PubKey()
	if _, err := open.Fill(nil, map[int]*bkey.PublicKey{1: bob}); !errors.Is(err, ErrHoleUnfilled) {
		t.Errorf("missing input: %v", err)
	}
	src := wire.OutPoint{Hash: chainhash.HashB([]byte("sol"))}
	if _, err := open.Fill(map[int]wire.OutPoint{0: src}, nil); !errors.Is(err, ErrHoleUnfilled) {
		t.Errorf("missing owner: %v", err)
	}
}

func TestOpenMatchesRejectsTampering(t *testing.T) {
	open, prizeOp := openFixture(t)
	bob := newKey(t, "bob").PubKey()
	src := wire.OutPoint{Hash: chainhash.HashB([]byte("sol")), Index: 1}
	filled, err := open.Fill(map[int]wire.OutPoint{0: src}, map[int]*bkey.PublicKey{1: bob})
	if err != nil {
		t.Fatal(err)
	}

	// Change a fixed input source: not an instance.
	tampered := *filled
	tampered.Inputs = append([]Input(nil), filled.Inputs...)
	tampered.Inputs[1].Source = wire.OutPoint{Hash: chainhash.HashB([]byte("other"))}
	if err := open.Matches(&tampered); !errors.Is(err, ErrNotInstance) {
		t.Errorf("fixed input tampering: %v", err)
	}
	_ = prizeOp

	// Change an amount.
	tampered2 := *filled
	tampered2.Outputs = append([]Output(nil), filled.Outputs...)
	tampered2.Outputs[1].Amount = 9999
	if err := open.Matches(&tampered2); !errors.Is(err, ErrNotInstance) {
		t.Errorf("amount tampering: %v", err)
	}

	// Change the fixed owner.
	tampered3 := *filled
	tampered3.Outputs = append([]Output(nil), filled.Outputs...)
	tampered3.Outputs[0].Owner = bob
	if err := open.Matches(&tampered3); !errors.Is(err, ErrNotInstance) {
		t.Errorf("fixed owner tampering: %v", err)
	}

	// Change the proof body (beyond the top-level annotation).
	tampered4 := *filled
	tampered4.Proof = proof.Lam{Name: "d", Ty: filled.Domain(), Body: proof.Unit{}}
	if err := open.Matches(&tampered4); !errors.Is(err, ErrNotInstance) {
		t.Errorf("proof tampering: %v", err)
	}
}

// --- batch encoding and checking (Section 3.2) ---

func TestBatchEncodeDecodeRoundTrip(t *testing.T) {
	owner := newKey(t, "owner").PubKey()
	tokG := tokAt(chainhash.HashB([]byte("basis")))
	src := wire.OutPoint{Hash: chainhash.HashB([]byte("deposit")), Index: 0}
	transfer := NewTx()
	transfer.Inputs = []Input{{Source: src, Type: tokG, Amount: 300}}
	transfer.Outputs = []Output{{Type: tokG, Amount: 300, Owner: owner}}
	transfer.Proof = proof.Lam{Name: "d", Ty: transfer.DomainOffChain(),
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.V("a")}}}
	b := &Batch{
		Sources:     []Input{{Source: src, Type: tokG, Amount: 300}},
		Seq:         []*Tx{transfer},
		Leaves:      []Output{{Type: tokG, Amount: 300, Owner: owner}},
		LeafSources: []wire.OutPoint{{Hash: transfer.Hash(), Index: 0}},
	}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBatch(&buf)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if back.Hash() != b.Hash() {
		t.Error("batch hash changed through round trip")
	}
	if buf.Len() != 0 {
		t.Error("trailing bytes")
	}
}

func TestCheckBatchRejectsBadShapes(t *testing.T) {
	owner := newKey(t, "owner").PubKey()
	s := NewState()
	t0 := grantTx(t, declTok(t), tok(), owner, 300)
	if _, err := s.CheckTx(t0, anyOracle()); err != nil {
		t.Fatal(err)
	}
	carrier0 := chainhash.HashB([]byte("batch-c0"))
	if err := s.Apply(t0, carrier0); err != nil {
		t.Fatal(err)
	}
	src := wire.OutPoint{Hash: carrier0, Index: 0}
	tokG := tokAt(carrier0)

	transfer := NewTx()
	transfer.Inputs = []Input{{Source: src, Type: tokG, Amount: 300}}
	transfer.Outputs = []Output{{Type: tokG, Amount: 300, Owner: owner}}
	transfer.Proof = proof.Lam{Name: "d", Ty: transfer.DomainOffChain(),
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.V("a")}}}
	leafOp := wire.OutPoint{Hash: transfer.Hash(), Index: 0}

	good := &Batch{
		Sources:     []Input{{Source: src, Type: tokG, Amount: 300}},
		Seq:         []*Tx{transfer},
		Leaves:      []Output{{Type: tokG, Amount: 300, Owner: owner}},
		LeafSources: []wire.OutPoint{leafOp},
	}
	if err := s.CheckBatch(good); err != nil {
		t.Fatalf("good batch rejected: %v", err)
	}

	// Empty batch.
	if err := s.CheckBatch(&Batch{}); !errors.Is(err, ErrBatchEmpty) {
		t.Errorf("empty: %v", err)
	}
	// Unknown source.
	unknown := *good
	unknown.Sources = []Input{{Source: wire.OutPoint{Index: 7}, Type: tokG, Amount: 300}}
	if err := s.CheckBatch(&unknown); !errors.Is(err, ErrInputUnknown) {
		t.Errorf("unknown source: %v", err)
	}
	// A leaf that is not a survivor.
	badLeaf := *good
	badLeaf.LeafSources = []wire.OutPoint{{Hash: transfer.Hash(), Index: 5}}
	if err := s.CheckBatch(&badLeaf); !errors.Is(err, ErrBatchUnbalance) {
		t.Errorf("bad leaf: %v", err)
	}
	// A dropped resource (leaf missing).
	dropped := *good
	dropped.Leaves = nil
	dropped.LeafSources = nil
	if err := s.CheckBatch(&dropped); !errors.Is(err, ErrBatchEmpty) {
		t.Errorf("dropped: %v", err)
	}
	// An unconsumed source.
	t0b := grantTx(t, declTok(t), tok(), owner, 50)
	if _, err := s.CheckTx(t0b, anyOracle()); err != nil {
		t.Fatal(err)
	}
	carrier0b := chainhash.HashB([]byte("batch-c0b"))
	if err := s.Apply(t0b, carrier0b); err != nil {
		t.Fatal(err)
	}
	extraSrc := *good
	extraSrc.Sources = append(append([]Input(nil), good.Sources...),
		Input{Source: wire.OutPoint{Hash: carrier0b, Index: 0}, Type: tokAt(carrier0b), Amount: 50})
	if err := s.CheckBatch(&extraSrc); !errors.Is(err, ErrBatchSource) {
		t.Errorf("unconsumed source: %v", err)
	}
}

// --- off-chain checking (Section 3.2 restrictions) ---

func TestOffChainReceiptRestriction(t *testing.T) {
	owner := newKey(t, "owner").PubKey()
	s := NewState()
	t0 := grantTx(t, declTok(t), tok(), owner, 300)
	if _, err := s.CheckTx(t0, anyOracle()); err != nil {
		t.Fatal(err)
	}
	carrier0 := chainhash.HashB([]byte("oc-c0"))
	if err := s.Apply(t0, carrier0); err != nil {
		t.Fatal(err)
	}
	src := wire.OutPoint{Hash: carrier0, Index: 0}
	tokG := tokAt(carrier0)

	// A proof over the FULL on-chain domain (receipts included) is
	// rejected off-chain with the dedicated error.
	tx := NewTx()
	tx.Inputs = []Input{{Source: src, Type: tokG, Amount: 300}}
	tx.Outputs = []Output{{Type: tokG, Amount: 300, Owner: owner}}
	tx.Proof = proof.Lam{Name: "d", Ty: tx.Domain(),
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.V("a")}}}
	if err := s.CheckTxOffChain(tx); !errors.Is(err, ErrOffChainReceipt) {
		t.Errorf("want ErrOffChainReceipt, got %v", err)
	}
}

// --- the ledger applies same-block dependencies in order (regression) ---

// TestVerifyBasisDependency: a transaction that references another's
// basis constants without consuming its outputs still requires it in the
// upstream set, and chain-order replay handles it (regression test for
// the basis-dependency ordering bug).
func TestVerifyBasisDependency(t *testing.T) {
	owner := newKey(t, "owner").PubKey()
	s := NewState()
	// T0 declares tok and a rule mk : 1 -o tok, but grants nothing.
	t0 := NewTx()
	declTok(t)(t0.Basis)
	if err := t0.Basis.DeclareProp(lf.This("mk"), logic.Lolli(logic.One, tok())); err != nil {
		t.Fatal(err)
	}
	t0.Outputs = []Output{{Type: logic.One, Amount: 5, Owner: owner}}
	t0.Proof = proof.Lam{Name: "d", Ty: t0.Domain(), Body: proof.Unit{}}
	if _, err := s.CheckTx(t0, anyOracle()); err != nil {
		t.Fatal(err)
	}
	carrier0 := chainhash.HashB([]byte("dep-c0"))
	if err := s.Apply(t0, carrier0); err != nil {
		t.Fatal(err)
	}
	// T1 uses T0's rule but takes NO inputs from T0.
	t1 := NewTx()
	tokG := tokAt(carrier0)
	t1.Outputs = []Output{{Type: tokG, Amount: 5, Owner: owner}}
	t1.Proof = proof.Lam{Name: "d", Ty: t1.Domain(),
		Body: proof.Apply(proof.Const{Ref: lf.TxRef(carrier0, "mk")}, proof.Unit{})}
	if _, err := s.CheckTx(t1, anyOracle()); err != nil {
		t.Fatal(err)
	}
	// T1's referenced carriers include T0's.
	refs := t1.ReferencedCarriers()
	found := false
	for _, h := range refs {
		if h == carrier0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ReferencedCarriers %v missing %s", refs, carrier0)
	}
}

func TestTxEncodeEscrowRoundTrip(t *testing.T) {
	owner := newKey(t, "owner").PubKey()
	a1 := newKey(t, "agent1").PubKey()
	a2 := newKey(t, "agent2").PubKey()
	a3 := newKey(t, "agent3").PubKey()
	tx := grantTx(t, declTok(t), tok(), owner, 500)
	tx.Outputs[0].Escrow = &EscrowLock{M: 2, Keys: []*bkey.PublicKey{a1, a2, a3}}
	// The proof's domain annotation is stale after adding escrow? No:
	// escrow does not enter Domain(). Re-check and round trip.
	back, err := DecodeBytes(tx.Bytes())
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	if back.Hash() != tx.Hash() {
		t.Error("hash changed")
	}
	if back.Outputs[0].Escrow == nil || back.Outputs[0].Escrow.M != 2 ||
		len(back.Outputs[0].Escrow.Keys) != 3 {
		t.Fatalf("escrow lock lost: %+v", back.Outputs[0].Escrow)
	}
	// The carrier output prefix matches between original and decoded.
	o1, err := CarrierOutputs(tx)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := CarrierOutputs(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(o1[0].PkScript, o2[0].PkScript) {
		t.Error("escrowed carrier script differs after round trip")
	}
}

// TestPrintingPressGrant: "the bank could include the resource
// (all n:nat. coin n) in the affine grant and hang on to it, thus giving
// itself the equivalent of a printing press ... creating persistent
// resources in the affine grant is an important idiom" (Section 6).
func TestPrintingPressGrant(t *testing.T) {
	bank := newKey(t, "bank").PubKey()
	s := NewState()
	tx := NewTx()
	if err := tx.Basis.DeclareFam(lf.This("coin"), lf.KArrow(lf.NatFam, lf.KProp{})); err != nil {
		t.Fatal(err)
	}
	coinP := func(m lf.Term) logic.Prop { return logic.Atom(lf.This("coin"), m) }
	// The press: a persistent printing capability in the grant. If the
	// same proposition appeared in the BASIS, anyone could print money;
	// in the grant, only this transaction's proof can, and it routes the
	// press to the bank.
	press := logic.Bang(logic.Forall("n", lf.NatFam, coinP(lf.Var(0, "n"))))
	tx.Grant = press
	tx.Outputs = []Output{
		{Type: coinP(lf.Nat(7)), Amount: 1000, Owner: bank},
		{Type: coinP(lf.Nat(9)), Amount: 1000, Owner: bank},
		{Type: press, Amount: 1000, Owner: bank}, // keep the press
	}
	// Proof: open the bang once, mint twice, and re-bang the press for
	// the output (persistent hypotheses survive inside bangs).
	tx.Proof = proof.Lam{Name: "d", Ty: tx.Domain(),
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.LetBang{Name: "mint", Of: proof.V("c"),
					Body: proof.TensorIntro(
						proof.TApp{Fn: proof.V("mint"), Arg: lf.Nat(7)},
						proof.TApp{Fn: proof.V("mint"), Arg: lf.Nat(9)},
						proof.BangI{Of: proof.V("mint")},
					)}}}}
	if _, err := s.CheckTx(tx, anyOracle()); err != nil {
		t.Fatalf("printing press: %v", err)
	}
	// The press proposition is fresh (usable as a grant) — but the same
	// proposition placed in the basis would be a disaster; freshness
	// still permits it (it is local), which is exactly why the paper
	// warns: "If (all n:nat. coin n) instead appeared in the basis, then
	// anyone could print arbitrary amounts of money!" The system cannot
	// forbid it; the bank just must not do it.
	if err := logic.FreshProp(press); err != nil {
		t.Errorf("press not fresh: %v", err)
	}
}
