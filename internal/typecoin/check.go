package typecoin

import (
	"errors"
	"fmt"

	"typecoin/internal/bkey"
	"typecoin/internal/chainhash"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
	"typecoin/internal/proof"
	"typecoin/internal/wire"
)

// Checking errors callers may distinguish.
var (
	ErrNoOutputs      = errors.New("typecoin: transaction has no outputs")
	ErrInputUnknown   = errors.New("typecoin: input does not name a known typecoin output")
	ErrInputTypeWrong = errors.New("typecoin: input type disagrees with upstream output type")
	ErrConditionFalse = errors.New("typecoin: top-level condition does not hold")
	ErrProofWrongType = errors.New("typecoin: proof term does not prove the transaction balance")
)

// State is the Typecoin view of one chain: the accumulated global basis
// and the types of the (not yet Typecoin-spent) typed outputs, keyed by
// carrier outpoint. Chain formation (the judgement 𝔗 : Σ) is the
// sequence of Apply calls.
type State struct {
	global   *logic.Basis
	outTypes map[wire.OutPoint]outRecord
	txs      map[chainhash.Hash]*Tx            // by Typecoin hash
	batches  map[chainhash.Hash]*Batch         // by batch hash
	carriers map[chainhash.Hash]chainhash.Hash // Typecoin/batch hash -> carrier txid
	origin   map[wire.OutPoint]chainhash.Hash  // carrier outpoint -> producing hash
	spends   map[wire.OutPoint]chainhash.Hash  // consumed outpoint -> consuming hash
}

type outRecord struct {
	prop   logic.Prop
	amount int64
	owner  bkey.Principal
}

// NewState creates an empty Typecoin chain state.
func NewState() *State {
	return &State{
		global:   logic.NewBasis(nil),
		outTypes: make(map[wire.OutPoint]outRecord),
		txs:      make(map[chainhash.Hash]*Tx),
		batches:  make(map[chainhash.Hash]*Batch),
		carriers: make(map[chainhash.Hash]chainhash.Hash),
		origin:   make(map[wire.OutPoint]chainhash.Hash),
		spends:   make(map[wire.OutPoint]chainhash.Hash),
	}
}

// GlobalBasis returns the accumulated global basis.
func (s *State) GlobalBasis() *logic.Basis { return s.global }

// ResolveOutput returns the type of a typed output, if known and not yet
// consumed by a Typecoin transaction in this state.
func (s *State) ResolveOutput(op wire.OutPoint) (logic.Prop, bool) {
	rec, ok := s.outTypes[op]
	if !ok {
		return nil, false
	}
	return rec.prop, true
}

// TxByHash returns an accepted Typecoin transaction.
func (s *State) TxByHash(h chainhash.Hash) (*Tx, bool) {
	tx, ok := s.txs[h]
	return tx, ok
}

// CarrierOf returns the carrier Bitcoin txid of an accepted transaction.
func (s *State) CarrierOf(h chainhash.Hash) (chainhash.Hash, bool) {
	c, ok := s.carriers[h]
	return c, ok
}

// OriginOf returns the Typecoin transaction hash that created a typed
// output.
func (s *State) OriginOf(op wire.OutPoint) (chainhash.Hash, bool) {
	h, ok := s.origin[op]
	return h, ok
}

// CheckTx validates the transaction formation judgement 𝔗; Σ |- T ok
// against this state: local declarations, freshness, input/output
// proposition formation, input-type agreement with upstream outputs, the
// proof term's type, and the top-level condition (judged by oracle).
// It returns the transaction's top-level condition.
func (s *State) CheckTx(tx *Tx, oracle logic.Oracle) (logic.Cond, error) {
	_, cond, err := s.checkNoCondition(tx)
	if err != nil {
		return nil, err
	}
	holds, err := logic.EvalCond(cond, oracle)
	if err != nil {
		return nil, fmt.Errorf("typecoin: evaluating condition %s: %w", cond, err)
	}
	if !holds {
		return cond, fmt.Errorf("%w: %s", ErrConditionFalse, cond)
	}
	return cond, nil
}

// checkNoCondition performs every check except evaluating the top-level
// condition, returning the layered basis and the condition.
func (s *State) checkNoCondition(tx *Tx) (*logic.Basis, logic.Cond, error) {
	if len(tx.Outputs) == 0 {
		// The metadata hash needs at least one carrier output, and the
		// formalism always routes resources somewhere.
		return nil, nil, ErrNoOutputs
	}

	// Local basis: only this.l declarations, well-formed, fresh.
	if err := logic.CheckLocalDecls(tx.Basis); err != nil {
		return nil, nil, err
	}
	layered, err := tx.Basis.Rebase(s.global)
	if err != nil {
		return nil, nil, fmt.Errorf("typecoin: rebasing local basis: %w", err)
	}
	if err := checkBasisFormation(layered, tx.Basis); err != nil {
		return nil, nil, err
	}
	if err := logic.FreshBasis(tx.Basis); err != nil {
		return nil, nil, fmt.Errorf("typecoin: basis freshness: %w", err)
	}

	// Affine grant: well-formed and fresh.
	if err := logic.CheckProp(layered, nil, tx.Grant); err != nil {
		return nil, nil, fmt.Errorf("typecoin: grant: %w", err)
	}
	if err := logic.FreshProp(tx.Grant); err != nil {
		return nil, nil, fmt.Errorf("typecoin: grant freshness: %w", err)
	}

	// Inputs: well-formed propositions that agree with the upstream
	// output types, and no input consumed twice (condition 3).
	seen := make(map[wire.OutPoint]bool, len(tx.Inputs))
	for i, in := range tx.Inputs {
		if seen[in.Source] {
			return nil, nil, fmt.Errorf("typecoin: input %d consumes %v twice", i, in.Source)
		}
		seen[in.Source] = true
		if err := logic.CheckProp(layered, nil, in.Type); err != nil {
			return nil, nil, fmt.Errorf("typecoin: input %d type: %w", i, err)
		}
		rec, ok := s.outTypes[in.Source]
		if !ok {
			return nil, nil, fmt.Errorf("%w: %v", ErrInputUnknown, in.Source)
		}
		eq, err := logic.PropEqual(in.Type, rec.prop)
		if err != nil {
			return nil, nil, err
		}
		if !eq {
			return nil, nil, fmt.Errorf("%w: input %d claims %s, upstream output has %s",
				ErrInputTypeWrong, i, in.Type, rec.prop)
		}
		if in.Amount != rec.amount {
			return nil, nil, fmt.Errorf("typecoin: input %d claims %d satoshi, upstream output carries %d",
				i, in.Amount, rec.amount)
		}
	}

	// Outputs: well-formed propositions.
	for i, out := range tx.Outputs {
		if out.Owner == nil {
			return nil, nil, fmt.Errorf("typecoin: output %d has no owner", i)
		}
		if out.Amount < 0 {
			return nil, nil, fmt.Errorf("typecoin: output %d has negative amount", i)
		}
		if err := logic.CheckProp(layered, nil, out.Type); err != nil {
			return nil, nil, fmt.Errorf("typecoin: output %d type: %w", i, err)
		}
	}

	// The proof term: M : (C (x) A (x) R) -o if(phi, B). A missing
	// conditional is read as if(true, B).
	if tx.Proof == nil {
		return nil, nil, errors.New("typecoin: transaction has no proof term")
	}
	got, err := proof.Infer(layered, tx.SigPayload(), tx.Proof)
	if err != nil {
		return nil, nil, fmt.Errorf("typecoin: proof: %w", err)
	}
	lolli, ok := got.(logic.PLolli)
	if !ok {
		return nil, nil, fmt.Errorf("%w: proof has type %s", ErrProofWrongType, got)
	}
	eq, err := logic.PropEqual(lolli.A, tx.Domain())
	if err != nil {
		return nil, nil, err
	}
	if !eq {
		return nil, nil, fmt.Errorf("%w: proof consumes %s, want %s",
			ErrProofWrongType, lolli.A, tx.Domain())
	}
	cond := logic.True
	body := lolli.B
	if ifp, ok := body.(logic.PIf); ok {
		cond = ifp.Cond
		body = ifp.Body
	}
	eq, err = logic.PropEqual(body, tx.Codomain())
	if err != nil {
		return nil, nil, err
	}
	if !eq {
		return nil, nil, fmt.Errorf("%w: proof produces %s, want %s",
			ErrProofWrongType, body, tx.Codomain())
	}
	return layered, cond, nil
}

// checkBasisFormation validates each local declaration against the
// layered basis (Sigma_global |- Sigma ok).
func checkBasisFormation(layered *logic.Basis, local *logic.Basis) error {
	for _, r := range local.LocalFamRefs() {
		k, _ := local.LocalFam(r)
		if err := lf.CheckKind(layered, nil, k); err != nil {
			return fmt.Errorf("typecoin: declaration %s: %w", r, err)
		}
	}
	for _, r := range local.LocalTermRefs() {
		f, _ := local.LocalTerm(r)
		if err := lf.CheckFamilyIsType(layered, nil, f); err != nil {
			return fmt.Errorf("typecoin: declaration %s: %w", r, err)
		}
	}
	for _, r := range local.LocalPropRefs() {
		p, _ := local.LocalProp(r)
		if err := logic.CheckProp(layered, nil, p); err != nil {
			return fmt.Errorf("typecoin: declaration %s: %w", r, err)
		}
	}
	return nil
}

// Apply incorporates an accepted transaction into the state: performs the
// [txid/this] substitution with the carrier txid, accumulates the local
// basis into the global basis, consumes the input outpoints, and records
// the output types at the carrier's outpoints.
//
// The caller is responsible for having run CheckTx first (and for the
// Bitcoin-level guarantees: carrier confirmed, amounts matching).
func (s *State) Apply(tx *Tx, carrierID chainhash.Hash) error {
	ref := lf.TxRef(carrierID, "")
	newGlobal, err := tx.Basis.SubstRef(ref, s.global)
	if err != nil {
		return fmt.Errorf("typecoin: accumulating basis: %w", err)
	}
	tch := tx.Hash()
	if _, dup := s.txs[tch]; dup {
		return fmt.Errorf("typecoin: transaction %s already applied", tch)
	}
	// Affine guard: no input may have been consumed by an earlier
	// transaction in this state (CheckTx verifies this against outTypes,
	// but Apply is also reachable via fallback selection paths).
	for _, in := range tx.Inputs {
		if by, spent := s.spends[in.Source]; spent {
			return fmt.Errorf("typecoin: affine violation: input %v already consumed by %s", in.Source, by)
		}
	}
	s.global = newGlobal
	s.txs[tch] = tx
	s.carriers[tch] = carrierID
	for _, in := range tx.Inputs {
		delete(s.outTypes, in.Source)
		s.spends[in.Source] = tch
	}
	for i, out := range tx.Outputs {
		op := wire.OutPoint{Hash: carrierID, Index: uint32(i)}
		s.outTypes[op] = outRecord{
			prop:   logic.SubstRefProp(out.Type, ref),
			amount: out.Amount,
			owner:  out.OwnerPrincipal(),
		}
		s.origin[op] = tch
	}
	return nil
}

// OutputCount reports how many unconsumed typed outputs the state tracks
// (test and bench helper).
func (s *State) OutputCount() int { return len(s.outTypes) }

// AuditAffine verifies the between-transaction affine invariant the paper
// inherits from Bitcoin: no typed output is both live and consumed, each
// consumed output names exactly one applied consumer, every applied
// transaction's inputs are recorded as consumed by it, and every live
// output traces to an applied producer. It returns the first violation.
func (s *State) AuditAffine() error {
	for op, by := range s.spends {
		if _, live := s.outTypes[op]; live {
			return fmt.Errorf("typecoin: affine violation: output %v both live and consumed by %s", op, by)
		}
		if _, ok := s.txs[by]; !ok {
			if _, ok := s.batches[by]; !ok {
				return fmt.Errorf("typecoin: output %v consumed by unapplied transaction %s", op, by)
			}
		}
	}
	for tch, tx := range s.txs {
		for _, in := range tx.Inputs {
			if by, ok := s.spends[in.Source]; !ok || by != tch {
				return fmt.Errorf("typecoin: applied transaction %s input %v recorded as consumed by %s",
					tch, in.Source, by)
			}
		}
	}
	for bh, b := range s.batches {
		for _, src := range b.Sources {
			if by, ok := s.spends[src.Source]; !ok || by != bh {
				return fmt.Errorf("typecoin: applied batch %s source %v recorded as consumed by %s",
					bh, src.Source, by)
			}
		}
	}
	for op := range s.outTypes {
		oh, ok := s.origin[op]
		if !ok {
			continue // seeded outputs (SeedOutput) carry no origin
		}
		if _, okT := s.txs[oh]; !okT {
			if _, okB := s.batches[oh]; !okB {
				return fmt.Errorf("typecoin: live output %v produced by unapplied transaction %s", op, oh)
			}
		}
	}
	return nil
}

// NewStateForBatch creates a state sharing an existing global basis with
// no outputs: batch servers replay their off-chain history against it.
func NewStateForBatch(global *logic.Basis) *State {
	s := NewState()
	if global != nil {
		s.global = global
	}
	return s
}

// SeedOutput registers an externally verified typed output (batch
// servers seed from the ledger before replaying off-chain history).
func (s *State) SeedOutput(op wire.OutPoint, prop logic.Prop, amount int64, owner bkey.Principal) {
	s.outTypes[op] = outRecord{prop: prop, amount: amount, owner: owner}
}
