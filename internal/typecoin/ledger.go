package typecoin

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"typecoin/internal/chain"
	"typecoin/internal/chainhash"
	"typecoin/internal/logic"
	"typecoin/internal/store"
	"typecoin/internal/wire"
)

// Ledger follows a chain and maintains the Typecoin state for it: as
// carrier transactions confirm, their (out-of-band announced) Typecoin
// transactions are checked and applied. This is what a Typecoin client
// runs next to its Bitcoin node.
//
// Typecoin transactions travel out of band — the network sees only their
// hash — so the ledger can only interpret carriers whose Typecoin
// transaction it has been shown via Announce.
type Ledger struct {
	chain   *chain.Chain
	minConf int

	// st is non-nil for ledgers created with OpenLedger: announcements
	// and applied markers are written through to the chain's store (see
	// persist.go). The typed state itself is replay-derived on startup.
	st store.Store

	mu    sync.Mutex
	state *State
	// known maps a commitment hash to the announced object: a
	// *FallbackList (ordinary transactions are singleton lists) or a
	// *Batch.
	known map[chainhash.Hash]interface{}
	// waiting maps carrier txid -> commitment hash for confirmed-but-not-
	// yet-deep-enough carriers.
	waiting map[chainhash.Hash]chainhash.Hash
	// seen maps every commitment hash observed on the main chain to its
	// carrier txid, so announcements arriving after confirmation still
	// apply (announce-after-mine).
	seen    map[chainhash.Hash]chainhash.Hash
	applied map[chainhash.Hash]bool // carrier txids already applied
}

// NewLedger creates a ledger over c that applies Typecoin transactions
// once their carriers have minConf confirmations (the paper uses about
// five; tests use one).
func NewLedger(c *chain.Chain, minConf int) *Ledger {
	if minConf < 1 {
		minConf = 1
	}
	l := &Ledger{
		chain:   c,
		minConf: minConf,
		state:   NewState(),
		known:   make(map[chainhash.Hash]interface{}),
		waiting: make(map[chainhash.Hash]chainhash.Hash),
		seen:    make(map[chainhash.Hash]chainhash.Hash),
		applied: make(map[chainhash.Hash]bool),
	}
	c.Subscribe(l.onChainChange)
	return l
}

// MinConf returns the ledger's confirmation depth.
func (l *Ledger) MinConf() int { return l.minConf }

// Announce registers a Typecoin transaction so the ledger can interpret
// its carrier when it confirms. Announcing is idempotent.
func (l *Ledger) Announce(tx *Tx) {
	l.AnnounceList(&FallbackList{Txs: []*Tx{tx}})
}

// AnnounceList registers a fallback list (Section 5): the carrier commits
// to the list hash and the first valid member is applied.
func (l *Ledger) AnnounceList(list *FallbackList) {
	l.announce(list.Hash(), list)
}

// AnnounceBatch registers a batch-mode withdrawal (Section 3.2).
func (l *Ledger) AnnounceBatch(b *Batch) {
	l.announce(b.Hash(), b)
}

func (l *Ledger) announce(h chainhash.Hash, obj interface{}) {
	l.mu.Lock()
	if _, ok := l.known[h]; !ok {
		l.known[h] = obj
		// Announcements travel out of band and cannot be rederived from
		// the chain, so they are persisted the moment they arrive.
		l.persistAnnouncementLocked(h, obj)
	}
	// The carrier may already be on chain (announce-after-mine): the
	// seen index remembers every metadata-bearing carrier.
	rebuild := false
	if carrierID, ok := l.seen[h]; ok && !l.applied[carrierID] {
		l.waiting[carrierID] = h
		// If carriers later in blockchain order have already been
		// applied, merely sweeping would apply this one out of order —
		// and a Typecoin double-spend would then be resolved by arrival
		// order instead of blockchain order, diverging between nodes.
		// Replay from scratch so blockchain order decides.
		rebuild = l.appliedAfterLocked(carrierID)
	}
	l.mu.Unlock()
	if rebuild {
		l.rebuild()
		return
	}
	l.sweep()
}

// appliedAfterLocked reports whether any already-applied carrier sits
// after carrierID in blockchain (height, position) order.
func (l *Ledger) appliedAfterLocked(carrierID chainhash.Hash) bool {
	height, pos, ok := l.carrierPosLocked(carrierID)
	if !ok {
		return false
	}
	for applied := range l.applied {
		ah, apos, ok := l.carrierPosLocked(applied)
		if !ok {
			continue
		}
		if ah > height || (ah == height && apos > pos) {
			return true
		}
	}
	return false
}

// carrierPosLocked locates a carrier on the main chain.
func (l *Ledger) carrierPosLocked(carrierID chainhash.Hash) (height, pos int, ok bool) {
	blk, height, ok := l.chain.BlockOf(carrierID)
	if !ok {
		return 0, 0, false
	}
	for i, btx := range blk.Transactions {
		if btx.TxHash() == carrierID {
			return height, i, true
		}
	}
	return 0, 0, false
}

// onChainChange reacts to block connects/disconnects.
func (l *Ledger) onChainChange(n chain.Notification) {
	if !n.Connected {
		// A reorganization may have invalidated applied transactions;
		// rebuild from scratch. Reorgs are rare and the replay is
		// deterministic, so simplicity wins over incrementality here.
		l.rebuild()
		return
	}
	l.mu.Lock()
	for _, btx := range n.Block.Transactions {
		if h, ok := ExtractMetaHash(btx); ok {
			l.seen[h] = btx.TxHash()
			if _, known := l.known[h]; known {
				l.waiting[btx.TxHash()] = h
			}
		}
	}
	l.mu.Unlock()
	l.sweep()
}

// sweep applies every waiting transaction whose carrier is deep enough,
// in blockchain order (the order the global basis accumulates in).
func (l *Ledger) sweep() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sweepLocked()
}

func (l *Ledger) sweepLocked() {
	type entry struct {
		carrierID chainhash.Hash
		tch       chainhash.Hash
		height    int
		pos       int
	}
	var ready []entry
	for carrierID, tch := range l.waiting {
		if l.applied[carrierID] {
			delete(l.waiting, carrierID)
			continue
		}
		if l.chain.Confirmations(carrierID) < l.minConf {
			continue
		}
		blk, height, ok := l.chain.BlockOf(carrierID)
		if !ok {
			continue
		}
		pos := 0
		for i, btx := range blk.Transactions {
			if btx.TxHash() == carrierID {
				pos = i
				break
			}
		}
		ready = append(ready, entry{carrierID, tch, height, pos})
	}
	// Blockchain order makes the common case a single pass; the retry
	// loop below handles same-block basis dependencies that the miner
	// (which cannot see Typecoin-level references) ordered backwards.
	sort.Slice(ready, func(i, j int) bool {
		if ready[i].height != ready[j].height {
			return ready[i].height < ready[j].height
		}
		return ready[i].pos < ready[j].pos
	})
	done := make(map[chainhash.Hash]bool, len(ready))
	for {
		progressed := false
		for _, e := range ready {
			if done[e.carrierID] {
				continue
			}
			obj := l.known[e.tch]
			if obj == nil || !l.readyLocked(obj) {
				continue
			}
			if err := l.applyLocked(obj, e.carrierID); err == nil {
				progressed = true
				done[e.carrierID] = true
				delete(l.waiting, e.carrierID)
			}
		}
		if !progressed {
			break
		}
	}
	// Entries that still fail stay in waiting: the failure may be a
	// basis dependency whose transaction has not been announced yet, so
	// they are retried on every sweep. Permanently invalid transactions
	// (a false condition at their block — the "spoiled inputs" hazard of
	// Section 5) are simply re-rejected each time, which is cheap and
	// bounded by the number of such carriers.
	l.syncAppliedLocked()
}

// readyLocked reports whether the announced object's inputs all resolve
// in the current state.
func (l *Ledger) readyLocked(obj interface{}) bool {
	switch obj := obj.(type) {
	case *FallbackList:
		if len(obj.Txs) == 0 {
			return false
		}
		// Inputs are identical across members (Validate).
		for _, in := range obj.Txs[0].Inputs {
			if _, ok := l.state.ResolveOutput(in.Source); !ok {
				return false
			}
		}
		return true
	case *Batch:
		for _, src := range obj.Sources {
			if _, ok := l.state.ResolveOutput(src.Source); !ok {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (l *Ledger) applyLocked(obj interface{}, carrierID chainhash.Hash) error {
	carrier, ok := l.chain.TxByID(carrierID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrCarrierUnknown, carrierID)
	}
	blk, height, ok := l.chain.BlockOf(carrierID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrCarrierUnknown, carrierID)
	}
	switch obj := obj.(type) {
	case *FallbackList:
		if err := VerifyListEmbedding(obj, carrier); err != nil {
			return err
		}
		// "If the primary transaction turns out to be invalid, the first
		// valid fallback transaction is used instead."
		selected, _, err := obj.Select(l.state, OracleAt(l.chain, blk, height))
		if err != nil {
			return err
		}
		if err := l.state.Apply(selected, carrierID); err != nil {
			return err
		}
	case *Batch:
		if err := VerifyBatchEmbedding(obj, carrier); err != nil {
			return err
		}
		if err := l.state.CheckBatch(obj); err != nil {
			return err
		}
		if err := l.state.ApplyBatch(obj, carrierID); err != nil {
			return err
		}
	default:
		return fmt.Errorf("typecoin: unknown announcement %T", obj)
	}
	l.applied[carrierID] = true
	return nil
}

// rebuild replays the whole main chain against the known transaction set.
func (l *Ledger) rebuild() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.state = NewState()
	l.waiting = make(map[chainhash.Hash]chainhash.Hash)
	l.seen = make(map[chainhash.Hash]chainhash.Hash)
	l.applied = make(map[chainhash.Hash]bool)
	for h := 0; ; h++ {
		blk, ok := l.chain.BlockAtHeight(h)
		if !ok {
			break
		}
		for _, btx := range blk.Transactions {
			if mh, ok := ExtractMetaHash(btx); ok {
				l.seen[mh] = btx.TxHash()
				if _, known := l.known[mh]; known {
					l.waiting[btx.TxHash()] = mh
				}
			}
		}
	}
	// Apply in blockchain order.
	l.sweepLocked()
}

// State queries (all consistent snapshots under the ledger lock).

// ResolveOutput returns the type of an unconsumed typed output.
func (l *Ledger) ResolveOutput(op wire.OutPoint) (logic.Prop, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state.ResolveOutput(op)
}

// GlobalBasis returns the accumulated global basis.
func (l *Ledger) GlobalBasis() *logic.Basis {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state.GlobalBasis()
}

// Applied reports whether the carrier's Typecoin transaction has been
// applied.
func (l *Ledger) Applied(carrierID chainhash.Hash) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.applied[carrierID]
}

// TxByHash returns an applied transaction by its Typecoin hash, falling
// back to announced singleton lists.
func (l *Ledger) TxByHash(h chainhash.Hash) (*Tx, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if tx, ok := l.state.TxByHash(h); ok {
		return tx, true
	}
	if list, ok := l.known[h].(*FallbackList); ok && len(list.Txs) == 1 {
		return list.Txs[0], true
	}
	return nil, false
}

// UpstreamBundles assembles the bundle set for a typed output: the
// producing transaction plus everything upstream of it, in no particular
// order — exactly what a claimant hands to Verify.
func (l *Ledger) UpstreamBundles(op wire.OutPoint) ([]*Bundle, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start, ok := l.state.OriginOf(op)
	if !ok {
		return nil, errors.New("typecoin: outpoint has no known origin")
	}
	seen := make(map[chainhash.Hash]bool)
	var out []*Bundle
	var walk func(tch chainhash.Hash) error
	walk = func(tch chainhash.Hash) error {
		if seen[tch] {
			return nil
		}
		seen[tch] = true
		carrier, ok := l.state.CarrierOf(tch)
		if !ok {
			return fmt.Errorf("typecoin: missing carrier of %s", tch)
		}
		var inputs []Input
		var refs []chainhash.Hash
		if tx, ok := l.state.TxByHash(tch); ok {
			out = append(out, &Bundle{Tc: tx, Carrier: carrier})
			inputs = tx.Inputs
			refs = tx.ReferencedCarriers()
		} else if b, ok := l.state.BatchByHash(tch); ok {
			out = append(out, &Bundle{Batch: b, Carrier: carrier})
			inputs = b.Sources
			for _, c := range b.Seq {
				refs = append(refs, c.ReferencedCarriers()...)
			}
		} else {
			return fmt.Errorf("typecoin: missing upstream transaction %s", tch)
		}
		// Resource edges: the transactions whose outputs this one spends.
		for _, in := range inputs {
			if origin, ok := l.state.OriginOf(in.Source); ok {
				if err := walk(origin); err != nil {
					return err
				}
			} else if upstream, ok := l.originOfSpentLocked(in.Source); ok {
				if err := walk(upstream); err != nil {
					return err
				}
			}
		}
		// Basis edges: the transactions whose constants this one mentions
		// (needed even when no resource flows from them).
		for _, carrierID := range refs {
			if origin, ok := l.originByCarrierLocked(carrierID); ok {
				if err := walk(origin); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(start); err != nil {
		return nil, err
	}
	return out, nil
}

// originOfSpentLocked finds the producing transaction of an already
// consumed output by scanning applied transactions.
func (l *Ledger) originOfSpentLocked(op wire.OutPoint) (chainhash.Hash, bool) {
	for tch := range l.state.txs {
		carrier := l.state.carriers[tch]
		if carrier == op.Hash {
			tx := l.state.txs[tch]
			if int(op.Index) < len(tx.Outputs) {
				return tch, true
			}
		}
	}
	return chainhash.Hash{}, false
}

// CheckInstance validates a transaction against the current ledger state
// with conditions judged at the chain tip — the escrow agent's
// "sign any instance of the transaction that type checks" policy.
func (l *Ledger) CheckInstance(tx *Tx) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	height := l.chain.BestHeight()
	blk, ok := l.chain.BlockAtHeight(height)
	if !ok {
		return errors.New("typecoin: no chain tip")
	}
	_, err := l.state.CheckTx(tx, OracleAt(l.chain, blk, height))
	return err
}

// originByCarrierLocked finds the applied Typecoin/batch hash whose
// carrier is carrierID.
func (l *Ledger) originByCarrierLocked(carrierID chainhash.Hash) (chainhash.Hash, bool) {
	for tch, c := range l.state.carriers {
		if c == carrierID {
			return tch, true
		}
	}
	return chainhash.Hash{}, false
}

// Rescan rebuilds the ledger state from the whole main chain against the
// currently known announcement set.
func (l *Ledger) Rescan() { l.rebuild() }

// KnownObject returns the announced object (a *FallbackList or *Batch)
// for a commitment hash, so a node can answer overlay re-requests
// (tcget) from peers that saw the carrier confirm without the object.
func (l *Ledger) KnownObject(h chainhash.Hash) (interface{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	obj, ok := l.known[h]
	return obj, ok
}

// MissingAnnouncements returns the commitment hashes of metadata-bearing
// carriers observed on the main chain whose Typecoin objects have never
// been announced to this ledger — the set to re-request from peers after
// a partition heals.
func (l *Ledger) MissingAnnouncements() []chainhash.Hash {
	l.mu.Lock()
	defer l.mu.Unlock()
	var missing []chainhash.Hash
	for h := range l.seen {
		if _, ok := l.known[h]; !ok {
			missing = append(missing, h)
		}
	}
	return missing
}

// AuditAffine checks the ledger's affine invariant: the state audit plus
// the requirement that every applied carrier is still on the main chain.
func (l *Ledger) AuditAffine() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.state.AuditAffine(); err != nil {
		return err
	}
	for carrierID := range l.applied {
		if _, _, ok := l.chain.BlockOf(carrierID); !ok {
			return fmt.Errorf("typecoin: applied carrier %s is not on the main chain", carrierID)
		}
	}
	return nil
}

// AppliedCount reports how many carriers have been applied (test helper).
func (l *Ledger) AppliedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.applied)
}
