package chain

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"typecoin/internal/script"
	"typecoin/internal/sigcache"
	"typecoin/internal/wire"
)

// The block-connect validation pipeline splits work into two phases:
// a serial phase that resolves inputs against the UTXO view in
// transaction order (spends within a block may chain, so ordering
// matters) and records one scriptJob per input, and a parallel phase
// that fans the accumulated script/signature checks out across a bounded
// worker pool. Script verification only reads the spending transaction
// and the locking script captured in the job, so it is safe to run after
// the UTXO view has moved on — and concurrently.

// scriptJob is one deferred input-script verification: input `in` of
// `tx` (transaction `txIdx` of the block) spending an output locked by
// pkScript.
type scriptJob struct {
	tx       *wire.MsgTx
	txIdx    int
	in       int
	pkScript []byte
}

func (j scriptJob) run(sv script.SigVerifier) error {
	if err := script.VerifyInputCached(j.tx, j.in, j.pkScript, sv); err != nil {
		return fmt.Errorf("chain: input %d of %s: %w", j.in, j.tx.TxHash(), err)
	}
	return nil
}

// runScriptJobs verifies every job, fanning out across up to `workers`
// goroutines (0 means GOMAXPROCS). Verification fails fast: the first
// observed failure stops the remaining workers, and among failures that
// did complete the one earliest in block order is returned, keeping the
// reported error deterministic for a given set of completed checks.
func runScriptJobs(jobs []scriptJob, workers int, sv *sigcache.Cache) error {
	if len(jobs) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 1 {
		for _, j := range jobs {
			if err := j.run(sv); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // index of the next unclaimed job
		failed   atomic.Bool  // fail-fast flag
		mu       sync.Mutex
		firstErr error
		firstIdx = len(jobs)
		wg       sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		for !failed.Load() {
			i := int(next.Add(1)) - 1
			if i >= len(jobs) {
				return
			}
			if err := jobs[i].run(sv); err != nil {
				mu.Lock()
				if i < firstIdx {
					firstIdx, firstErr = i, err
				}
				mu.Unlock()
				failed.Store(true)
			}
		}
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker()
	}
	wg.Wait()
	return firstErr
}
