package chain

import (
	"errors"
	"fmt"
	"time"

	"typecoin/internal/chainhash"
	"typecoin/internal/wire"
)

// Validation errors that callers may want to distinguish.
var (
	ErrDoubleSpend     = errors.New("chain: input spends a spent or unknown output")
	ErrBadProofOfWork  = errors.New("chain: bad proof of work")
	ErrImmatureSpend   = errors.New("chain: spend of immature coinbase")
	ErrBadMerkleRoot   = errors.New("chain: merkle root mismatch")
	ErrDuplicateTx     = errors.New("chain: duplicate transaction in block")
	ErrTimeTooNew      = errors.New("chain: block timestamp too far in the future")
	ErrTimeTooOld      = errors.New("chain: block timestamp not after median of ancestors")
	ErrBadCoinbase     = errors.New("chain: malformed or misplaced coinbase")
	ErrBadTxValue      = errors.New("chain: transaction value out of range")
	ErrInsufficientFee = errors.New("chain: inputs do not cover outputs")
)

// maxFutureBlockTime is how far ahead of the local clock a block timestamp
// may be.
const maxFutureBlockTime = 2 * time.Hour

// medianTimeBlocks is the window used for the median-time-past rule.
const medianTimeBlocks = 11

// CheckTransactionSanity performs context-free transaction checks: the
// structural parts of the validity conditions in the paper's Section 2.
func CheckTransactionSanity(tx *wire.MsgTx) error {
	if len(tx.TxIn) == 0 {
		return errors.New("chain: transaction has no inputs")
	}
	if len(tx.TxOut) == 0 {
		return errors.New("chain: transaction has no outputs")
	}
	var total int64
	for _, out := range tx.TxOut {
		if out.Value < 0 || out.Value > wire.MaxSatoshi {
			return fmt.Errorf("%w: output value %d", ErrBadTxValue, out.Value)
		}
		total += out.Value
		if total > wire.MaxSatoshi {
			return fmt.Errorf("%w: output total overflows", ErrBadTxValue)
		}
	}
	// Condition 3 (within one transaction): all inputs must identify
	// distinct outputs.
	seen := make(map[wire.OutPoint]struct{}, len(tx.TxIn))
	for _, in := range tx.TxIn {
		if _, dup := seen[in.PreviousOutPoint]; dup {
			return fmt.Errorf("chain: transaction spends %v twice", in.PreviousOutPoint)
		}
		seen[in.PreviousOutPoint] = struct{}{}
	}
	if tx.IsCoinBase() {
		if n := len(tx.TxIn[0].SignatureScript); n < 2 || n > 100 {
			return fmt.Errorf("%w: coinbase script length %d", ErrBadCoinbase, n)
		}
	} else {
		for _, in := range tx.TxIn {
			if in.PreviousOutPoint.Hash.IsZero() {
				return fmt.Errorf("%w: null previous outpoint", ErrBadCoinbase)
			}
		}
	}
	return nil
}

// checkBlockSanity performs context-free block checks.
func (c *Chain) checkBlockSanity(blk *wire.MsgBlock) error {
	if err := CheckProofOfWork(blk.BlockHash(), blk.Header.Bits, c.params.PowLimit); err != nil {
		return fmt.Errorf("%w: %v", ErrBadProofOfWork, err)
	}
	if len(blk.Transactions) == 0 {
		return errors.New("chain: block has no transactions")
	}
	if !blk.Transactions[0].IsCoinBase() {
		return fmt.Errorf("%w: first transaction is not a coinbase", ErrBadCoinbase)
	}
	for _, tx := range blk.Transactions[1:] {
		if tx.IsCoinBase() {
			return fmt.Errorf("%w: extra coinbase", ErrBadCoinbase)
		}
	}
	if got := wire.ComputeMerkleRoot(blk.Transactions); got != blk.Header.MerkleRoot {
		return fmt.Errorf("%w: got %s want %s", ErrBadMerkleRoot, got, blk.Header.MerkleRoot)
	}
	seen := make(map[chainhash.Hash]struct{}, len(blk.Transactions))
	for _, tx := range blk.Transactions {
		id := tx.TxHash()
		if _, dup := seen[id]; dup {
			return fmt.Errorf("%w: %s", ErrDuplicateTx, id)
		}
		seen[id] = struct{}{}
	}
	for _, tx := range blk.Transactions {
		if err := CheckTransactionSanity(tx); err != nil {
			return err
		}
	}
	if blk.Header.Timestamp.After(c.clock.Now().Add(maxFutureBlockTime)) {
		return ErrTimeTooNew
	}
	return nil
}

// CheckTransactionInputs validates tx against the UTXO table (conditions
// 1-3 of Section 2 between transactions), returning the fee and the
// resolved entry for each input, aligned with tx.TxIn. The view must
// already reflect any earlier transactions in the same block. Returning
// the entries lets the script-check stage reuse this lookup instead of
// re-resolving every outpoint.
func CheckTransactionInputs(tx *wire.MsgTx, height int, view *UtxoView, maturity int) (int64, []*UtxoEntry, error) {
	var totalIn int64
	entries := make([]*UtxoEntry, len(tx.TxIn))
	for i, in := range tx.TxIn {
		entry := view.Lookup(in.PreviousOutPoint)
		if entry == nil {
			return 0, nil, fmt.Errorf("%w: %v", ErrDoubleSpend, in.PreviousOutPoint)
		}
		if entry.IsCoinBase && height-entry.Height < maturity {
			return 0, nil, fmt.Errorf("%w: %v at height %d spent at %d",
				ErrImmatureSpend, in.PreviousOutPoint, entry.Height, height)
		}
		entries[i] = entry
		totalIn += entry.Out.Value
		if totalIn > wire.MaxSatoshi {
			return 0, nil, fmt.Errorf("%w: input total overflows", ErrBadTxValue)
		}
	}
	var totalOut int64
	for _, out := range tx.TxOut {
		totalOut += out.Value
	}
	// Condition 1, generalized by Typecoin: inputs must cover outputs;
	// the difference is the miner's fee.
	if totalIn < totalOut {
		return 0, nil, fmt.Errorf("%w: in %d < out %d", ErrInsufficientFee, totalIn, totalOut)
	}
	return totalIn - totalOut, entries, nil
}
