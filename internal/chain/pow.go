// Package chain implements the blockchain state machine: proof-of-work,
// the unspent-transaction-output table, block and transaction validation
// (conditions 1-4 of the paper's Section 2), chain selection by
// accumulated work, and reorganization handling.
//
// This is the commitment substrate: "once a transaction has several
// subsequent blocks (usually taken as five), it may be considered
// irreversible" (paper, Section 1). The Typecoin layer relies on exactly
// two properties provided here: no txout is ever spent twice on the best
// chain, and confirmed history is (probabilistically) immutable.
package chain

import (
	"fmt"
	"math/big"

	"typecoin/internal/chainhash"
)

// CompactToBig converts Bitcoin's compact target representation ("bits")
// into a big integer target.
func CompactToBig(compact uint32) *big.Int {
	mantissa := compact & 0x007fffff
	exponent := uint(compact >> 24)
	negative := compact&0x00800000 != 0

	var bn *big.Int
	if exponent <= 3 {
		mantissa >>= 8 * (3 - exponent)
		bn = big.NewInt(int64(mantissa))
	} else {
		bn = big.NewInt(int64(mantissa))
		bn.Lsh(bn, 8*(exponent-3))
	}
	if negative {
		bn = bn.Neg(bn)
	}
	return bn
}

// BigToCompact converts a target into its compact representation.
func BigToCompact(n *big.Int) uint32 {
	if n.Sign() == 0 {
		return 0
	}
	var mantissa uint32
	exponent := uint(len(n.Bytes()))
	if exponent <= 3 {
		mantissa = uint32(n.Int64())
		mantissa <<= 8 * (3 - exponent)
	} else {
		tn := new(big.Int).Rsh(n, 8*(exponent-3))
		mantissa = uint32(tn.Int64())
	}
	if mantissa&0x00800000 != 0 {
		mantissa >>= 8
		exponent++
	}
	compact := uint32(exponent<<24) | mantissa
	if n.Sign() < 0 {
		compact |= 0x00800000
	}
	return compact
}

// HashToBig interprets a block hash as a big-endian integer for target
// comparison.
func HashToBig(h chainhash.Hash) *big.Int {
	// Hashes are little-endian internally; reverse for integer order.
	var rev [chainhash.HashSize]byte
	for i, b := range h {
		rev[chainhash.HashSize-1-i] = b
	}
	return new(big.Int).SetBytes(rev[:])
}

// CheckProofOfWork verifies that the block hash is at or below the target
// encoded in bits, and that the target itself is within the chain's limit.
// "In order to create a new block, its creator must solve a problem that
// is expensive to solve, but easy to verify." (paper, Section 1).
func CheckProofOfWork(hash chainhash.Hash, bits uint32, powLimit *big.Int) error {
	target := CompactToBig(bits)
	if target.Sign() <= 0 {
		return fmt.Errorf("chain: target %064x is not positive", target)
	}
	if target.Cmp(powLimit) > 0 {
		return fmt.Errorf("chain: target %064x above proof-of-work limit", target)
	}
	if HashToBig(hash).Cmp(target) > 0 {
		return fmt.Errorf("chain: block hash %s above target %064x", hash, target)
	}
	return nil
}

// CalcWork returns the expected number of hashes needed to find a block
// at the given difficulty: 2^256 / (target + 1). Chain selection compares
// accumulated work, not chain length, so a low-difficulty fork cannot beat
// a high-difficulty chain merely by having more blocks.
func CalcWork(bits uint32) *big.Int {
	target := CompactToBig(bits)
	if target.Sign() <= 0 {
		return big.NewInt(0)
	}
	denom := new(big.Int).Add(target, big.NewInt(1))
	num := new(big.Int).Lsh(big.NewInt(1), 256)
	return num.Div(num, denom)
}
