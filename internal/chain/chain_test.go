package chain

import (
	"errors"
	"math/big"
	"testing"
	"testing/quick"
	"time"

	"typecoin/internal/chainhash"
	"typecoin/internal/clock"
	"typecoin/internal/wire"
)

// mineEmpty builds and solves an empty (coinbase-only) block on top of
// prev, at the chain's required difficulty, with the given timestamp.
func mineEmpty(t testing.TB, c *Chain, prevHash chainhash.Hash, height int, ts time.Time, tag byte) *wire.MsgBlock {
	t.Helper()
	coinbase := wire.NewMsgTx(wire.TxVersion)
	coinbase.AddTxIn(&wire.TxIn{
		PreviousOutPoint: wire.OutPoint{Hash: chainhash.ZeroHash, Index: 0xffffffff},
		SignatureScript:  []byte{byte(height), byte(height >> 8), tag},
		Sequence:         wire.MaxTxInSequenceNum,
	})
	coinbase.AddTxOut(&wire.TxOut{
		Value:    c.Params().CalcBlockSubsidy(height),
		PkScript: []byte{0x51}, // OP_1: anyone-can-spend, fine for tests
	})
	blk := &wire.MsgBlock{
		Header: wire.BlockHeader{
			Version:    1,
			PrevBlock:  prevHash,
			MerkleRoot: wire.ComputeMerkleRoot([]*wire.MsgTx{coinbase}),
			Timestamp:  ts,
			Bits:       c.Params().PowLimitBits,
		},
		Transactions: []*wire.MsgTx{coinbase},
	}
	solve(t, blk, c.Params())
	return blk
}

func solve(t testing.TB, blk *wire.MsgBlock, p *Params) {
	t.Helper()
	target := CompactToBig(blk.Header.Bits)
	for nonce := uint64(0); nonce <= 0xffffffff; nonce++ {
		blk.Header.Nonce = uint32(nonce)
		if HashToBig(blk.BlockHash()).Cmp(target) <= 0 {
			return
		}
	}
	t.Fatal("could not solve block")
}

func newTestChain(t testing.TB) (*Chain, *clock.Simulated) {
	t.Helper()
	params := RegTestParams()
	clk := clock.NewSimulated(params.GenesisBlock.Header.Timestamp.Add(time.Minute))
	return New(params, clk), clk
}

// extend mines n empty blocks on the main chain tip, returning their
// blocks.
func extend(t testing.TB, c *Chain, clk *clock.Simulated, n int, tag byte) []*wire.MsgBlock {
	t.Helper()
	var out []*wire.MsgBlock
	for i := 0; i < n; i++ {
		ts := clk.Advance(time.Minute)
		blk := mineEmpty(t, c, c.BestHash(), c.BestHeight()+1, ts, tag)
		status, err := c.ProcessBlock(blk)
		if err != nil {
			t.Fatalf("ProcessBlock: %v", err)
		}
		if status != StatusMainChain {
			t.Fatalf("status = %v, want main chain", status)
		}
		out = append(out, blk)
	}
	return out
}

func TestGenesis(t *testing.T) {
	c, _ := newTestChain(t)
	if c.BestHeight() != 0 {
		t.Fatalf("genesis height = %d", c.BestHeight())
	}
	if c.BestHash() != c.Params().GenesisBlock.BlockHash() {
		t.Fatal("tip is not genesis")
	}
	// Genesis pays OP_RETURN: the UTXO table must be empty.
	if c.UtxoSize() != 0 {
		t.Fatalf("genesis UTXO size = %d, want 0", c.UtxoSize())
	}
	// Two invocations of RegTestParams agree on the genesis hash.
	if RegTestParams().GenesisBlock.BlockHash() != RegTestParams().GenesisBlock.BlockHash() {
		t.Fatal("genesis hash is nondeterministic")
	}
}

func TestExtendChain(t *testing.T) {
	c, clk := newTestChain(t)
	extend(t, c, clk, 5, 0)
	if c.BestHeight() != 5 {
		t.Fatalf("height = %d, want 5", c.BestHeight())
	}
	if c.UtxoSize() != 5 {
		t.Fatalf("UTXO size = %d, want 5 coinbases", c.UtxoSize())
	}
}

func TestRejectBadPoW(t *testing.T) {
	c, clk := newTestChain(t)
	blk := mineEmpty(t, c, c.BestHash(), 1, clk.Advance(time.Minute), 0)
	blk.Header.Nonce++ // almost surely breaks the target
	if HashToBig(blk.BlockHash()).Cmp(CompactToBig(blk.Header.Bits)) <= 0 {
		t.Skip("nonce+1 accidentally still valid")
	}
	if _, err := c.ProcessBlock(blk); !errors.Is(err, ErrBadProofOfWork) {
		t.Errorf("want ErrBadProofOfWork, got %v", err)
	}
}

func TestRejectBadMerkleRoot(t *testing.T) {
	c, clk := newTestChain(t)
	blk := mineEmpty(t, c, c.BestHash(), 1, clk.Advance(time.Minute), 0)
	blk.Header.MerkleRoot[0] ^= 1
	solve(t, blk, c.Params())
	if _, err := c.ProcessBlock(blk); !errors.Is(err, ErrBadMerkleRoot) {
		t.Errorf("want ErrBadMerkleRoot, got %v", err)
	}
}

func TestRejectFutureTimestamp(t *testing.T) {
	c, clk := newTestChain(t)
	ts := clk.Now().Add(3 * time.Hour)
	blk := mineEmpty(t, c, c.BestHash(), 1, ts, 0)
	if _, err := c.ProcessBlock(blk); !errors.Is(err, ErrTimeTooNew) {
		t.Errorf("want ErrTimeTooNew, got %v", err)
	}
}

func TestRejectStaleTimestamp(t *testing.T) {
	c, clk := newTestChain(t)
	extend(t, c, clk, 12, 0)
	// A block at or before median-time-past must be rejected.
	blk := mineEmpty(t, c, c.BestHash(), c.BestHeight()+1, c.MedianTimePast(), 0)
	if _, err := c.ProcessBlock(blk); !errors.Is(err, ErrTimeTooOld) {
		t.Errorf("want ErrTimeTooOld, got %v", err)
	}
}

func TestDuplicateBlock(t *testing.T) {
	c, clk := newTestChain(t)
	blks := extend(t, c, clk, 1, 0)
	status, err := c.ProcessBlock(blks[0])
	if err != nil || status != StatusDuplicate {
		t.Errorf("resubmission: status=%v err=%v", status, err)
	}
}

func TestOrphanAdoption(t *testing.T) {
	c, clk := newTestChain(t)
	// Build two blocks but submit the child first.
	ts1 := clk.Advance(time.Minute)
	b1 := mineEmpty(t, c, c.BestHash(), 1, ts1, 0)
	ts2 := clk.Advance(time.Minute)
	b2 := mineEmpty(t, c, b1.BlockHash(), 2, ts2, 0)

	status, err := c.ProcessBlock(b2)
	if err != nil || status != StatusOrphan {
		t.Fatalf("child-first: status=%v err=%v", status, err)
	}
	if !c.HaveBlock(b2.BlockHash()) {
		t.Fatal("orphan not retained")
	}
	status, err = c.ProcessBlock(b1)
	if err != nil || status != StatusMainChain {
		t.Fatalf("parent: status=%v err=%v", status, err)
	}
	if c.BestHeight() != 2 {
		t.Fatalf("orphan not adopted: height=%d", c.BestHeight())
	}
}

func TestSideChainAndReorg(t *testing.T) {
	c, clk := newTestChain(t)
	mainBlks := extend(t, c, clk, 2, 0)
	mainTip := c.BestHash()

	// Build a competing branch from block 1 with different coinbase tags.
	forkBase := mainBlks[0].BlockHash()
	ts := clk.Advance(time.Minute)
	s1 := mineEmpty(t, c, forkBase, 2, ts, 0xaa)
	status, err := c.ProcessBlock(s1)
	if err != nil || status != StatusSideChain {
		t.Fatalf("side block: status=%v err=%v", status, err)
	}
	if c.BestHash() != mainTip {
		t.Fatal("side chain moved the tip")
	}

	// Extending the side chain past the main chain triggers a reorg.
	ts = clk.Advance(time.Minute)
	s2 := mineEmpty(t, c, s1.BlockHash(), 3, ts, 0xaa)
	status, err = c.ProcessBlock(s2)
	if err != nil {
		t.Fatalf("reorg block: %v", err)
	}
	if status != StatusMainChain {
		t.Fatalf("reorg status = %v", status)
	}
	if c.BestHash() != s2.BlockHash() || c.BestHeight() != 3 {
		t.Fatalf("tip after reorg: %s height %d", c.BestHash(), c.BestHeight())
	}

	// The disconnected block's coinbase must have left the tx index; the
	// new branch's coinbases must be present.
	if _, _, ok := c.BlockOf(mainBlks[1].Transactions[0].TxHash()); ok {
		t.Error("disconnected coinbase still indexed")
	}
	if _, _, ok := c.BlockOf(s2.Transactions[0].TxHash()); !ok {
		t.Error("new-branch coinbase not indexed")
	}
	// UTXO table: coinbases of heights 1 (shared), 2 and 3 (new branch).
	if c.UtxoSize() != 3 {
		t.Errorf("UTXO size after reorg = %d, want 3", c.UtxoSize())
	}
}

func TestReorgNotifications(t *testing.T) {
	c, clk := newTestChain(t)
	var log []string
	c.Subscribe(func(n Notification) {
		if n.Connected {
			log = append(log, "connect")
		} else {
			log = append(log, "disconnect")
		}
	})
	mainBlks := extend(t, c, clk, 2, 0)
	forkBase := mainBlks[0].BlockHash()
	ts := clk.Advance(time.Minute)
	s1 := mineEmpty(t, c, forkBase, 2, ts, 0xbb)
	if _, err := c.ProcessBlock(s1); err != nil {
		t.Fatal(err)
	}
	ts = clk.Advance(time.Minute)
	s2 := mineEmpty(t, c, s1.BlockHash(), 3, ts, 0xbb)
	if _, err := c.ProcessBlock(s2); err != nil {
		t.Fatal(err)
	}
	want := []string{"connect", "connect", "disconnect", "connect", "connect"}
	if len(log) != len(want) {
		t.Fatalf("event log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("event log %v, want %v", log, want)
		}
	}
}

func TestConfirmations(t *testing.T) {
	c, clk := newTestChain(t)
	blks := extend(t, c, clk, 6, 0)
	cb := blks[0].Transactions[0].TxHash()
	if got := c.Confirmations(cb); got != 6 {
		t.Errorf("confirmations = %d, want 6", got)
	}
	if got := c.Confirmations(chainhash.HashB([]byte("unknown"))); got != 0 {
		t.Errorf("unknown tx confirmations = %d", got)
	}
	// Depth 5 => confirmed per params.
	if got := c.Confirmations(cb); got < c.Params().ConfirmationDepth+1 {
		t.Errorf("tx not confirmed at depth %d", got)
	}
}

func TestRejectPrematureCoinbaseSpend(t *testing.T) {
	// Covered end-to-end in the integration test; here we exercise
	// CheckTransactionInputs directly.
	view := NewUtxoView()
	cb := wire.NewMsgTx(wire.TxVersion)
	cb.AddTxIn(&wire.TxIn{PreviousOutPoint: wire.OutPoint{Hash: chainhash.ZeroHash, Index: 0xffffffff},
		SignatureScript: []byte{1, 2}})
	cb.AddTxOut(&wire.TxOut{Value: 100, PkScript: []byte{0x51}})
	view.add(cb, 10)

	spend := wire.NewMsgTx(wire.TxVersion)
	spend.AddTxIn(&wire.TxIn{PreviousOutPoint: wire.OutPoint{Hash: cb.TxHash(), Index: 0}})
	spend.AddTxOut(&wire.TxOut{Value: 90, PkScript: []byte{0x51}})

	if _, _, err := CheckTransactionInputs(spend, 15, view, 10); !errors.Is(err, ErrImmatureSpend) {
		t.Errorf("immature spend: %v", err)
	}
	fee, entries, err := CheckTransactionInputs(spend, 20, view, 10)
	if err != nil {
		t.Errorf("mature spend: %v", err)
	}
	if fee != 10 {
		t.Errorf("fee = %d, want 10", fee)
	}
	if len(entries) != 1 || entries[0] == nil || entries[0].Out.Value != 100 {
		t.Errorf("resolved entries = %v, want the 100-value coinbase output", entries)
	}
}

func TestCheckTransactionInputsMissing(t *testing.T) {
	view := NewUtxoView()
	spend := wire.NewMsgTx(wire.TxVersion)
	spend.AddTxIn(&wire.TxIn{PreviousOutPoint: wire.OutPoint{Hash: chainhash.HashB([]byte("x"))}})
	spend.AddTxOut(&wire.TxOut{Value: 1, PkScript: []byte{0x51}})
	if _, _, err := CheckTransactionInputs(spend, 1, view, 10); !errors.Is(err, ErrDoubleSpend) {
		t.Errorf("want ErrDoubleSpend, got %v", err)
	}
}

func TestTransactionSanity(t *testing.T) {
	// No inputs.
	tx := wire.NewMsgTx(wire.TxVersion)
	tx.AddTxOut(&wire.TxOut{Value: 1})
	if err := CheckTransactionSanity(tx); err == nil {
		t.Error("no-input tx accepted")
	}
	// No outputs.
	tx = wire.NewMsgTx(wire.TxVersion)
	tx.AddTxIn(&wire.TxIn{PreviousOutPoint: wire.OutPoint{Hash: chainhash.HashB([]byte("a"))}})
	if err := CheckTransactionSanity(tx); err == nil {
		t.Error("no-output tx accepted")
	}
	// Negative value.
	tx.AddTxOut(&wire.TxOut{Value: -5})
	if err := CheckTransactionSanity(tx); err == nil {
		t.Error("negative output accepted")
	}
	// Duplicate inputs (condition 3 of Section 2).
	tx = wire.NewMsgTx(wire.TxVersion)
	op := wire.OutPoint{Hash: chainhash.HashB([]byte("a")), Index: 1}
	tx.AddTxIn(&wire.TxIn{PreviousOutPoint: op})
	tx.AddTxIn(&wire.TxIn{PreviousOutPoint: op})
	tx.AddTxOut(&wire.TxOut{Value: 1})
	if err := CheckTransactionSanity(tx); err == nil {
		t.Error("duplicate-input tx accepted")
	}
}

func TestSpentJournal(t *testing.T) {
	c, clk := newTestChain(t)
	blks := extend(t, c, clk, 11, 0)
	cbTx := blks[0].Transactions[0]
	cbOut := wire.OutPoint{Hash: cbTx.TxHash(), Index: 0}

	if _, spent := c.IsSpent(cbOut); spent {
		t.Fatal("unspent output reported spent")
	}

	// Spend the (mature, anyone-can-spend) coinbase.
	spend := wire.NewMsgTx(wire.TxVersion)
	spend.AddTxIn(&wire.TxIn{PreviousOutPoint: cbOut, SignatureScript: nil, Sequence: wire.MaxTxInSequenceNum})
	spend.AddTxOut(&wire.TxOut{Value: cbTx.TxOut[0].Value - 1000, PkScript: []byte{0x51}})

	ts := clk.Advance(time.Minute)
	height := c.BestHeight() + 1
	coinbase := wire.NewMsgTx(wire.TxVersion)
	coinbase.AddTxIn(&wire.TxIn{
		PreviousOutPoint: wire.OutPoint{Hash: chainhash.ZeroHash, Index: 0xffffffff},
		SignatureScript:  []byte{byte(height), 0x99},
		Sequence:         wire.MaxTxInSequenceNum,
	})
	coinbase.AddTxOut(&wire.TxOut{
		Value:    c.Params().CalcBlockSubsidy(height) + 1000,
		PkScript: []byte{0x51},
	})
	blk := &wire.MsgBlock{
		Header: wire.BlockHeader{
			Version:    1,
			PrevBlock:  c.BestHash(),
			MerkleRoot: wire.ComputeMerkleRoot([]*wire.MsgTx{coinbase, spend}),
			Timestamp:  ts,
			Bits:       c.Params().PowLimitBits,
		},
		Transactions: []*wire.MsgTx{coinbase, spend},
	}
	solve(t, blk, c.Params())
	if _, err := c.ProcessBlock(blk); err != nil {
		t.Fatalf("spend block: %v", err)
	}

	rec, spent := c.IsSpent(cbOut)
	if !spent {
		t.Fatal("spent output not journaled")
	}
	if rec.Spender != spend.TxHash() {
		t.Errorf("journal spender = %s, want %s", rec.Spender, spend.TxHash())
	}
	if rec.Height != height {
		t.Errorf("journal height = %d, want %d", rec.Height, height)
	}

	// A second spend of the same output must be rejected: the affine
	// invariant between transactions (paper, Section 3).
	double := wire.NewMsgTx(wire.TxVersion)
	double.AddTxIn(&wire.TxIn{PreviousOutPoint: cbOut, Sequence: wire.MaxTxInSequenceNum})
	double.AddTxOut(&wire.TxOut{Value: 1000, PkScript: []byte{0x51}})
	ts = clk.Advance(time.Minute)
	height = c.BestHeight() + 1
	cb2 := wire.NewMsgTx(wire.TxVersion)
	cb2.AddTxIn(&wire.TxIn{
		PreviousOutPoint: wire.OutPoint{Hash: chainhash.ZeroHash, Index: 0xffffffff},
		SignatureScript:  []byte{byte(height), 0x98},
		Sequence:         wire.MaxTxInSequenceNum,
	})
	cb2.AddTxOut(&wire.TxOut{Value: c.Params().CalcBlockSubsidy(height), PkScript: []byte{0x51}})
	blk2 := &wire.MsgBlock{
		Header: wire.BlockHeader{
			Version:    1,
			PrevBlock:  c.BestHash(),
			MerkleRoot: wire.ComputeMerkleRoot([]*wire.MsgTx{cb2, double}),
			Timestamp:  ts,
			Bits:       c.Params().PowLimitBits,
		},
		Transactions: []*wire.MsgTx{cb2, double},
	}
	solve(t, blk2, c.Params())
	if _, err := c.ProcessBlock(blk2); !errors.Is(err, ErrDoubleSpend) {
		t.Errorf("double spend: want ErrDoubleSpend, got %v", err)
	}
}

func TestLocatorAndBlocksAfter(t *testing.T) {
	c, clk := newTestChain(t)
	extend(t, c, clk, 30, 0)
	loc := c.Locator()
	if loc[0] != c.BestHash() {
		t.Error("locator does not start at tip")
	}
	if loc[len(loc)-1] != c.Params().GenesisBlock.BlockHash() {
		t.Error("locator does not end at genesis")
	}
	// A peer at height 10 supplies its locator; we should get blocks
	// 11..30.
	blk10, _ := c.BlockAtHeight(10)
	blocks := c.BlocksAfter([]chainhash.Hash{blk10.BlockHash()}, 500)
	if len(blocks) != 20 {
		t.Fatalf("BlocksAfter returned %d blocks, want 20", len(blocks))
	}
	if blocks[0].Header.PrevBlock != blk10.BlockHash() {
		t.Error("first block does not follow the locator point")
	}
	// Unknown locator falls back to genesis.
	all := c.BlocksAfter([]chainhash.Hash{chainhash.HashB([]byte("nope"))}, 500)
	if len(all) != 30 {
		t.Errorf("fallback returned %d blocks, want 30", len(all))
	}
}

func TestCompactBigRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		// Interpret v as a compact; skip negatives and zero mantissas.
		b := CompactToBig(v)
		if b.Sign() <= 0 {
			return true
		}
		// Round-tripping the *value* may renormalize the encoding, so
		// compare values.
		return CompactToBig(BigToCompact(b)).Cmp(b) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCalcWorkMonotonic(t *testing.T) {
	easy := RegTestParams().PowLimitBits
	harder := BigToCompact(new(big.Int).Rsh(regTestPowLimit, 8))
	if CalcWork(harder).Cmp(CalcWork(easy)) <= 0 {
		t.Error("harder target should carry more work")
	}
}

func TestCheckProofOfWorkLimits(t *testing.T) {
	p := RegTestParams()
	var h chainhash.Hash // zero hash is below any positive target
	if err := CheckProofOfWork(h, p.PowLimitBits, p.PowLimit); err != nil {
		t.Errorf("zero hash rejected: %v", err)
	}
	// A target above the limit is invalid even with a winning hash.
	above := BigToCompact(new(big.Int).Lsh(p.PowLimit, 1))
	if err := CheckProofOfWork(h, above, p.PowLimit); err == nil {
		t.Error("target above limit accepted")
	}
}

func TestSubsidyHalving(t *testing.T) {
	p := RegTestParams()
	if p.CalcBlockSubsidy(0) != p.BaseSubsidy {
		t.Error("initial subsidy wrong")
	}
	if p.CalcBlockSubsidy(p.SubsidyHalvingInterval) != p.BaseSubsidy/2 {
		t.Error("subsidy did not halve")
	}
	if p.CalcBlockSubsidy(p.SubsidyHalvingInterval*64) != 0 {
		t.Error("subsidy did not reach zero")
	}
}

func TestDifficultyRetarget(t *testing.T) {
	// A retargeting chain: blocks come in at half the target spacing, so
	// difficulty should increase (target decrease) at the boundary.
	params := RegTestParams()
	params.NoRetarget = false
	params.RetargetInterval = 8
	params.TargetTimespan = 8 * 10 * time.Minute
	clk := clock.NewSimulated(params.GenesisBlock.Header.Timestamp.Add(time.Minute))
	c := New(params, clk)

	for i := 0; i < 7; i++ {
		ts := clk.Advance(5 * time.Minute) // twice as fast as target
		blk := mineEmpty(t, c, c.BestHash(), c.BestHeight()+1, ts, 0)
		blk.Header.Bits = c.NextRequiredDifficulty()
		solve(t, blk, params)
		if _, err := c.ProcessBlock(blk); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
	}
	// Height 8 is the retarget boundary.
	next := c.NextRequiredDifficulty()
	if next == params.PowLimitBits {
		t.Error("difficulty did not increase despite fast blocks")
	}
	if CompactToBig(next).Cmp(CompactToBig(params.PowLimitBits)) >= 0 {
		t.Error("new target is not below the limit")
	}
}

func TestIntraBlockDoubleSpendRejected(t *testing.T) {
	// Two transactions in ONE block spending the same output: the block
	// is invalid even though each transaction is individually fine.
	c, clk := newTestChain(t)
	blks := extend(t, c, clk, 11, 0)
	cbTx := blks[0].Transactions[0]
	cbOut := wire.OutPoint{Hash: cbTx.TxHash(), Index: 0}

	mkSpend := func(tag byte) *wire.MsgTx {
		tx := wire.NewMsgTx(wire.TxVersion)
		tx.AddTxIn(&wire.TxIn{PreviousOutPoint: cbOut, Sequence: wire.MaxTxInSequenceNum})
		tx.AddTxOut(&wire.TxOut{Value: cbTx.TxOut[0].Value - 1000, PkScript: []byte{0x51, tag}})
		return tx
	}
	s1, s2 := mkSpend(0x51), mkSpend(0x52)

	ts := clk.Advance(time.Minute)
	height := c.BestHeight() + 1
	coinbase := wire.NewMsgTx(wire.TxVersion)
	coinbase.AddTxIn(&wire.TxIn{
		PreviousOutPoint: wire.OutPoint{Hash: chainhash.ZeroHash, Index: 0xffffffff},
		SignatureScript:  []byte{byte(height), 0x77},
		Sequence:         wire.MaxTxInSequenceNum,
	})
	coinbase.AddTxOut(&wire.TxOut{Value: c.Params().CalcBlockSubsidy(height) + 2000, PkScript: []byte{0x51}})
	blk := &wire.MsgBlock{
		Header: wire.BlockHeader{
			Version:    1,
			PrevBlock:  c.BestHash(),
			MerkleRoot: wire.ComputeMerkleRoot([]*wire.MsgTx{coinbase, s1, s2}),
			Timestamp:  ts,
			Bits:       c.Params().PowLimitBits,
		},
		Transactions: []*wire.MsgTx{coinbase, s1, s2},
	}
	solve(t, blk, c.Params())
	if _, err := c.ProcessBlock(blk); !errors.Is(err, ErrDoubleSpend) {
		t.Errorf("want ErrDoubleSpend, got %v", err)
	}
	// The failed connect must not have corrupted the UTXO view: the
	// coinbase output is still spendable in a clean block.
	if c.LookupUtxo(cbOut) == nil {
		t.Error("rolled-back block consumed the output anyway")
	}
	if c.BestHeight() != 11 {
		t.Errorf("height = %d after invalid block", c.BestHeight())
	}
}

func TestGreedyCoinbaseRejected(t *testing.T) {
	c, clk := newTestChain(t)
	ts := clk.Advance(time.Minute)
	blk := mineEmpty(t, c, c.BestHash(), 1, ts, 0)
	// Inflate the subsidy and re-solve. The direct field write bypasses
	// the tx mutators, so drop the memoized hash by hand.
	blk.Transactions[0].TxOut[0].Value = c.Params().CalcBlockSubsidy(1) + 1
	blk.Transactions[0].InvalidateCache()
	blk.Header.MerkleRoot = wire.ComputeMerkleRoot(blk.Transactions)
	solve(t, blk, c.Params())
	if _, err := c.ProcessBlock(blk); !errors.Is(err, ErrBadCoinbase) {
		t.Errorf("want ErrBadCoinbase, got %v", err)
	}
}

func TestSpendJournalRollsBackOnReorg(t *testing.T) {
	// A spend recorded on the main chain must leave the journal when its
	// block is disconnected — otherwise spent(txid.n) conditions would be
	// judged against orphaned history.
	c, clk := newTestChain(t)
	blks := extend(t, c, clk, 11, 0)
	cbTx := blks[0].Transactions[0]
	cbOut := wire.OutPoint{Hash: cbTx.TxHash(), Index: 0}

	// Block 12 (main) spends the mature coinbase.
	spend := wire.NewMsgTx(wire.TxVersion)
	spend.AddTxIn(&wire.TxIn{PreviousOutPoint: cbOut, Sequence: wire.MaxTxInSequenceNum})
	spend.AddTxOut(&wire.TxOut{Value: cbTx.TxOut[0].Value - 1000, PkScript: []byte{0x51}})
	ts := clk.Advance(time.Minute)
	height := c.BestHeight() + 1
	cb12 := wire.NewMsgTx(wire.TxVersion)
	cb12.AddTxIn(&wire.TxIn{
		PreviousOutPoint: wire.OutPoint{Hash: chainhash.ZeroHash, Index: 0xffffffff},
		SignatureScript:  []byte{byte(height), 0x42},
		Sequence:         wire.MaxTxInSequenceNum,
	})
	cb12.AddTxOut(&wire.TxOut{Value: c.Params().CalcBlockSubsidy(height) + 1000, PkScript: []byte{0x51}})
	blk12 := &wire.MsgBlock{
		Header: wire.BlockHeader{
			Version:    1,
			PrevBlock:  c.BestHash(),
			MerkleRoot: wire.ComputeMerkleRoot([]*wire.MsgTx{cb12, spend}),
			Timestamp:  ts,
			Bits:       c.Params().PowLimitBits,
		},
		Transactions: []*wire.MsgTx{cb12, spend},
	}
	solve(t, blk12, c.Params())
	if _, err := c.ProcessBlock(blk12); err != nil {
		t.Fatal(err)
	}
	if _, spent := c.IsSpent(cbOut); !spent {
		t.Fatal("spend not journaled")
	}

	// A competing branch from height 11 with two empty blocks reorgs the
	// spend away.
	fork := blks[10].BlockHash()
	ts = clk.Advance(time.Minute)
	s1 := mineEmpty(t, c, fork, 12, ts, 0xcc)
	if _, err := c.ProcessBlock(s1); err != nil {
		t.Fatal(err)
	}
	ts = clk.Advance(time.Minute)
	s2 := mineEmpty(t, c, s1.BlockHash(), 13, ts, 0xcc)
	if _, err := c.ProcessBlock(s2); err != nil {
		t.Fatal(err)
	}
	if c.BestHash() != s2.BlockHash() {
		t.Fatal("reorg did not take")
	}
	if _, spent := c.IsSpent(cbOut); spent {
		t.Error("orphaned spend still journaled after reorg")
	}
	if c.LookupUtxo(cbOut) == nil {
		t.Error("reorged-away spend did not restore the UTXO")
	}
}

func TestSubsidyHalvingOnChain(t *testing.T) {
	// Cross the regtest halving boundary (150 blocks) and check the
	// consensus actually enforces the halved subsidy.
	c, clk := newTestChain(t)
	extend(t, c, clk, 149, 0)
	// Block 150 claiming the un-halved subsidy is rejected.
	ts := clk.Advance(time.Minute)
	greedy := mineEmpty(t, c, c.BestHash(), 150, ts, 0)
	greedy.Transactions[0].TxOut[0].Value = c.Params().BaseSubsidy
	greedy.Transactions[0].InvalidateCache()
	greedy.Header.MerkleRoot = wire.ComputeMerkleRoot(greedy.Transactions)
	solve(t, greedy, c.Params())
	if _, err := c.ProcessBlock(greedy); !errors.Is(err, ErrBadCoinbase) {
		t.Errorf("un-halved coinbase at 150: %v", err)
	}
	// The correct halved subsidy is accepted (mineEmpty uses
	// CalcBlockSubsidy).
	honest := mineEmpty(t, c, c.BestHash(), 150, ts, 1)
	if honest.Transactions[0].TxOut[0].Value != c.Params().BaseSubsidy/2 {
		t.Fatalf("halved subsidy = %d", honest.Transactions[0].TxOut[0].Value)
	}
	if _, err := c.ProcessBlock(honest); err != nil {
		t.Fatalf("halved coinbase rejected: %v", err)
	}
}
