package chain

// Chain observability: counters and latency histograms for every
// main-chain mutation, gauges over the resident state, and lifecycle
// events in the shared tracer. All collector fields are nil until
// SetTelemetry is called, and every telemetry type no-ops on nil, so an
// uninstrumented chain (tests, benchmarks) pays only dead branches.

import (
	"fmt"
	"strconv"
	"time"

	"typecoin/internal/chainhash"
	"typecoin/internal/telemetry"
)

// chainTelemetry holds the chain's registered collectors. The zero
// value (all nil) disables everything.
type chainTelemetry struct {
	tracer *telemetry.Tracer
	spans  *telemetry.SpanStore

	connects    *telemetry.Counter
	disconnects *telemetry.Counter
	reorgs      *telemetry.Counter
	invalid     *telemetry.Counter
	orphaned    *telemetry.Counter
	sideBlocks  *telemetry.Counter
	duplicates  *telemetry.Counter
	parked      *telemetry.Counter
	headersAcc  *telemetry.Counter

	connectSeconds    *telemetry.Histogram
	disconnectSeconds *telemetry.Histogram
	scriptSeconds     *telemetry.Histogram
	scriptJobs        *telemetry.Counter
	reorgDepth        *telemetry.Histogram

	commits       *telemetry.Counter
	commitSeconds *telemetry.Histogram
	commitOps     *telemetry.Histogram
}

// SetTelemetry registers the chain's metrics on reg and routes lifecycle
// events to tr. Call once, before processing blocks; either argument may
// be nil. The sigcache shared with the mempool is exported here too,
// since the chain owns it.
func (c *Chain) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	c.tel = chainTelemetry{
		tracer: tr,

		connects:    reg.Counter("chain_connects_total", "Blocks connected to the main chain (includes reorg reconnects)."),
		disconnects: reg.Counter("chain_disconnects_total", "Blocks disconnected from the main chain during reorganizations."),
		reorgs:      reg.Counter("chain_reorgs_total", "Completed main-chain reorganizations."),
		invalid:     reg.Counter("chain_invalid_blocks_total", "Blocks rejected as invalid."),
		orphaned:    reg.Counter("chain_orphan_blocks_total", "Blocks held as orphans pending their parent."),
		sideBlocks:  reg.Counter("chain_side_blocks_total", "Blocks stored on side branches."),
		duplicates:  reg.Counter("chain_duplicate_blocks_total", "Already-known blocks offered again."),
		parked:      reg.Counter("chain_parked_blocks_total", "Out-of-order bodies parked until their predecessor connects."),
		headersAcc:  reg.Counter("chain_headers_accepted_total", "Headers validated into the header index."),

		connectSeconds:    reg.Histogram("chain_connect_seconds", "Wall time to validate, persist and connect one block.", telemetry.LatencyBuckets),
		disconnectSeconds: reg.Histogram("chain_disconnect_seconds", "Wall time to disconnect one block.", telemetry.LatencyBuckets),
		scriptSeconds:     reg.Histogram("chain_script_verify_seconds", "Wall time of the parallel script-verification phase per block.", telemetry.LatencyBuckets),
		scriptJobs:        reg.Counter("chain_script_jobs_total", "Input scripts verified by the parallel pipeline."),
		reorgDepth:        reg.Histogram("chain_reorg_depth", "Blocks disconnected per reorganization.", []float64{1, 2, 3, 5, 8, 13, 21}),

		commits:       reg.Counter("store_commits_total", "Atomic batches committed to the store."),
		commitSeconds: reg.Histogram("store_commit_seconds", "Wall time of one atomic batch commit.", telemetry.LatencyBuckets),
		commitOps:     reg.Histogram("store_batch_ops", "Operations per committed batch.", telemetry.ExpBuckets(1, 4, 8)),
	}
	reg.GaugeFunc("chain_height", "Height of the main-chain tip.", func() float64 {
		return float64(c.BestHeight())
	})
	reg.GaugeFunc("chain_header_height", "Height of the best-header tip; the gap above chain_height is the sync backlog.", func() float64 {
		return float64(c.HeaderHeight())
	})
	reg.GaugeFunc("chain_parked_bodies", "Out-of-order bodies currently parked awaiting predecessors.", func() float64 {
		return float64(c.ParkedCount())
	})
	reg.GaugeFunc("chain_utxo_size", "Entries in the unspent-txout table (the paper's deadweight metric).", func() float64 {
		return float64(c.UtxoSize())
	})
	reg.GaugeFunc("chain_orphan_pool_blocks", "Orphan blocks currently held.", func() float64 {
		return float64(c.OrphanCount())
	})
	reg.GaugeFunc("chain_orphan_pool_bytes", "Serialized bytes of held orphan blocks.", func() float64 {
		return float64(c.OrphanBytes())
	})
	reg.GaugeFunc("chain_spent_journal_size", "Records in the resident spend journal.", func() float64 {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return float64(len(c.spent))
	})
	reg.GaugeFunc("store_flushed_height", "Durability watermark: highest block height guaranteed to survive a store crash.", func() float64 {
		return float64(c.FlushedHeight())
	})
	reg.LabeledGaugeFunc("chain_utxo_shard_size", "Entries per lock-striped shard of the unspent-txout view.", "shard", func() []telemetry.LabeledValue {
		sizes := c.utxo.ShardSizes()
		out := make([]telemetry.LabeledValue, len(sizes))
		for i, n := range sizes {
			out[i] = telemetry.LabeledValue{Label: strconv.Itoa(i), Value: float64(n)}
		}
		return out
	})
	if sc := c.sigCache; sc != nil {
		reg.CounterFunc("sigcache_hits_total", "Signature verifications answered from the cache.", func() float64 {
			return float64(sc.Stats().Hits)
		})
		reg.CounterFunc("sigcache_misses_total", "Signature verifications that ran the full check.", func() float64 {
			return float64(sc.Stats().Misses)
		})
		reg.CounterFunc("sigcache_evictions_total", "Cache entries evicted to stay within capacity.", func() float64 {
			return float64(sc.Stats().Evictions)
		})
		reg.GaugeFunc("sigcache_size", "Entries currently cached.", func() float64 {
			return float64(sc.Stats().Size)
		})
	}
}

// SetSpans routes commitment-latency span stages to s: first sight and
// connect of blocks, inclusion/connect of their transactions, and the
// durability and confirmation watermarks. Call once, before processing
// blocks; s may be nil (spans disabled, the default).
func (c *Chain) SetSpans(s *telemetry.SpanStore) {
	c.tel.spans = s
}

// spanConnected marks the span stages a block connect implies. Mined and
// connected are the same instant for a transaction observed through its
// block; nodes that tracked the tx earlier (miner, mempool) have already
// recorded the earlier stages. Observe-only: historical blocks replayed
// during initial sync create no spans here — only subjects some other
// path chose to track accrue stages. Caller holds c.mu.
func (c *Chain) spanConnected(node *blockNode) {
	sp := c.tel.spans
	if sp == nil {
		return
	}
	sp.Observe(telemetry.SpanBlock, node.hash, telemetry.StageConnected)
	sp.MarkHeight(node.hash, node.height)
	for i, tx := range node.block.Transactions {
		if i == 0 {
			continue // coinbase: never submitted, relayed or pooled
		}
		txid := tx.TxHash()
		sp.Observe(telemetry.SpanTx, txid, telemetry.StageMined)
		sp.Observe(telemetry.SpanTx, txid, telemetry.StageConnected)
		sp.MarkHeight(txid, node.height)
	}
	sp.NotifyDurable(c.flushedHeightLocked())
	sp.NotifyHeight(node.height)
}

// recordStatus translates a ProcessBlock outcome into counters and a
// trace event. Connected blocks are counted in connectBlock (a reorg
// connects several per call), so StatusMainChain records nothing here.
func (c *Chain) recordStatus(hash chainhash.Hash, status BlockStatus, err error) {
	switch status {
	case StatusSideChain:
		c.tel.sideBlocks.Inc()
		if c.tel.tracer != nil {
			c.tel.tracer.Record(telemetry.EvBlockSideChain, hash.String(), "")
		}
	case StatusOrphan:
		c.tel.orphaned.Inc()
		if c.tel.tracer != nil {
			c.tel.tracer.Record(telemetry.EvBlockOrphaned, hash.String(), "")
		}
	case StatusDuplicate:
		c.tel.duplicates.Inc()
	case StatusParked:
		// Counted in parkBlockLocked (an over-cap park is dropped, not
		// held); nothing to record here.
	case StatusInvalid:
		c.tel.invalid.Inc()
		if c.tel.tracer != nil {
			detail := ""
			if err != nil {
				detail = err.Error()
			}
			c.tel.tracer.Record(telemetry.EvBlockInvalid, hash.String(), detail)
		}
	}
}

// traceConnected records a block-connected lifecycle event.
func (c *Chain) traceConnected(node *blockNode) {
	if c.tel.tracer == nil {
		return
	}
	c.tel.tracer.Record(telemetry.EvBlockConnected, node.hash.String(),
		fmt.Sprintf("height=%d txs=%d", node.height, len(node.block.Transactions)))
}

// observeSince is time.Since in seconds for latency histograms. Latency
// uses the wall clock even under a simulated chain clock: a virtual
// clock does not advance during validation, so it would observe zero.
func observeSince(h *telemetry.Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}
