package chain

import (
	"errors"
	"testing"
	"time"

	"typecoin/internal/chainhash"
	"typecoin/internal/clock"
	"typecoin/internal/store"
	"typecoin/internal/wire"
)

// mineChainBlocks builds a donor chain of n blocks and returns them, so
// tests can feed headers and bodies to a separate chain in any order.
func mineChainBlocks(t testing.TB, n int) (*Chain, *clock.Simulated, []*wire.MsgBlock) {
	t.Helper()
	donor, clk := newTestChain(t)
	blocks := extend(t, donor, clk, n, 0xd0)
	return donor, clk, blocks
}

func headersOf(blocks []*wire.MsgBlock) []wire.BlockHeader {
	out := make([]wire.BlockHeader, len(blocks))
	for i, b := range blocks {
		out[i] = b.Header
	}
	return out
}

func TestProcessHeadersExtendsHeaderTip(t *testing.T) {
	_, clk, blocks := mineChainBlocks(t, 30)
	c := New(RegTestParams(), clk)
	accepted, err := c.ProcessHeaders(headersOf(blocks))
	if err != nil {
		t.Fatalf("ProcessHeaders: %v", err)
	}
	if accepted != 30 {
		t.Fatalf("accepted = %d, want 30", accepted)
	}
	if got := c.HeaderHeight(); got != 30 {
		t.Fatalf("header height = %d, want 30", got)
	}
	if c.BestHeight() != 0 {
		t.Fatalf("connected height = %d, want 0 (no bodies yet)", c.BestHeight())
	}
	if c.HeaderTipHash() != blocks[29].BlockHash() {
		t.Fatal("header tip is not the last header")
	}
	// Re-offering the same headers is a no-op, not an error.
	if accepted, err := c.ProcessHeaders(headersOf(blocks)); err != nil || accepted != 30 {
		t.Fatalf("re-process: accepted=%d err=%v", accepted, err)
	}
}

func TestProcessHeadersRejectsOrphanSkeleton(t *testing.T) {
	_, clk, blocks := mineChainBlocks(t, 10)
	c := New(RegTestParams(), clk)
	// Headers that skip the connecting prefix cannot attach.
	accepted, err := c.ProcessHeaders(headersOf(blocks[5:]))
	if !errors.Is(err, ErrOrphanHeader) {
		t.Fatalf("err = %v, want ErrOrphanHeader", err)
	}
	if accepted != 0 {
		t.Fatalf("accepted = %d, want 0", accepted)
	}
	// A partial batch accepts the connecting prefix, then fails.
	mixed := append(headersOf(blocks[:3]), headersOf(blocks[6:])...)
	accepted, err = c.ProcessHeaders(mixed)
	if !errors.Is(err, ErrOrphanHeader) || accepted != 3 {
		t.Fatalf("mixed batch: accepted=%d err=%v", accepted, err)
	}
}

func TestProcessHeadersRejectsInvalid(t *testing.T) {
	_, clk, blocks := mineChainBlocks(t, 3)
	c := New(RegTestParams(), clk)
	bad := headersOf(blocks)
	bad[1].Timestamp = bad[1].Timestamp.Add(3 * time.Hour) // future; also breaks PoW solution
	if _, err := c.ProcessHeaders(bad); err == nil {
		t.Fatal("tampered header accepted")
	}
	// An unsolved header fails proof of work.
	unsolved := headersOf(blocks)
	unsolved[2].Nonce++
	if accepted, err := c.ProcessHeaders(unsolved); !errors.Is(err, ErrBadProofOfWork) {
		t.Fatalf("accepted=%d err=%v, want ErrBadProofOfWork", accepted, err)
	}
}

func TestOutOfOrderBodiesParkAndConnect(t *testing.T) {
	_, clk, blocks := mineChainBlocks(t, 12)
	c := New(RegTestParams(), clk)
	if _, err := c.ProcessHeaders(headersOf(blocks)); err != nil {
		t.Fatal(err)
	}
	// Deliver bodies in reverse: all but the first park.
	for i := len(blocks) - 1; i > 0; i-- {
		status, err := c.ProcessBlock(blocks[i])
		if err != nil {
			t.Fatalf("body %d: %v", i, err)
		}
		if status != StatusParked {
			t.Fatalf("body %d status = %v, want parked", i, status)
		}
	}
	if got := c.ParkedCount(); got != 11 {
		t.Fatalf("parked = %d, want 11", got)
	}
	// The first body unblocks the whole parked run.
	status, err := c.ProcessBlock(blocks[0])
	if err != nil || status != StatusMainChain {
		t.Fatalf("body 0: status=%v err=%v", status, err)
	}
	if c.BestHeight() != 12 {
		t.Fatalf("connected height = %d, want 12", c.BestHeight())
	}
	if c.ParkedCount() != 0 {
		t.Fatalf("parked = %d after connect, want 0", c.ParkedCount())
	}
	if err := c.AuditFromGenesis(); err != nil {
		t.Fatal(err)
	}
}

func TestNextNeededBodiesFollowsSkeleton(t *testing.T) {
	_, clk, blocks := mineChainBlocks(t, 8)
	c := New(RegTestParams(), clk)
	if got := c.NextNeededBodies(16); len(got) != 0 {
		t.Fatalf("fresh chain needs %d bodies, want 0", len(got))
	}
	if _, err := c.ProcessHeaders(headersOf(blocks)); err != nil {
		t.Fatal(err)
	}
	need := c.NextNeededBodies(16)
	if len(need) != 8 {
		t.Fatalf("need %d bodies, want 8", len(need))
	}
	for i, nb := range need {
		if nb.Hash != blocks[i].BlockHash() || nb.Height != i+1 {
			t.Fatalf("need[%d] out of skeleton order", i)
		}
	}
	// A parked body and a connected body both leave the list; the cap is
	// honored.
	if _, err := c.ProcessBlock(blocks[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProcessBlock(blocks[0]); err != nil {
		t.Fatal(err)
	}
	need = c.NextNeededBodies(3)
	want := []int{1, 3, 4}
	if len(need) != 3 {
		t.Fatalf("need %d bodies, want 3", len(need))
	}
	for i, idx := range want {
		if need[i].Hash != blocks[idx].BlockHash() {
			t.Fatalf("need[%d] = %s, want block %d", i, need[i].Hash, idx)
		}
	}
}

func TestHeaderLocatorAndHeadersAfter(t *testing.T) {
	_, clk, blocks := mineChainBlocks(t, 40)
	c := New(RegTestParams(), clk)
	if _, err := c.ProcessHeaders(headersOf(blocks)); err != nil {
		t.Fatal(err)
	}
	// Headers are only served once their bodies are: a bare skeleton is
	// not relayed (see HeadersAfter). Before any body connects, a fresh
	// peer gets nothing.
	fresh := New(RegTestParams(), clk)
	if got := c.HeadersAfter(fresh.HeaderLocator(), wire.MaxHeadersPerMsg); len(got) != 0 {
		t.Fatalf("bodyless skeleton served %d headers, want 0", len(got))
	}
	// Connect the first 30 bodies: serving stops at the body frontier.
	for _, blk := range blocks[:30] {
		if _, err := c.ProcessBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.HeadersAfter(fresh.HeaderLocator(), wire.MaxHeadersPerMsg); len(got) != 30 {
		t.Fatalf("partially-backed skeleton served %d headers, want 30", len(got))
	}
	for _, blk := range blocks[30:] {
		if _, err := c.ProcessBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	loc := c.HeaderLocator()
	if loc[0] != blocks[39].BlockHash() {
		t.Fatal("locator does not start at the header tip")
	}
	if loc[len(loc)-1] != c.Params().GenesisBlock.BlockHash() {
		t.Fatal("locator does not end at genesis")
	}
	// A peer with the same skeleton gets nothing after the locator.
	if got := c.HeadersAfter(loc, wire.MaxHeadersPerMsg); len(got) != 0 {
		t.Fatalf("caught-up peer got %d headers", len(got))
	}
	// A peer 40 behind gets the whole skeleton from its genesis locator.
	got := c.HeadersAfter(fresh.HeaderLocator(), wire.MaxHeadersPerMsg)
	if len(got) != 40 {
		t.Fatalf("fresh peer got %d headers, want 40", len(got))
	}
	if got[0].BlockHash() != blocks[0].BlockHash() {
		t.Fatal("headers do not start after genesis")
	}
	// The serve limit is honored.
	if got := c.HeadersAfter(fresh.HeaderLocator(), 7); len(got) != 7 {
		t.Fatalf("limited serve returned %d headers", len(got))
	}
}

func TestHeaderIndexSurvivesReopen(t *testing.T) {
	_, clk, blocks := mineChainBlocks(t, 25)
	st := store.NewMem()
	c, err := Open(Config{Params: RegTestParams(), Clock: clk, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	// Accept the full skeleton but connect only the first 10 bodies:
	// the persisted header tip must run ahead of the connected tip.
	if _, err := c.ProcessHeaders(headersOf(blocks)); err != nil {
		t.Fatal(err)
	}
	for _, blk := range blocks[:10] {
		if _, err := c.ProcessBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	if c.BestHeight() != 10 || c.HeaderHeight() != 25 {
		t.Fatalf("pre-reopen heights: connected=%d header=%d", c.BestHeight(), c.HeaderHeight())
	}

	re, err := Open(Config{Params: RegTestParams(), Clock: clk, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if re.BestHeight() != 10 {
		t.Fatalf("reopened connected height = %d, want 10", re.BestHeight())
	}
	if re.HeaderHeight() != 25 {
		t.Fatalf("reopened header height = %d, want 25 (skeleton lost)", re.HeaderHeight())
	}
	if re.HeaderTipHash() != blocks[24].BlockHash() {
		t.Fatal("reopened header tip mismatch")
	}
	// The reopened node knows exactly which bodies it still needs, and
	// connecting them resumes where it left off.
	need := re.NextNeededBodies(100)
	if len(need) != 15 || need[0].Hash != blocks[10].BlockHash() {
		t.Fatalf("reopened node needs %d bodies starting at %v", len(need), need)
	}
	for _, blk := range blocks[10:] {
		if status, err := re.ProcessBlock(blk); err != nil || status != StatusMainChain {
			t.Fatalf("resume connect: status=%v err=%v", status, err)
		}
	}
	if re.BestHeight() != 25 {
		t.Fatalf("resumed height = %d, want 25", re.BestHeight())
	}
	if err := re.AuditFromGenesis(); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderReorgPrefersMoreWork(t *testing.T) {
	// Two donors fork at height 5: branch A reaches 8, branch B reaches
	// 12. A node that saw A's skeleton first must switch its header tip
	// and body schedule to B.
	donor, clk, shared := mineChainBlocks(t, 5)
	branchA := extend(t, donor, clk, 3, 0xaa)

	donorB := New(RegTestParams(), clk)
	for _, blk := range shared {
		if _, err := donorB.ProcessBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	var branchB []*wire.MsgBlock
	for i := 0; i < 7; i++ {
		// Offset timestamps so branch B's blocks differ from branch A's.
		ts := clk.Now().Add(time.Duration(i+1) * time.Minute)
		blk := mineEmpty(t, donorB, donorB.BestHash(), donorB.BestHeight()+1, ts, 0xbb)
		if _, err := donorB.ProcessBlock(blk); err != nil {
			t.Fatal(err)
		}
		branchB = append(branchB, blk)
	}

	c := New(RegTestParams(), clk)
	if _, err := c.ProcessHeaders(headersOf(append(append([]*wire.MsgBlock{}, shared...), branchA...))); err != nil {
		t.Fatal(err)
	}
	if c.HeaderHeight() != 8 {
		t.Fatalf("header height = %d, want 8", c.HeaderHeight())
	}
	if _, err := c.ProcessHeaders(headersOf(branchB)); err != nil {
		t.Fatal(err)
	}
	if c.HeaderHeight() != 12 {
		t.Fatalf("header height after reorg = %d, want 12", c.HeaderHeight())
	}
	if c.HeaderTipHash() != branchB[6].BlockHash() {
		t.Fatal("header tip did not move to the heavier branch")
	}
	// The body schedule follows the heavier skeleton.
	need := c.NextNeededBodies(100)
	if len(need) != 12 {
		t.Fatalf("need %d bodies, want 12", len(need))
	}
	if need[5].Hash != branchB[0].BlockHash() {
		t.Fatal("body schedule still follows the lighter branch")
	}
	// Availability is per chain, not per height: a peer whose best
	// announced header is branch A's tip can only serve up to the fork
	// point of the now-heavier skeleton.
	if got := c.ServableHeight(branchB[6].BlockHash()); got != 12 {
		t.Fatalf("ServableHeight(tip B) = %d, want 12", got)
	}
	if got := c.ServableHeight(branchA[2].BlockHash()); got != 5 {
		t.Fatalf("ServableHeight(tip A) = %d, want 5 (fork point)", got)
	}
	if got := c.ServableHeight(chainhash.Hash{0xde, 0xad}); got != 0 {
		t.Fatalf("ServableHeight(unknown) = %d, want 0", got)
	}
}
