package chain

import (
	"math/big"
	"time"

	"typecoin/internal/chainhash"
	"typecoin/internal/script"
	"typecoin/internal/wire"
)

// Params describes a chain instance. RegTestParams mirrors Bitcoin's
// regression-test mode: real proof-of-work at trivial difficulty, so a
// commodity machine can mine blocks on demand while every consensus rule
// still runs.
type Params struct {
	Name  string
	Magic uint32

	// PowLimit is the easiest permissible target; PowLimitBits is its
	// compact encoding, used by the genesis block and by regtest blocks.
	PowLimit     *big.Int
	PowLimitBits uint32

	// TargetTimespan / TargetSpacing control difficulty retargeting;
	// RetargetInterval blocks per adjustment. NoRetarget disables
	// adjustment entirely (regtest behaviour).
	TargetTimespan   time.Duration
	TargetSpacing    time.Duration
	RetargetInterval int
	NoRetarget       bool

	// BaseSubsidy is the initial coinbase reward in satoshi;
	// SubsidyHalvingInterval is the halving period in blocks.
	BaseSubsidy            int64
	SubsidyHalvingInterval int

	// CoinbaseMaturity is the number of confirmations before coinbase
	// outputs may be spent.
	CoinbaseMaturity int

	// ConfirmationDepth is the number of subsequent blocks after which a
	// transaction is treated as irreversible ("usually taken as five",
	// paper Section 1).
	ConfirmationDepth int

	// GenesisBlock is the chain's first block.
	GenesisBlock *wire.MsgBlock
}

// regTestPowLimit allows hashes with roughly 9 leading zero bits: a few
// hundred hash attempts per block, instantaneous on any machine, while
// still exercising the full proof-of-work path.
var regTestPowLimit = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 247), big.NewInt(1))

// RegTestParams returns parameters for an isolated regression-test chain.
// Each call builds a fresh genesis block value; all calls agree on its
// hash.
func RegTestParams() *Params {
	p := &Params{
		Name:                   "regtest",
		Magic:                  wire.RegTestMagic,
		PowLimit:               regTestPowLimit,
		PowLimitBits:           BigToCompact(regTestPowLimit),
		TargetTimespan:         24 * time.Hour,
		TargetSpacing:          10 * time.Minute,
		RetargetInterval:       144,
		NoRetarget:             true,
		BaseSubsidy:            50 * wire.SatoshiPerBitcoin,
		SubsidyHalvingInterval: 150,
		CoinbaseMaturity:       10,
		ConfirmationDepth:      5,
	}
	p.GenesisBlock = makeGenesisBlock(p)
	return p
}

// makeGenesisBlock constructs the deterministic genesis block: a single
// coinbase paying an unspendable OP_RETURN, mined against the pow limit.
func makeGenesisBlock(p *Params) *wire.MsgBlock {
	coinbase := wire.NewMsgTx(wire.TxVersion)
	coinbase.AddTxIn(&wire.TxIn{
		PreviousOutPoint: wire.OutPoint{Hash: chainhash.ZeroHash, Index: 0xffffffff},
		SignatureScript:  []byte("typecoin regtest genesis / PLDI 2015"),
		Sequence:         wire.MaxTxInSequenceNum,
	})
	pkScript, err := script.NullDataScript([]byte("peer-to-peer affine commitment"))
	if err != nil {
		panic("chain: genesis script: " + err.Error())
	}
	coinbase.AddTxOut(&wire.TxOut{Value: 0, PkScript: pkScript})

	blk := &wire.MsgBlock{
		Header: wire.BlockHeader{
			Version:    1,
			PrevBlock:  chainhash.ZeroHash,
			MerkleRoot: wire.ComputeMerkleRoot([]*wire.MsgTx{coinbase}),
			Timestamp:  time.Unix(1431475200, 0).UTC(), // 2015-05-13, post-PLDI'15 deadline
			Bits:       p.PowLimitBits,
			Nonce:      0,
		},
		Transactions: []*wire.MsgTx{coinbase},
	}
	// Grind the nonce so even the genesis block carries valid work.
	for CheckProofOfWork(blk.BlockHash(), blk.Header.Bits, p.PowLimit) != nil {
		blk.Header.Nonce++
	}
	return blk
}

// CalcBlockSubsidy returns the coinbase reward at the given height.
func (p *Params) CalcBlockSubsidy(height int) int64 {
	if p.SubsidyHalvingInterval <= 0 {
		return p.BaseSubsidy
	}
	halvings := height / p.SubsidyHalvingInterval
	if halvings >= 64 {
		return 0
	}
	return p.BaseSubsidy >> uint(halvings)
}
