package chain

import (
	"sync"
	"testing"
	"time"

	"typecoin/internal/chainhash"
	"typecoin/internal/wire"
)

// TestConcurrentReadersDuringReorg hammers the chain's read API from
// several goroutines while blocks connect and a reorganization runs.
// Its value is mostly under -race: every reader must observe a
// consistent snapshot without torn state while the writer flips the
// main chain between branches.
func TestConcurrentReadersDuringReorg(t *testing.T) {
	c, clk := newTestChain(t)
	base := c.Params().GenesisBlock.Header.Timestamp

	// Pre-build and pre-solve both branches so the hot loop only feeds
	// blocks: main m1..m12 from genesis, and a heavier fork f7..f14 from
	// m6 that overtakes the main branch and forces a reorg.
	var main []*wire.MsgBlock
	prev := c.Params().GenesisBlock.BlockHash()
	for h := 1; h <= 12; h++ {
		blk := mineEmpty(t, c, prev, h, base.Add(time.Duration(h)*time.Minute), 0)
		main = append(main, blk)
		prev = blk.BlockHash()
	}
	var fork []*wire.MsgBlock
	prev = main[5].BlockHash() // m6, height 6
	for h := 7; h <= 14; h++ {
		blk := mineEmpty(t, c, prev, h, base.Add(time.Duration(h)*time.Minute+30*time.Second), 1)
		fork = append(fork, blk)
		prev = blk.BlockHash()
	}
	clk.Advance(time.Hour) // every pre-built timestamp is now in the past

	var txids []chainhash.Hash
	for _, blk := range append(append([]*wire.MsgBlock{}, main...), fork...) {
		txids = append(txids, blk.Transactions[0].TxHash())
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				snap := c.BestSnapshot()
				if snap.Height < 0 || snap.Work == nil || snap.Work.Sign() <= 0 {
					t.Errorf("inconsistent snapshot: %+v", snap)
					return
				}
				if !c.HaveBlock(snap.Hash) {
					t.Errorf("snapshot tip %s unknown to chain", snap.Hash)
					return
				}
				txid := txids[(g*7+i)%len(txids)]
				c.Confirmations(txid)
				if tx, ok := c.TxByID(txid); ok && tx.TxHash() != txid {
					t.Errorf("TxByID(%s) returned tx %s", txid, tx.TxHash())
					return
				}
				c.BlockOf(txid)
				c.LookupUtxo(wire.OutPoint{Hash: txid, Index: 0})
				c.BlocksAfter(c.Locator(), 5)
			}
		}(g)
	}

	for _, blk := range main {
		if status, err := c.ProcessBlock(blk); err != nil || status != StatusMainChain {
			t.Fatalf("main block: status %v, err %v", status, err)
		}
	}
	for _, blk := range fork {
		if _, err := c.ProcessBlock(blk); err != nil {
			t.Fatalf("fork block: %v", err)
		}
	}
	close(done)
	wg.Wait()

	if got := c.BestHeight(); got != 14 {
		t.Fatalf("final height = %d, want 14", got)
	}
	if got := c.BestHash(); got != fork[len(fork)-1].BlockHash() {
		t.Fatalf("tip = %s, want fork tip", got)
	}
	// The reorg must have moved the tx index with it: disconnected main
	// coinbases are gone, fork coinbases resolve.
	if got := c.Confirmations(main[11].Transactions[0].TxHash()); got != 0 {
		t.Errorf("disconnected coinbase has %d confirmations", got)
	}
	if _, ok := c.TxByID(fork[0].Transactions[0].TxHash()); !ok {
		t.Error("fork coinbase missing from tx index after reorg")
	}
}
