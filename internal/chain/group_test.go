package chain

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"typecoin/internal/clock"
	"typecoin/internal/store"
)

// TestReopenAfterGroupCommitKill runs a chain over the group-commit
// pipeline, drains it at one height, keeps mining with the tail pending,
// then kills the inner store without draining — the moral equivalent of
// SIGKILL inside the commit window. Reopening must recover exactly the
// drained prefix: the watermark height, never a half-applied batch.
func TestReopenAfterGroupCommitKill(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	params := RegTestParams()
	clk := clock.NewSimulated(params.GenesisBlock.Header.Timestamp.Add(time.Minute))

	file, err := store.OpenFile(dir)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	// A window the test never waits out: flushes happen only on Drain.
	g := store.NewGroup(file, store.GroupConfig{Interval: time.Hour, MaxBatches: 1 << 30})
	c, err := Open(Config{Params: params, Clock: clk, Store: g})
	if err != nil {
		t.Fatalf("Open over group store: %v", err)
	}

	extend(t, c, clk, 5, 0)
	if err := g.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := c.FlushedHeight(); got != 5 {
		t.Fatalf("FlushedHeight after drain = %d, want 5", got)
	}
	durableTip := c.BestHash()

	// Three more blocks ride the pipeline and never flush.
	extend(t, c, clk, 3, 1)
	if got, want := c.BestHeight(), 8; got != want {
		t.Fatalf("height = %d, want %d", got, want)
	}
	if got := c.FlushedHeight(); got != 5 {
		t.Fatalf("FlushedHeight with pending tail = %d, want 5", got)
	}

	// Kill: close the engine out from under the pipeline, discarding the
	// enqueued tail exactly as a process kill would.
	if err := file.Close(); err != nil {
		t.Fatalf("inner close: %v", err)
	}
	g.Close()

	c2, st2 := openFileChain(t, dir, clk)
	defer st2.Close()
	if got := c2.BestHeight(); got != 5 {
		t.Fatalf("recovered height = %d, want the watermark height 5", got)
	}
	if got := c2.BestHash(); got != durableTip {
		t.Fatalf("recovered tip = %s, want %s", got, durableTip)
	}
	// Synchronous store: the watermark is the tip by definition.
	if got := c2.FlushedHeight(); got != 5 {
		t.Fatalf("recovered FlushedHeight = %d, want 5", got)
	}
	if err := c2.AuditFromGenesis(); err != nil {
		t.Fatalf("audit after recovery: %v", err)
	}
}

// TestUtxoViewParallelReads hammers the sharded view from reader
// goroutines while blocks connect and disconnect (a reorg) on the main
// goroutine. Run under -race this is the proof that Lookup/Size/
// ShardSizes need no chain lock.
func TestUtxoViewParallelReads(t *testing.T) {
	c, clk := newTestChain(t)
	blks := extend(t, c, clk, 12, 0)

	view := c.UtxoView()
	seed := c.UtxoOutpoints()
	if len(seed) == 0 {
		t.Fatal("no outpoints to read")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := r
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := seed[i%len(seed)]
				view.Lookup(op) // may be nil mid-reorg; must not race
				if i%64 == 0 {
					view.Size()
					view.ShardSizes()
				}
				i++
			}
		}(r)
	}

	// Writer side: extend the chain, then force a reorg by building a
	// longer side branch from height 6.
	extend(t, c, clk, 6, 2)
	forkFrom := blks[5] // height 6
	prev := forkFrom.BlockHash()
	height := 7
	ts := clk.Now()
	for i := 0; i < 14; i++ {
		ts = ts.Add(time.Minute)
		blk := mineEmpty(t, c, prev, height, ts, 3)
		if _, err := c.ProcessBlock(blk); err != nil {
			t.Fatalf("side block %d: %v", height, err)
		}
		prev = blk.BlockHash()
		height++
	}
	close(stop)
	wg.Wait()

	if got, want := c.BestHeight(), 20; got != want {
		t.Fatalf("post-reorg height = %d, want %d", got, want)
	}
	// The view must agree with itself after the storm.
	if got, want := len(c.UtxoOutpoints()), c.UtxoSize(); got != want {
		t.Fatalf("Outpoints count %d != Size %d", got, want)
	}
}
