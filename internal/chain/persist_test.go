package chain

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"typecoin/internal/chainhash"
	"typecoin/internal/clock"
	"typecoin/internal/store"
	"typecoin/internal/wire"
)

func openFileChain(t testing.TB, dir string, clk clock.Clock) (*Chain, *store.File) {
	t.Helper()
	st, err := store.OpenFile(dir)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	c, err := Open(Config{Params: RegTestParams(), Clock: clk, Store: st})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return c, st
}

// mineSpend builds and connects a block whose second transaction spends
// the given anyone-can-spend outpoint, paying its value (minus a fee
// folded into the coinbase) back to an anyone-can-spend output.
func mineSpend(t testing.TB, c *Chain, clk *clock.Simulated, out wire.OutPoint, value int64, tag byte) *wire.MsgTx {
	t.Helper()
	spend := wire.NewMsgTx(wire.TxVersion)
	spend.AddTxIn(&wire.TxIn{PreviousOutPoint: out, Sequence: wire.MaxTxInSequenceNum})
	spend.AddTxOut(&wire.TxOut{Value: value - 1000, PkScript: []byte{0x51}})

	ts := clk.Advance(time.Minute)
	height := c.BestHeight() + 1
	coinbase := wire.NewMsgTx(wire.TxVersion)
	coinbase.AddTxIn(&wire.TxIn{
		PreviousOutPoint: wire.OutPoint{Hash: chainhash.ZeroHash, Index: 0xffffffff},
		SignatureScript:  []byte{byte(height), byte(height >> 8), tag},
		Sequence:         wire.MaxTxInSequenceNum,
	})
	coinbase.AddTxOut(&wire.TxOut{
		Value:    c.Params().CalcBlockSubsidy(height) + 1000,
		PkScript: []byte{0x51},
	})
	blk := &wire.MsgBlock{
		Header: wire.BlockHeader{
			Version:    1,
			PrevBlock:  c.BestHash(),
			MerkleRoot: wire.ComputeMerkleRoot([]*wire.MsgTx{coinbase, spend}),
			Timestamp:  ts,
			Bits:       c.Params().PowLimitBits,
		},
		Transactions: []*wire.MsgTx{coinbase, spend},
	}
	solve(t, blk, c.Params())
	if status, err := c.ProcessBlock(blk); err != nil || status != StatusMainChain {
		t.Fatalf("spend block: status %v, err %v", status, err)
	}
	return spend
}

// TestReopenPreservesChain closes a file-backed chain and reopens the
// same directory: tip, UTXO set, spend journal and the transaction index
// must all come back, and the from-genesis audit must pass on the
// reloaded state.
func TestReopenPreservesChain(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	params := RegTestParams()
	clk := clock.NewSimulated(params.GenesisBlock.Header.Timestamp.Add(time.Minute))

	c, st := openFileChain(t, dir, clk)
	blks := extend(t, c, clk, 12, 0)
	cbTx := blks[0].Transactions[0]
	cbOut := wire.OutPoint{Hash: cbTx.TxHash(), Index: 0}
	spend := mineSpend(t, c, clk, cbOut, cbTx.TxOut[0].Value, 0x42)

	wantHash, wantHeight := c.BestHash(), c.BestHeight()
	wantUtxos := c.UtxoOutpoints()
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2, st2 := openFileChain(t, dir, clk)
	defer st2.Close()
	if got := c2.BestHash(); got != wantHash {
		t.Fatalf("reopened tip = %s, want %s", got, wantHash)
	}
	if got := c2.BestHeight(); got != wantHeight {
		t.Fatalf("reopened height = %d, want %d", got, wantHeight)
	}
	if got := len(c2.UtxoOutpoints()); got != len(wantUtxos) {
		t.Fatalf("reopened UTXO size = %d, want %d", got, len(wantUtxos))
	}
	for _, op := range wantUtxos {
		if c2.LookupUtxo(op) == nil {
			t.Fatalf("utxo %v missing after reopen", op)
		}
	}
	rec, spent := c2.IsSpent(cbOut)
	if !spent || rec.Spender != spend.TxHash() {
		t.Fatalf("spend journal lost: spent=%v rec=%+v", spent, rec)
	}
	if _, ok := c2.TxByID(spend.TxHash()); !ok {
		t.Fatal("transaction index not rebuilt")
	}
	if err := c2.AuditFromGenesis(); err != nil {
		t.Fatalf("audit after reopen: %v", err)
	}
}

// TestReorgAfterReopen persists a main chain and a lighter side branch,
// reopens the store, then extends the side branch past the main chain:
// the reorganization must succeed using only store-loaded state — in
// particular the spend journals of the blocks being disconnected.
func TestReorgAfterReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	params := RegTestParams()
	clk := clock.NewSimulated(params.GenesisBlock.Header.Timestamp.Add(time.Minute))

	c, st := openFileChain(t, dir, clk)
	blks := extend(t, c, clk, 12, 0)
	forkHash := c.BestHash() // height 12
	forkHeight := c.BestHeight()

	// Main branch gains one more block spending an early coinbase.
	cbTx := blks[0].Transactions[0]
	cbOut := wire.OutPoint{Hash: cbTx.TxHash(), Index: 0}
	mineSpend(t, c, clk, cbOut, cbTx.TxOut[0].Value, 0x42)

	// A competing branch from the fork point, same length: side chain.
	ts := clk.Advance(time.Minute)
	side1 := mineEmpty(t, c, forkHash, forkHeight+1, ts, 0x77)
	if status, err := c.ProcessBlock(side1); err != nil || status != StatusSideChain {
		t.Fatalf("side block: status %v, err %v", status, err)
	}

	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2, st2 := openFileChain(t, dir, clk)
	defer st2.Close()
	if !c2.HaveBlock(side1.BlockHash()) {
		t.Fatal("side block lost across reopen")
	}
	if _, spent := c2.IsSpent(cbOut); !spent {
		t.Fatal("spend journal lost across reopen")
	}

	// Extending the side branch now outweighs the main chain and forces
	// a reorg that disconnects the reloaded spend block.
	ts = clk.Advance(time.Minute)
	side2 := mineEmpty(t, c2, side1.BlockHash(), forkHeight+2, ts, 0x78)
	if status, err := c2.ProcessBlock(side2); err != nil || status != StatusMainChain {
		t.Fatalf("reorg block: status %v, err %v", status, err)
	}
	if got := c2.BestHash(); got != side2.BlockHash() {
		t.Fatalf("tip after reorg = %s, want %s", got, side2.BlockHash())
	}
	// The disconnected spend must be undone: the coinbase output is
	// unspent again.
	if _, spent := c2.IsSpent(cbOut); spent {
		t.Fatal("reorged-away spend still journaled")
	}
	if c2.LookupUtxo(cbOut) == nil {
		t.Fatal("reorged-away spend not restored to UTXO set")
	}
	if err := c2.AuditFromGenesis(); err != nil {
		t.Fatalf("audit after reorg: %v", err)
	}

	// And the reorged state survives another reopen.
	if err := st2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	c3, st3 := openFileChain(t, dir, clk)
	defer st3.Close()
	if got := c3.BestHash(); got != side2.BlockHash() {
		t.Fatalf("tip after second reopen = %s, want %s", got, side2.BlockHash())
	}
	if err := c3.AuditFromGenesis(); err != nil {
		t.Fatalf("audit after second reopen: %v", err)
	}
}

// TestIntraBlockSpendDisconnect reorgs away a block that both creates
// and spends an output in the same block: after the disconnect the
// intermediate outpoint must not reappear in the UTXO set (regression
// test for restore-then-remove ordering).
func TestIntraBlockSpendDisconnect(t *testing.T) {
	c, clk := newTestChain(t)
	blks := extend(t, c, clk, 12, 0)
	forkHash := c.BestHash()
	forkHeight := c.BestHeight()

	// Block 13: coinbase, spendA (consumes blks[0] coinbase), spendB
	// (consumes spendA's output — the intra-block chain).
	cbTx := blks[0].Transactions[0]
	spendA := wire.NewMsgTx(wire.TxVersion)
	spendA.AddTxIn(&wire.TxIn{
		PreviousOutPoint: wire.OutPoint{Hash: cbTx.TxHash(), Index: 0},
		Sequence:         wire.MaxTxInSequenceNum,
	})
	spendA.AddTxOut(&wire.TxOut{Value: cbTx.TxOut[0].Value - 1000, PkScript: []byte{0x51}})
	midOut := wire.OutPoint{Hash: spendA.TxHash(), Index: 0}
	spendB := wire.NewMsgTx(wire.TxVersion)
	spendB.AddTxIn(&wire.TxIn{PreviousOutPoint: midOut, Sequence: wire.MaxTxInSequenceNum})
	spendB.AddTxOut(&wire.TxOut{Value: spendA.TxOut[0].Value - 1000, PkScript: []byte{0x51}})

	ts := clk.Advance(time.Minute)
	height := forkHeight + 1
	coinbase := wire.NewMsgTx(wire.TxVersion)
	coinbase.AddTxIn(&wire.TxIn{
		PreviousOutPoint: wire.OutPoint{Hash: chainhash.ZeroHash, Index: 0xffffffff},
		SignatureScript:  []byte{byte(height), byte(height >> 8), 0x99},
		Sequence:         wire.MaxTxInSequenceNum,
	})
	coinbase.AddTxOut(&wire.TxOut{
		Value:    c.Params().CalcBlockSubsidy(height) + 2000,
		PkScript: []byte{0x51},
	})
	txs := []*wire.MsgTx{coinbase, spendA, spendB}
	blk := &wire.MsgBlock{
		Header: wire.BlockHeader{
			Version:    1,
			PrevBlock:  forkHash,
			MerkleRoot: wire.ComputeMerkleRoot(txs),
			Timestamp:  ts,
			Bits:       c.Params().PowLimitBits,
		},
		Transactions: txs,
	}
	solve(t, blk, c.Params())
	if status, err := c.ProcessBlock(blk); err != nil || status != StatusMainChain {
		t.Fatalf("chained-spend block: status %v, err %v", status, err)
	}
	if c.LookupUtxo(midOut) != nil {
		t.Fatal("intra-block-spent output in UTXO set while connected")
	}

	// Reorg the chained-spend block away with a heavier branch.
	ts = clk.Advance(time.Minute)
	side1 := mineEmpty(t, c, forkHash, forkHeight+1, ts, 0x77)
	if _, err := c.ProcessBlock(side1); err != nil {
		t.Fatalf("side block: %v", err)
	}
	ts = clk.Advance(time.Minute)
	side2 := mineEmpty(t, c, side1.BlockHash(), forkHeight+2, ts, 0x78)
	if status, err := c.ProcessBlock(side2); err != nil || status != StatusMainChain {
		t.Fatalf("reorg block: status %v, err %v", status, err)
	}

	if c.LookupUtxo(midOut) != nil {
		t.Fatal("intermediate outpoint resurrected by disconnect")
	}
	if c.LookupUtxo(wire.OutPoint{Hash: cbTx.TxHash(), Index: 0}) == nil {
		t.Fatal("original coinbase output not restored by disconnect")
	}
	if err := c.AuditFromGenesis(); err != nil {
		t.Fatalf("audit after intra-block reorg: %v", err)
	}
}

// TestStoreFailureRejectsBlock kills the store on a block's commit: the
// block must be rejected and the resident chain state left exactly as it
// was before the block arrived — memory never runs ahead of disk.
func TestStoreFailureRejectsBlock(t *testing.T) {
	params := RegTestParams()
	clk := clock.NewSimulated(params.GenesisBlock.Header.Timestamp.Add(time.Minute))
	// Apply 1 is the genesis bootstrap; applies 2-4 connect three blocks;
	// apply 5 dies mid-commit.
	faulty := store.NewFault(store.NewMem(), 5, -1)
	c, err := Open(Config{Params: params, Clock: clk, Store: faulty})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	extend(t, c, clk, 3, 0)

	beforeHash, beforeHeight := c.BestHash(), c.BestHeight()
	beforeUtxos := c.UtxoSize()

	blk := mineEmpty(t, c, beforeHash, beforeHeight+1, clk.Advance(time.Minute), 0)
	status, err := c.ProcessBlock(blk)
	if !errors.Is(err, store.ErrClosed) {
		t.Fatalf("ProcessBlock on dead store: status %v, err %v, want ErrClosed", status, err)
	}
	if got := c.BestHash(); got != beforeHash {
		t.Fatalf("tip moved despite failed commit: %s", got)
	}
	if got := c.BestHeight(); got != beforeHeight {
		t.Fatalf("height moved despite failed commit: %d", got)
	}
	if got := c.UtxoSize(); got != beforeUtxos {
		t.Fatalf("UTXO size changed despite failed commit: %d, want %d", got, beforeUtxos)
	}
	if c.HaveBlock(blk.BlockHash()) {
		t.Fatal("rejected block remained in the index")
	}
}

// TestOpenRejectsTamperedState corrupts the persisted main-chain index
// and verifies Open refuses to load it.
func TestOpenRejectsTamperedState(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	params := RegTestParams()
	clk := clock.NewSimulated(params.GenesisBlock.Header.Timestamp.Add(time.Minute))

	c, st := openFileChain(t, dir, clk)
	extend(t, c, clk, 3, 0)
	// Point height 2 at the block stored for height 3.
	h3, _ := c.BlockAtHeight(3)
	wrong := h3.BlockHash()
	b := store.NewBatch()
	b.Put([]byte{'m', 0, 0, 0, 2}, wrong[:])
	if err := st.Apply(b); err != nil {
		t.Fatalf("tamper: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer st2.Close()
	if _, err := Open(Config{Params: params, Clock: clk, Store: st2}); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("Open on tampered state: err %v, want ErrCorruptState", err)
	}
}
