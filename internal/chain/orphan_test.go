package chain

import "testing"

// TestOrphanPoolBounded feeds a long run of parentless blocks and checks
// the orphan pool caps at its block limit, evicts oldest-first, and
// still lets the chain catch up once the missing span arrives.
func TestOrphanPoolBounded(t *testing.T) {
	donor, dclk := newTestChain(t)
	blocks := extend(t, donor, dclk, 10, 0)

	c, _ := newTestChain(t)
	c.SetOrphanLimits(4, 1<<20)

	// Blocks 2..10 all miss their parents: every one is an orphan, and
	// the pool never exceeds the cap.
	for i, blk := range blocks[1:] {
		status, err := c.ProcessBlock(blk)
		if err != nil {
			t.Fatalf("orphan %d: %v", i+2, err)
		}
		if status != StatusOrphan {
			t.Fatalf("orphan %d: status %v, want orphan", i+2, status)
		}
		if got := c.OrphanCount(); got > 4 {
			t.Fatalf("after orphan %d: pool holds %d blocks, cap 4", i+2, got)
		}
	}
	if got := c.OrphanCount(); got != 4 {
		t.Fatalf("pool holds %d orphans, want the 4 newest", got)
	}

	// Oldest-first eviction: blocks 2..6 are gone, so connecting block 1
	// adopts nothing and the held tail (7..10) stays orphaned.
	if status, err := c.ProcessBlock(blocks[0]); err != nil || status != StatusMainChain {
		t.Fatalf("block 1: status %v err %v", status, err)
	}
	if got := c.BestHeight(); got != 1 {
		t.Fatalf("height %d after block 1, want 1 (2..6 were evicted)", got)
	}
	if got := c.OrphanCount(); got != 4 {
		t.Fatalf("pool holds %d orphans after block 1, want 4", got)
	}

	// Re-feeding the evicted span adopts the held tail: full catch-up.
	for i, blk := range blocks[1:6] {
		if _, err := c.ProcessBlock(blk); err != nil {
			t.Fatalf("refeed block %d: %v", i+2, err)
		}
	}
	if got := c.BestHeight(); got != 10 {
		t.Fatalf("height %d after refeed, want 10", got)
	}
	if got := c.OrphanCount(); got != 0 {
		t.Fatalf("pool holds %d orphans after catch-up, want 0", got)
	}
	if got := c.OrphanBytes(); got != 0 {
		t.Fatalf("pool accounts %d orphan bytes after catch-up, want 0", got)
	}
}

// TestOrphanPoolByteBound checks the byte cap binds independently of the
// block-count cap.
func TestOrphanPoolByteBound(t *testing.T) {
	donor, dclk := newTestChain(t)
	blocks := extend(t, donor, dclk, 6, 0)

	c, _ := newTestChain(t)
	// Room for two typical orphans, generous block-count cap.
	cap2 := int64(len(blocks[1].Bytes())*2 + 1)
	c.SetOrphanLimits(100, cap2)

	for i, blk := range blocks[1:] {
		if _, err := c.ProcessBlock(blk); err != nil {
			t.Fatalf("orphan %d: %v", i+2, err)
		}
		if got := c.OrphanBytes(); got > cap2 {
			t.Fatalf("after orphan %d: pool accounts %d bytes, cap %d", i+2, got, cap2)
		}
	}
	if got := c.OrphanCount(); got != 2 {
		t.Fatalf("pool holds %d orphans, want 2 under the byte cap", got)
	}
}
