package chain

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"
	"time"

	"typecoin/internal/chainhash"
	"typecoin/internal/clock"
	"typecoin/internal/sigcache"
	"typecoin/internal/store"
	"typecoin/internal/telemetry"
	"typecoin/internal/wire"
)

// blockNode is one block in the block tree. "Each block contains a
// cryptographic hash of the previous block, thereby turning the set into
// a tree"; chain selection makes the tree behave as a list.
type blockNode struct {
	hash    chainhash.Hash
	parent  *blockNode
	height  int
	workSum *big.Int // cumulative work from genesis
	block   *wire.MsgBlock
	inMain  bool
}

// undoItem is one row of a block's spend journal: an outpoint the block
// consumed and the entry it held. The journal is persisted with the
// block's commit batch (see persist.go) and read back to disconnect,
// so reorgs work identically on a freshly restarted node.
type undoItem struct {
	op    wire.OutPoint
	entry *UtxoEntry
}

// medianTimePast computes the median timestamp of the last
// medianTimeBlocks ancestors (including the node itself).
func (n *blockNode) medianTimePast() time.Time {
	times := make([]time.Time, 0, medianTimeBlocks)
	for iter := n; iter != nil && len(times) < medianTimeBlocks; iter = iter.parent {
		times = append(times, iter.block.Header.Timestamp)
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	return times[len(times)/2]
}

// Notification describes a main-chain change delivered to subscribers.
type Notification struct {
	// Connected is true when Block joined the main chain, false when it
	// was disconnected during a reorganization.
	Connected bool
	Block     *wire.MsgBlock
	Height    int
}

// txLoc places a main-chain transaction: the block containing it and its
// position within that block's transaction list. Recording the index
// makes transaction retrieval O(1) instead of a hash-per-transaction
// scan of the block.
type txLoc struct {
	block chainhash.Hash
	index int
}

// Chain is the blockchain state machine for one node. It tracks the full
// block tree, selects the best chain by accumulated work, and maintains
// the UTXO table and spent-journal for the best chain. All methods are
// safe for concurrent use.
type Chain struct {
	params *Params
	clock  clock.Clock

	// sigCache caches successful signature verifications across the
	// mempool (relay time) and block connect; may be nil. It has its own
	// internal lock and is read by parallel script workers.
	sigCache *sigcache.Cache

	// st is the persistence engine. The resident maps below are the
	// working state; every main-chain mutation is also committed to st
	// as one atomic batch before it takes effect, and Open rebuilds the
	// maps from st on restart.
	st store.Store
	// persisters contribute subsystem rows (wallet view, ledger index)
	// to each commit batch; they run under mu while the batch is built.
	persisters []PersistFunc

	mu            sync.RWMutex
	index         map[chainhash.Hash]*blockNode
	tip           *blockNode
	headers       map[chainhash.Hash]*headerNode      // full header index (see headers.go)
	headerTip     *headerNode                         // best-header tip; work >= tip's
	hmain         []*headerNode                       // best header chain by height
	hdrDirty      []*headerNode                       // accepted headers awaiting a commit batch
	parked        map[chainhash.Hash]*wire.MsgBlock   // validated-header bodies awaiting predecessors
	parkedBytes   int64
	utxo          *UtxoView
	spent         map[wire.OutPoint]SpendRecord
	txToBlock     map[chainhash.Hash]txLoc            // main-chain txid -> location
	mainChain     []*blockNode                        // by height
	orphans       map[chainhash.Hash][]*wire.MsgBlock // parent hash -> waiting blocks
	orphanIndex   map[chainhash.Hash]orphanMeta       // orphan hash -> metadata
	orphanFIFO    []chainhash.Hash                    // orphan hashes in arrival order
	orphanBytes   int64
	maxOrphans    int   // cap on held orphan blocks (0 = default)
	maxOrphanByte int64 // cap on total orphan bytes (0 = default)
	scriptWorkers int   // goroutines for block script checks; 0 = GOMAXPROCS

	// baseFlushed is the tip height when the chain was opened: durable
	// by definition (it was loaded from the store), so FlushedHeight can
	// report it before any new commit advances a group-commit watermark.
	baseFlushed int

	// tel carries the registered collectors; the zero value (all nil
	// pointers) disables instrumentation. See telemetry.go.
	tel chainTelemetry

	subsMu sync.Mutex
	subs   []func(Notification)
}

// orphanMeta locates one held orphan block for O(1) membership tests
// and byte accounting during eviction.
type orphanMeta struct {
	parent chainhash.Hash
	size   int64
}

// Orphan pool bounds: a peer can always fabricate valid-PoW blocks with
// unknown parents (regtest difficulty is trivial; on mainnet withheld
// side branches serve the same purpose), so the pool of parentless
// blocks must be capped or it is a memory exhaustion vector.
const (
	DefaultMaxOrphans     = 64
	DefaultMaxOrphanBytes = 4 << 20
)

// Params returns the chain's parameters.
func (c *Chain) Params() *Params { return c.params }

// Clock returns the chain's time source, shared with layers (p2p ban
// bookkeeping, mempool fee floor decay) that must agree with the chain
// about what "now" means — in simulation, virtual time.
func (c *Chain) Clock() clock.Clock { return c.clock }

// SetOrphanLimits overrides the orphan pool bounds. Non-positive values
// restore the defaults. Lowering the limits takes effect on the next
// orphan arrival.
func (c *Chain) SetOrphanLimits(maxBlocks int, maxBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxOrphans = maxBlocks
	c.maxOrphanByte = maxBytes
}

// OrphanCount returns the number of held orphan blocks.
func (c *Chain) OrphanCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.orphanIndex)
}

// OrphanBytes returns the serialized size of all held orphan blocks.
func (c *Chain) OrphanBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.orphanBytes
}

// SigCache returns the signature verification cache so the mempool can
// share it; may be nil.
func (c *Chain) SigCache() *sigcache.Cache { return c.sigCache }

// SetScriptWorkers sets the number of goroutines used to verify block
// scripts: 1 forces serial verification, n <= 0 restores the default
// (GOMAXPROCS).
func (c *Chain) SetScriptWorkers(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.scriptWorkers = n
}

// Subscribe registers fn to receive main-chain change notifications. The
// callback runs synchronously after the chain mutation completes, in
// chain order; it must not call back into Chain mutation methods.
func (c *Chain) Subscribe(fn func(Notification)) {
	c.subsMu.Lock()
	defer c.subsMu.Unlock()
	c.subs = append(c.subs, fn)
}

func (c *Chain) notify(events []Notification) {
	c.subsMu.Lock()
	subs := make([]func(Notification), len(c.subs))
	copy(subs, c.subs)
	c.subsMu.Unlock()
	for _, ev := range events {
		for _, fn := range subs {
			fn(ev)
		}
	}
}

// BlockStatus reports how ProcessBlock disposed of a block.
type BlockStatus int

const (
	// StatusInvalid means the block failed validation.
	StatusInvalid BlockStatus = iota
	// StatusMainChain means the block extended or reorganized onto the
	// best chain.
	StatusMainChain
	// StatusSideChain means the block was stored on a side branch.
	StatusSideChain
	// StatusOrphan means the block's parent is unknown; it is held until
	// the parent arrives.
	StatusOrphan
	// StatusDuplicate means the block was already known.
	StatusDuplicate
	// StatusParked means the block's header is validated on the best
	// header chain but its predecessor body has not connected yet; the
	// body is held and connected in order (headers-first sync delivers
	// bodies out of order).
	StatusParked
)

// String names the status.
func (s BlockStatus) String() string {
	switch s {
	case StatusMainChain:
		return "main chain"
	case StatusSideChain:
		return "side chain"
	case StatusOrphan:
		return "orphan"
	case StatusDuplicate:
		return "duplicate"
	case StatusParked:
		return "parked"
	default:
		return "invalid"
	}
}

// ProcessBlock validates blk and incorporates it into the block tree,
// reorganizing the main chain if the block's branch carries more work.
// Orphan blocks are retained and retried when their parent arrives.
func (c *Chain) ProcessBlock(blk *wire.MsgBlock) (BlockStatus, error) {
	hash := blk.BlockHash()
	if c.tel.tracer != nil {
		c.tel.tracer.Record(telemetry.EvBlockSeen, hash.String(), "")
	}
	// First sight starts the block's latency span; the connect stage (or
	// eviction from the bounded store) ends its life cycle.
	c.tel.spans.Record(telemetry.SpanBlock, hash, telemetry.StageFirstSeen)
	c.mu.Lock()
	status, events, err := c.processLocked(blk)
	c.mu.Unlock()
	c.recordStatus(hash, status, err)
	if len(events) > 0 {
		c.notify(events)
	}
	return status, err
}

func (c *Chain) processLocked(blk *wire.MsgBlock) (BlockStatus, []Notification, error) {
	hash := blk.BlockHash()
	if _, known := c.index[hash]; known {
		return StatusDuplicate, nil, nil
	}
	if err := c.checkBlockSanity(blk); err != nil {
		return StatusInvalid, nil, err
	}
	parent, ok := c.index[blk.Header.PrevBlock]
	if !ok {
		if _, held := c.parked[hash]; held {
			return StatusDuplicate, nil, nil
		}
		// A body ahead of the connected chain whose header is already
		// validated in the header index is parked, not orphaned: the
		// skeleton vouches for it, and the download scheduler delivers
		// bodies out of order by design. Blocks with unknown headers
		// still take the (penalizable, tightly bounded) orphan path.
		if hn, known := c.headers[hash]; known && hn.parent != nil {
			c.parkBlockLocked(hash, blk)
			return StatusParked, nil, nil
		}
		if _, held := c.orphanIndex[hash]; held {
			return StatusDuplicate, nil, nil
		}
		c.addOrphanLocked(hash, blk)
		return StatusOrphan, nil, nil
	}
	status, events, err := c.acceptBlock(blk, parent)
	if err != nil {
		return status, events, err
	}
	// Adopt any orphans waiting on this block (recursively), then any
	// parked bodies the new connections unblocked.
	events = append(events, c.adoptOrphans(hash)...)
	events = append(events, c.adoptParked()...)
	return status, events, nil
}

func (c *Chain) adoptOrphans(parentHash chainhash.Hash) []Notification {
	var events []Notification
	queue := []chainhash.Hash{parentHash}
	for len(queue) > 0 {
		ph := queue[0]
		queue = queue[1:]
		waiting := c.orphans[ph]
		delete(c.orphans, ph)
		for _, blk := range waiting {
			h := blk.BlockHash()
			if meta, held := c.orphanIndex[h]; held {
				delete(c.orphanIndex, h)
				c.orphanBytes -= meta.size
			}
			parent := c.index[ph]
			if parent == nil {
				continue
			}
			if _, evs, err := c.acceptBlock(blk, parent); err == nil {
				events = append(events, evs...)
				queue = append(queue, h)
			}
		}
	}
	return events
}

// addOrphanLocked holds a parentless block, evicting oldest-first past
// the pool bounds.
func (c *Chain) addOrphanLocked(hash chainhash.Hash, blk *wire.MsgBlock) {
	parent := blk.Header.PrevBlock
	size := int64(len(blk.Bytes()))
	c.orphans[parent] = append(c.orphans[parent], blk)
	c.orphanIndex[hash] = orphanMeta{parent: parent, size: size}
	c.orphanFIFO = append(c.orphanFIFO, hash)
	c.orphanBytes += size

	maxN, maxB := c.maxOrphans, c.maxOrphanByte
	if maxN <= 0 {
		maxN = DefaultMaxOrphans
	}
	if maxB <= 0 {
		maxB = DefaultMaxOrphanBytes
	}
	for (len(c.orphanIndex) > maxN || c.orphanBytes > maxB) && len(c.orphanFIFO) > 0 {
		h := c.orphanFIFO[0]
		c.orphanFIFO = c.orphanFIFO[1:]
		meta, held := c.orphanIndex[h]
		if !held {
			continue // already adopted; stale FIFO entry
		}
		c.removeOrphanLocked(h, meta)
	}
	// Compact stale FIFO entries (orphans adopted out of order) so the
	// queue cannot grow without bound relative to the pool.
	if len(c.orphanFIFO) > 4*len(c.orphanIndex)+16 {
		live := c.orphanFIFO[:0]
		for _, h := range c.orphanFIFO {
			if _, held := c.orphanIndex[h]; held {
				live = append(live, h)
			}
		}
		c.orphanFIFO = live
	}
}

// removeOrphanLocked drops one held orphan block.
func (c *Chain) removeOrphanLocked(hash chainhash.Hash, meta orphanMeta) {
	delete(c.orphanIndex, hash)
	c.orphanBytes -= meta.size
	waiting := c.orphans[meta.parent]
	for i, b := range waiting {
		if b.BlockHash() == hash {
			c.orphans[meta.parent] = append(waiting[:i], waiting[i+1:]...)
			break
		}
	}
	if len(c.orphans[meta.parent]) == 0 {
		delete(c.orphans, meta.parent)
	}
}

// acceptBlock adds a block whose parent is known. Contextual validation
// (difficulty schedule, timestamps) happens on the block's header via
// the header index: a body whose header the skeleton already validated
// is not re-checked, and a body arriving ahead of its header extends
// the header index as a side effect.
func (c *Chain) acceptBlock(blk *wire.MsgBlock, parent *blockNode) (BlockStatus, []Notification, error) {
	if _, err := c.acceptHeaderLocked(&blk.Header); err != nil {
		return StatusInvalid, nil, err
	}
	node := &blockNode{
		hash:    blk.BlockHash(),
		parent:  parent,
		height:  parent.height + 1,
		workSum: new(big.Int).Add(parent.workSum, CalcWork(blk.Header.Bits)),
		block:   blk,
	}

	if node.workSum.Cmp(c.tip.workSum) <= 0 {
		// Not enough work to become the best chain: store on the side.
		// Side blocks are persisted too (a restart must still be able to
		// reorganize onto them), but outside any commit batch — they
		// carry no state of their own.
		if err := c.persistSideBlock(node); err != nil {
			return StatusInvalid, nil, err
		}
		c.index[node.hash] = node
		return StatusSideChain, nil, nil
	}

	if parent == c.tip {
		// Simple extension of the main chain.
		events, err := c.connectBlock(node)
		if err != nil {
			return StatusInvalid, nil, err
		}
		c.index[node.hash] = node
		return StatusMainChain, events, nil
	}

	// The new block's branch has more work than the current tip: attempt
	// a reorganization.
	events, err := c.reorganize(node)
	if err != nil {
		return StatusInvalid, events, err
	}
	c.index[node.hash] = node
	return StatusMainChain, events, nil
}

// connectBlock attaches node (whose parent is the current tip) to the
// main chain, updating the UTXO table, spent journal and indexes.
//
// Validation runs as a two-phase pipeline. Phase one walks transactions
// in block order — spends may chain within a block, so input resolution
// and UTXO mutation stay serial and ordered — checking amounts/maturity,
// spending inputs, adding outputs, and capturing one script job per
// input with the locking script it resolved. Phase two fans all captured
// script/signature checks out across a bounded worker pool (consulting
// the shared signature cache), with fail-fast cancellation; on failure
// the phase-one mutations are rolled back via the undo journal.
func (c *Chain) connectBlock(node *blockNode) ([]Notification, error) {
	start := time.Now()
	blk := node.block
	var undo []undoItem
	rollback := func() {
		for i := len(undo) - 1; i >= 0; i-- {
			c.utxo.restore(undo[i].op, undo[i].entry)
			delete(c.spent, undo[i].op)
		}
		for _, tx := range blk.Transactions {
			c.utxo.remove(tx)
			delete(c.txToBlock, tx.TxHash())
		}
	}

	var totalFees int64
	var jobs []scriptJob
	for i, tx := range blk.Transactions {
		if i > 0 {
			fee, entries, err := CheckTransactionInputs(tx, node.height, c.utxo, c.params.CoinbaseMaturity)
			if err != nil {
				rollback()
				return nil, err
			}
			totalFees += fee
			txid := tx.TxHash()
			for j, in := range tx.TxIn {
				jobs = append(jobs, scriptJob{tx: tx, txIdx: i, in: j, pkScript: entries[j].Out.PkScript})
				entry, err := c.utxo.spend(in.PreviousOutPoint)
				if err != nil {
					rollback()
					return nil, err
				}
				undo = append(undo, undoItem{op: in.PreviousOutPoint, entry: entry})
				c.spent[in.PreviousOutPoint] = SpendRecord{
					SpentBy: wire.OutPoint{Hash: txid, Index: uint32(j)},
					Spender: txid,
					Height:  node.height,
				}
			}
		}
		c.utxo.add(tx, node.height)
		c.txToBlock[tx.TxHash()] = txLoc{block: node.hash, index: i}
	}

	// Coinbase value check: subsidy plus fees.
	var cbOut int64
	for _, out := range blk.Transactions[0].TxOut {
		cbOut += out.Value
	}
	if maxOut := c.params.CalcBlockSubsidy(node.height) + totalFees; cbOut > maxOut {
		rollback()
		return nil, fmt.Errorf("%w: coinbase pays %d, max %d", ErrBadCoinbase, cbOut, maxOut)
	}

	// Phase two: parallel script/signature verification of every input.
	// The jobs carry the resolved locking scripts, so they are independent
	// of the (already mutated) UTXO view.
	scriptStart := time.Now()
	if err := runScriptJobs(jobs, c.scriptWorkers, c.sigCache); err != nil {
		rollback()
		return nil, err
	}
	if c.tel.scriptSeconds != nil {
		observeSince(c.tel.scriptSeconds, scriptStart)
		c.tel.scriptJobs.Add(uint64(len(jobs)))
	}

	// Durably commit the change as one atomic batch (block data, index
	// row, tip, UTXO deltas, spend journal, subscriber rows) before the
	// tip moves. If the store refuses, the block is rejected and the
	// resident maps are rolled back — memory never runs ahead of disk.
	if err := c.commitConnect(node, undo); err != nil {
		rollback()
		return nil, fmt.Errorf("chain: persist connect %s: %w", node.hash, err)
	}

	node.inMain = true
	c.tip = node
	c.mainChain = append(c.mainChain, node)
	c.tel.connects.Inc()
	if c.tel.connectSeconds != nil {
		observeSince(c.tel.connectSeconds, start)
	}
	c.traceConnected(node)
	c.spanConnected(node)
	return []Notification{{Connected: true, Block: blk, Height: node.height}}, nil
}

// disconnectBlock detaches the current tip from the main chain, undoing
// its UTXO and journal effects. The spend journal is read back from the
// store rather than resident memory — the only copy that provably
// survived a restart — and the undoing batch is committed before any
// resident map changes, so a store failure leaves memory untouched.
func (c *Chain) disconnectBlock() (Notification, error) {
	start := time.Now()
	node := c.tip
	if node.parent == nil {
		return Notification{}, errors.New("chain: cannot disconnect genesis")
	}
	// Under a group-commit store the connect batches for this block may
	// still be in flight; the spend journal read below must come from a
	// store that has caught up with them, so drain the pipeline first.
	if d, ok := c.st.(drainer); ok {
		if err := d.Drain(); err != nil {
			return Notification{}, fmt.Errorf("chain: drain before disconnect %s: %w", node.hash, err)
		}
	}
	undo, err := c.loadUndo(node.hash)
	if err != nil {
		return Notification{}, err
	}
	if err := c.commitDisconnect(node, undo); err != nil {
		return Notification{}, fmt.Errorf("chain: persist disconnect %s: %w", node.hash, err)
	}
	// Restore spent entries first, then remove the block's outputs: an
	// outpoint created and consumed within this block is restored by its
	// undo row and then correctly deleted again by the removal pass.
	for i := len(undo) - 1; i >= 0; i-- {
		item := undo[i]
		c.utxo.restore(item.op, item.entry)
		delete(c.spent, item.op)
	}
	for _, tx := range node.block.Transactions {
		c.utxo.remove(tx)
		delete(c.txToBlock, tx.TxHash())
	}
	node.inMain = false
	c.tip = node.parent
	c.mainChain = c.mainChain[:len(c.mainChain)-1]
	c.tel.disconnects.Inc()
	if c.tel.disconnectSeconds != nil {
		observeSince(c.tel.disconnectSeconds, start)
	}
	// Guard on the tracer itself, not a sibling histogram: Record is
	// nil-safe but its hash.String() argument is not free, and a node
	// with a tracer and no registry must still get the event.
	if c.tel.tracer != nil {
		c.tel.tracer.Record(telemetry.EvBlockDisconnected, node.hash.String(),
			fmt.Sprintf("height=%d", node.height))
	}
	return Notification{Connected: false, Block: node.block, Height: node.height}, nil
}

// reorganize switches the main chain to end at newTip. "The Bitcoin
// history is defined to be the longest branch in the tree" (Section 1) —
// more precisely, the branch with the most accumulated work.
func (c *Chain) reorganize(newTip *blockNode) ([]Notification, error) {
	// Collect the new branch back to the fork point with the main chain.
	var attach []*blockNode
	forkNode := newTip.parent
	for forkNode != nil && !forkNode.inMain {
		attach = append(attach, forkNode)
		forkNode = forkNode.parent
	}
	if forkNode == nil {
		return nil, errors.New("chain: reorg branch does not connect to main chain")
	}
	// attach is child-first; reverse to parent-first and append newTip.
	for i, j := 0, len(attach)-1; i < j; i, j = i+1, j-1 {
		attach[i], attach[j] = attach[j], attach[i]
	}
	attach = append(attach, newTip)

	var events []Notification
	// Disconnect main-chain blocks above the fork point, remembering them
	// in case the new branch proves invalid.
	var detached []*blockNode
	for c.tip != forkNode {
		detached = append(detached, c.tip)
		ev, err := c.disconnectBlock()
		if err != nil {
			return events, err
		}
		events = append(events, ev)
	}

	// Connect the new branch. If any block is invalid, roll back to the
	// original chain.
	for i, node := range attach {
		evs, err := c.connectBlock(node)
		if err != nil {
			// Undo the partial reorg: disconnect what we attached...
			for j := i - 1; j >= 0; j-- {
				ev, derr := c.disconnectBlock()
				if derr != nil {
					return events, fmt.Errorf("chain: reorg rollback failed: %v (after %w)", derr, err)
				}
				events = append(events, ev)
			}
			// ...and reconnect the original blocks (parent-first).
			for j := len(detached) - 1; j >= 0; j-- {
				evs2, rerr := c.connectBlock(detached[j])
				if rerr != nil {
					return events, fmt.Errorf("chain: reorg rollback failed: %v (after %w)", rerr, err)
				}
				events = append(events, evs2...)
			}
			return events, err
		}
		events = append(events, evs...)
	}
	c.tel.reorgs.Inc()
	c.tel.reorgDepth.Observe(float64(len(detached)))
	if c.tel.tracer != nil {
		c.tel.tracer.Record(telemetry.EvReorg, newTip.hash.String(),
			fmt.Sprintf("detached=%d attached=%d height=%d", len(detached), len(attach), newTip.height))
	}
	return events, nil
}

// nextRequiredDifficulty computes the difficulty for the block following
// parent. Every block node has a header node (acceptBlock indexes the
// header first), so this delegates to the header-index implementation —
// the single copy of the retargeting rules.
func (c *Chain) nextRequiredDifficulty(parent *blockNode) uint32 {
	return c.nextRequiredDifficultyHeader(c.headers[parent.hash])
}

// NextRequiredDifficulty returns the difficulty bits required of the next
// block on the main chain.
func (c *Chain) NextRequiredDifficulty() uint32 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nextRequiredDifficulty(c.tip)
}

// BestHeight returns the height of the main-chain tip.
func (c *Chain) BestHeight() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tip.height
}

// BestHash returns the hash of the main-chain tip.
func (c *Chain) BestHash() chainhash.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tip.hash
}

// TipHeader returns the header of the main-chain tip.
func (c *Chain) TipHeader() wire.BlockHeader {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tip.block.Header
}

// MedianTimePast returns the median-time-past of the tip, the monotone
// clock against which before(t) conditions are judged for new blocks.
func (c *Chain) MedianTimePast() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tip.medianTimePast()
}

// Snapshot is a consistent view of the main-chain tip, taken under one
// lock acquisition. Callers that need several tip properties together
// (e.g. the miner pairing a parent hash with the next height) must use
// this rather than separate accessors, which may observe different tips.
type Snapshot struct {
	Hash       chainhash.Hash
	Height     int
	Bits       uint32   // difficulty bits of the tip block
	NextBits   uint32   // required difficulty of the block after the tip
	Work       *big.Int // cumulative work of the tip (caller-owned copy)
	MedianTime time.Time
}

// BestSnapshot returns a consistent snapshot of the main-chain tip.
func (c *Chain) BestSnapshot() Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.snapshotLocked()
}

// snapshotLocked builds a tip snapshot. Callers must hold c.mu.
func (c *Chain) snapshotLocked() Snapshot {
	return Snapshot{
		Hash:       c.tip.hash,
		Height:     c.tip.height,
		Bits:       c.tip.block.Header.Bits,
		NextBits:   c.nextRequiredDifficulty(c.tip),
		Work:       new(big.Int).Set(c.tip.workSum),
		MedianTime: c.tip.medianTimePast(),
	}
}

// LookupUtxo returns the unspent entry for op, or nil.
func (c *Chain) LookupUtxo(op wire.OutPoint) *UtxoEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e := c.utxo.Lookup(op)
	if e == nil {
		return nil
	}
	cp := *e
	return &cp
}

// UtxoSize returns the current size of the unspent-txout table (the
// Section 3.3 deadweight metric).
func (c *Chain) UtxoSize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.utxo.Size()
}

// UtxoOutpoints returns every unspent outpoint, for wallet rescans.
func (c *Chain) UtxoOutpoints() []wire.OutPoint {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.utxo.Outpoints()
}

// UtxoView exposes the sharded unspent-txout view for direct concurrent
// reads without the chain lock. The view is live — entries appear and
// vanish as blocks connect — so callers get point-in-time reads, not a
// snapshot; that is exactly the contract script-validation workers and
// read-mostly consumers (RPC, benchmarks) need.
func (c *Chain) UtxoView() *UtxoView { return c.utxo }

// FlushedHeight reports the durability watermark: the highest block
// height guaranteed to survive a crash of the underlying store. Under a
// group-commit store this is the pipeline's flushed mark (falling back
// to the height loaded at Open before any new flush); synchronous
// stores are durable at every commit, so it is simply the tip height.
func (c *Chain) FlushedHeight() int {
	if w, ok := c.st.(watermarked); ok {
		if h := w.Flushed(); h >= 0 {
			return h
		}
		return c.baseFlushed
	}
	return c.BestHeight()
}

// flushedHeightLocked is FlushedHeight for callers already holding c.mu
// (the tip height read replaces the locking BestHeight).
func (c *Chain) flushedHeightLocked() int {
	if w, ok := c.st.(watermarked); ok {
		if h := w.Flushed(); h >= 0 {
			return h
		}
		return c.baseFlushed
	}
	return c.tip.height
}

// IsSpent reports whether op was consumed on the main chain, and by whom.
// This is the "unambiguous evidence" backing the spent(txid.n) condition.
func (c *Chain) IsSpent(op wire.OutPoint) (SpendRecord, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rec, ok := c.spent[op]
	return rec, ok
}

// Confirmations returns the number of blocks on the main chain that
// contain or build on the transaction: 1 when it is in the tip block, 0
// when unknown. A transaction with Confirmations >= Params.
// ConfirmationDepth+1 is confirmed in the paper's sense.
func (c *Chain) Confirmations(txid chainhash.Hash) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	node := c.mainNodeOf(txid)
	if node == nil {
		return 0
	}
	return c.tip.height - node.height + 1
}

// mainNodeOf resolves txid to its main-chain block node, or nil. Callers
// must hold c.mu.
func (c *Chain) mainNodeOf(txid chainhash.Hash) *blockNode {
	loc, ok := c.txToBlock[txid]
	if !ok {
		return nil
	}
	node := c.index[loc.block]
	if node == nil || !node.inMain {
		return nil
	}
	return node
}

// BlockOf returns the main-chain block containing txid along with its
// height.
func (c *Chain) BlockOf(txid chainhash.Hash) (*wire.MsgBlock, int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	node := c.mainNodeOf(txid)
	if node == nil {
		return nil, 0, false
	}
	return node.block, node.height, true
}

// TxByID returns a main-chain transaction by id in O(1) via the location
// index, rather than rehashing every transaction of the containing block.
func (c *Chain) TxByID(txid chainhash.Hash) (*wire.MsgTx, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	node := c.mainNodeOf(txid)
	if node == nil {
		return nil, false
	}
	i := c.txToBlock[txid].index
	if i < 0 || i >= len(node.block.Transactions) {
		return nil, false
	}
	return node.block.Transactions[i], true
}

// BlockByHash returns any known block (main or side chain) by hash.
func (c *Chain) BlockByHash(h chainhash.Hash) (*wire.MsgBlock, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	node, ok := c.index[h]
	if !ok {
		return nil, false
	}
	return node.block, true
}

// BlockAtHeight returns the main-chain block at the given height.
func (c *Chain) BlockAtHeight(h int) (*wire.MsgBlock, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if h < 0 || h >= len(c.mainChain) {
		return nil, false
	}
	return c.mainChain[h].block, true
}

// HaveBlock reports whether the block body is known (main, side, parked
// or orphan).
func (c *Chain) HaveBlock(h chainhash.Hash) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.index[h]; ok {
		return true
	}
	if _, held := c.parked[h]; held {
		return true
	}
	_, held := c.orphanIndex[h]
	return held
}

// Locator builds a block locator for the main chain: recent hashes
// densely, then exponentially sparser back to genesis.
func (c *Chain) Locator() []chainhash.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []chainhash.Hash
	step := 1
	for h := c.tip.height; h >= 0; h -= step {
		out = append(out, c.mainChain[h].hash)
		if len(out) >= 10 {
			step *= 2
		}
	}
	if out[len(out)-1] != c.mainChain[0].hash {
		out = append(out, c.mainChain[0].hash)
	}
	return out
}

// BlocksAfter returns up to limit main-chain blocks after the first
// locator hash found on the main chain (genesis if none match).
func (c *Chain) BlocksAfter(locator []chainhash.Hash, limit int) []*wire.MsgBlock {
	c.mu.RLock()
	defer c.mu.RUnlock()
	start := 0
	for _, h := range locator {
		if node, ok := c.index[h]; ok && node.inMain {
			start = node.height
			break
		}
	}
	var out []*wire.MsgBlock
	for h := start + 1; h <= c.tip.height && len(out) < limit; h++ {
		out = append(out, c.mainChain[h].block)
	}
	return out
}
