package chain

import (
	"fmt"
	"sort"
	"sync"

	"typecoin/internal/chainhash"
	"typecoin/internal/wire"
)

// UtxoEntry is one row of the unspent-transaction-output table.
//
// "Any Bitcoin node that verifies transactions' validity must be able to
// tell whether a particular txout has been spent already, and this
// requires maintaining a table of all unspent txouts." (paper, Section
// 3.3). The size of this table is exactly what experiment E3 measures for
// the two metadata-embedding strategies.
//
// Entries are immutable once inserted: Lookup hands out the shared
// pointer, which is what lets the sharded view serve parallel readers
// without copying.
type UtxoEntry struct {
	Out        wire.TxOut
	Height     int
	IsCoinBase bool
}

// utxoShardCount is the number of lock stripes. A power of two so shard
// selection is a mask; 16 keeps per-shard maps large enough to stay
// cache-friendly while making reader collisions rare.
const utxoShardCount = 16

// hotRowsPerShard bounds each shard's cache of encoded store rows.
const hotRowsPerShard = 512

// utxoShard is one lock stripe of the view.
type utxoShard struct {
	mu      sync.RWMutex
	entries map[wire.OutPoint]*UtxoEntry

	// hot is a small ring-evicted cache of recently created outpoints'
	// encoded store rows (the exact bytes commitConnect persists), so
	// the write path can reuse the encoding instead of re-deriving it —
	// and so a future non-resident view has a place to keep its working
	// set without touching the store. The ring grows lazily to
	// hotRowsPerShard and then wraps, so idle views stay small.
	hot     map[wire.OutPoint][]byte
	hotRing []wire.OutPoint
	hotNext int
}

// UtxoView is the unspent-txout table for one chain tip, sharded by
// outpoint into lock-striped segments. Reads (Lookup, Size) are safe
// under concurrent mutation, which lets script-validation workers and
// external readers resolve outpoints in parallel without holding the
// chain lock. Mutations are still serialized by Chain — the stripes
// make reads cheap, they do not make interleaved writers meaningful.
type UtxoView struct {
	shards [utxoShardCount]utxoShard
}

// NewUtxoView returns an empty table.
func NewUtxoView() *UtxoView {
	v := &UtxoView{}
	for i := range v.shards {
		v.shards[i].entries = make(map[wire.OutPoint]*UtxoEntry)
		v.shards[i].hot = make(map[wire.OutPoint][]byte)
	}
	return v
}

// shardFor picks the stripe for op: first hash byte XOR the output
// index, so the outputs of one transaction spread across shards.
func (v *UtxoView) shardFor(op wire.OutPoint) *utxoShard {
	return &v.shards[(uint32(op.Hash[0])^op.Index)&(utxoShardCount-1)]
}

// Lookup returns the entry for op, or nil if op is spent or unknown.
// Safe for concurrent use.
func (v *UtxoView) Lookup(op wire.OutPoint) *UtxoEntry {
	s := v.shardFor(op)
	s.mu.RLock()
	e := s.entries[op]
	s.mu.RUnlock()
	return e
}

// Size returns the number of unspent txouts — the table "deadweight"
// metric of Section 3.3. Provably unspendable outputs (OP_RETURN) are
// never added, matching how real nodes prune them.
func (v *UtxoView) Size() int {
	n := 0
	for i := range v.shards {
		s := &v.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// ShardSizes reports the entry count per shard, for telemetry: a wildly
// skewed distribution would mean the stripe function is broken.
func (v *UtxoView) ShardSizes() [utxoShardCount]int {
	var sizes [utxoShardCount]int
	for i := range v.shards {
		s := &v.shards[i]
		s.mu.RLock()
		sizes[i] = len(s.entries)
		s.mu.RUnlock()
	}
	return sizes
}

// cacheHot remembers the encoded store row for op in its shard's hot
// cache, ring-evicting the oldest slot.
func (s *utxoShard) cacheHot(op wire.OutPoint, row []byte) {
	if len(s.hotRing) < hotRowsPerShard {
		s.hotRing = append(s.hotRing, op)
	} else {
		delete(s.hot, s.hotRing[s.hotNext])
		s.hotRing[s.hotNext] = op
		s.hotNext = (s.hotNext + 1) % hotRowsPerShard
	}
	s.hot[op] = row
}

// add inserts the outputs of tx at the given height, caching each new
// row's store encoding while the entry is in hand.
func (v *UtxoView) add(tx *wire.MsgTx, height int) {
	txid := tx.TxHash()
	isCB := tx.IsCoinBase()
	for i, out := range tx.TxOut {
		if isUnspendable(out.PkScript) {
			continue
		}
		op := wire.OutPoint{Hash: txid, Index: uint32(i)}
		e := &UtxoEntry{Out: *out, Height: height, IsCoinBase: isCB}
		s := v.shardFor(op)
		s.mu.Lock()
		s.entries[op] = e
		s.cacheHot(op, appendUtxoEntry(nil, e))
		s.mu.Unlock()
	}
}

// encodedRow returns the cached store encoding for a recently created
// outpoint, or nil on a cold miss (the caller re-encodes from the
// entry). The persist layer uses this so connect-path writes of fresh
// outputs never re-derive bytes the view already has.
func (v *UtxoView) encodedRow(op wire.OutPoint) []byte {
	s := v.shardFor(op)
	s.mu.RLock()
	row := s.hot[op]
	s.mu.RUnlock()
	return row
}

// spend removes op, returning the removed entry for undo journaling.
func (v *UtxoView) spend(op wire.OutPoint) (*UtxoEntry, error) {
	s := v.shardFor(op)
	s.mu.Lock()
	e, ok := s.entries[op]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("chain: outpoint %v is spent or unknown", op)
	}
	delete(s.entries, op)
	s.mu.Unlock()
	return e, nil
}

// restore reinstates a previously spent entry (startup load and block
// disconnect). It does not touch the hot row cache: only add()-time
// encodings are ever consumed by the connect commit path, so caching a
// restored row would be wasted work on every reopen.
func (v *UtxoView) restore(op wire.OutPoint, e *UtxoEntry) {
	s := v.shardFor(op)
	s.mu.Lock()
	s.entries[op] = e
	s.mu.Unlock()
}

// remove deletes the outputs created by tx (block disconnect).
func (v *UtxoView) remove(tx *wire.MsgTx) {
	txid := tx.TxHash()
	for i := range tx.TxOut {
		op := wire.OutPoint{Hash: txid, Index: uint32(i)}
		s := v.shardFor(op)
		s.mu.Lock()
		delete(s.entries, op)
		delete(s.hot, op)
		s.mu.Unlock()
	}
}

// Outpoints returns all unspent outpoints in a deterministic order;
// intended for tests, wallet rescans and the E3 measurements.
func (v *UtxoView) Outpoints() []wire.OutPoint {
	ops := make([]wire.OutPoint, 0, v.Size())
	for i := range v.shards {
		s := &v.shards[i]
		s.mu.RLock()
		for op := range s.entries {
			ops = append(ops, op)
		}
		s.mu.RUnlock()
	}
	sort.Slice(ops, func(i, j int) bool {
		c := chainhash.Compare(ops[i].Hash, ops[j].Hash)
		if c != 0 {
			return c < 0
		}
		return ops[i].Index < ops[j].Index
	})
	return ops
}

// isUnspendable reports whether a locking script can never be satisfied
// (leading OP_RETURN), so the output need not occupy the table.
func isUnspendable(pkScript []byte) bool {
	return len(pkScript) > 0 && pkScript[0] == 0x6a // OP_RETURN
}

// SpendRecord journals who spent an outpoint and where. The Typecoin
// condition spent(txid.n) (paper, Section 5) needs "unambiguous evidence
// of the truth or falsity" of spending; this journal is that evidence for
// the best chain.
type SpendRecord struct {
	SpentBy wire.OutPoint // transaction input that consumed it (txid of spender, input index)
	Spender chainhash.Hash
	Height  int
}
