package chain

import (
	"fmt"
	"sort"

	"typecoin/internal/chainhash"
	"typecoin/internal/wire"
)

// UtxoEntry is one row of the unspent-transaction-output table.
//
// "Any Bitcoin node that verifies transactions' validity must be able to
// tell whether a particular txout has been spent already, and this
// requires maintaining a table of all unspent txouts." (paper, Section
// 3.3). The size of this table is exactly what experiment E3 measures for
// the two metadata-embedding strategies.
type UtxoEntry struct {
	Out        wire.TxOut
	Height     int
	IsCoinBase bool
}

// UtxoSet is the unspent-txout table for one chain tip. It is not safe
// for concurrent mutation; Chain serializes access.
type UtxoSet struct {
	entries map[wire.OutPoint]*UtxoEntry
}

// NewUtxoSet returns an empty table.
func NewUtxoSet() *UtxoSet {
	return &UtxoSet{entries: make(map[wire.OutPoint]*UtxoEntry)}
}

// Lookup returns the entry for op, or nil if op is spent or unknown.
func (u *UtxoSet) Lookup(op wire.OutPoint) *UtxoEntry {
	return u.entries[op]
}

// Size returns the number of unspent txouts — the table "deadweight"
// metric of Section 3.3. Provably unspendable outputs (OP_RETURN) are
// never added, matching how real nodes prune them.
func (u *UtxoSet) Size() int { return len(u.entries) }

// add inserts the outputs of tx at the given height.
func (u *UtxoSet) add(tx *wire.MsgTx, height int) {
	txid := tx.TxHash()
	isCB := tx.IsCoinBase()
	for i, out := range tx.TxOut {
		if isUnspendable(out.PkScript) {
			continue
		}
		u.entries[wire.OutPoint{Hash: txid, Index: uint32(i)}] = &UtxoEntry{
			Out:        *out,
			Height:     height,
			IsCoinBase: isCB,
		}
	}
}

// spend removes op, returning the removed entry for undo journaling.
func (u *UtxoSet) spend(op wire.OutPoint) (*UtxoEntry, error) {
	e, ok := u.entries[op]
	if !ok {
		return nil, fmt.Errorf("chain: outpoint %v is spent or unknown", op)
	}
	delete(u.entries, op)
	return e, nil
}

// restore reinstates a previously spent entry (used when disconnecting a
// block during a reorganization).
func (u *UtxoSet) restore(op wire.OutPoint, e *UtxoEntry) {
	u.entries[op] = e
}

// remove deletes the outputs created by tx (block disconnect).
func (u *UtxoSet) remove(tx *wire.MsgTx) {
	txid := tx.TxHash()
	for i := range tx.TxOut {
		delete(u.entries, wire.OutPoint{Hash: txid, Index: uint32(i)})
	}
}

// Outpoints returns all unspent outpoints in a deterministic order;
// intended for tests, wallet rescans and the E3 measurements.
func (u *UtxoSet) Outpoints() []wire.OutPoint {
	ops := make([]wire.OutPoint, 0, len(u.entries))
	for op := range u.entries {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool {
		c := chainhash.Compare(ops[i].Hash, ops[j].Hash)
		if c != 0 {
			return c < 0
		}
		return ops[i].Index < ops[j].Index
	})
	return ops
}

// isUnspendable reports whether a locking script can never be satisfied
// (leading OP_RETURN), so the output need not occupy the table.
func isUnspendable(pkScript []byte) bool {
	return len(pkScript) > 0 && pkScript[0] == 0x6a // OP_RETURN
}

// SpendRecord journals who spent an outpoint and where. The Typecoin
// condition spent(txid.n) (paper, Section 5) needs "unambiguous evidence
// of the truth or falsity" of spending; this journal is that evidence for
// the best chain.
type SpendRecord struct {
	SpentBy wire.OutPoint // transaction input that consumed it (txid of spender, input index)
	Spender chainhash.Hash
	Height  int
}
