package chain

// Chain persistence: every main-chain mutation commits exactly one
// atomic store batch, and Open reloads the block index, UTXO table and
// spend journal from the store. The same code path runs against the
// in-memory engine (tests, throwaway nodes) and the file engine
// (durable nodes); the only difference is whether the batch outlives
// the process.
//
// Key schema (single byte prefixes; fixed-width big-endian heights so
// lexicographic order is height order):
//
//	T                 -> tip hash + height
//	m + be32(height)  -> main-chain block hash at height
//	b + hash          -> BlockRef of the serialized block (main or side)
//	u + outpoint      -> UtxoEntry (value, height, coinbase, pkScript)
//	s + outpoint      -> SpendRecord (spender, input index, height)
//	U + hash          -> per-block spend journal: the entries the block
//	                     consumed, in spend order. Disconnect replays
//	                     this journal rather than trusting resident
//	                     state, so a reorg works identically on a node
//	                     that just restarted.
//	h + hash          -> 80-byte block header in the header index
//	                     (headers-first sync). Rows are written when the
//	                     header is accepted — which may be long before
//	                     its body arrives — so a crash mid-sync restarts
//	                     with header tip >= connected tip. Load also
//	                     derives headers from stored blocks, making the
//	                     rows redundant for blocks we hold; the
//	                     best-header tip itself is not stored but
//	                     recomputed as the maximum-work header on load.
//
// Subsystems above the chain (wallet view, ledger seen-index) join the
// same batch through SubscribePersist, so a crash can never commit a
// block without their matching rows.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"os"
	"strconv"
	"time"

	"typecoin/internal/chainhash"
	"typecoin/internal/clock"
	"typecoin/internal/sigcache"
	"typecoin/internal/store"
	"typecoin/internal/wire"
)

// ErrCorruptState reports persistent chain state that fails integrity
// checks on load (bad linkage, missing blocks, checksum violations
// surfaced by the store).
var ErrCorruptState = errors.New("chain: corrupt persistent state")

// Key builders.

var keyTip = []byte("T")

func keyMain(height int) []byte {
	k := make([]byte, 5)
	k[0] = 'm'
	binary.BigEndian.PutUint32(k[1:], uint32(height))
	return k
}

func keyBlock(h chainhash.Hash) []byte { return append([]byte("b"), h[:]...) }

func keyUndo(h chainhash.Hash) []byte { return append([]byte("U"), h[:]...) }

func keyHeader(h chainhash.Hash) []byte { return append([]byte("h"), h[:]...) }

func appendOutPoint(dst []byte, op wire.OutPoint) []byte {
	dst = append(dst, op.Hash[:]...)
	var idx [4]byte
	binary.LittleEndian.PutUint32(idx[:], op.Index)
	return append(dst, idx[:]...)
}

const outPointSize = 36

func decodeOutPoint(b []byte) (wire.OutPoint, error) {
	var op wire.OutPoint
	if len(b) != outPointSize {
		return op, fmt.Errorf("%w: outpoint is %d bytes", ErrCorruptState, len(b))
	}
	copy(op.Hash[:], b[:32])
	op.Index = binary.LittleEndian.Uint32(b[32:])
	return op, nil
}

func keyUtxo(op wire.OutPoint) []byte  { return appendOutPoint([]byte("u"), op) }
func keySpent(op wire.OutPoint) []byte { return appendOutPoint([]byte("s"), op) }

// outPointKey is a stack-friendly reusable buffer for the u/s keys: the
// commit paths write hundreds of outpoint keys per block, and building
// each with keyUtxo/keySpent costs an allocation apiece. Batch.Put
// copies its arguments, so one buffer serves every op.
type outPointKey [1 + outPointSize]byte

func (k *outPointKey) set(prefix byte, op wire.OutPoint) []byte {
	k[0] = prefix
	copy(k[1:33], op.Hash[:])
	binary.LittleEndian.PutUint32(k[33:], op.Index)
	return k[:]
}

// Value codecs. All integers are unsigned varints; heights and values
// in this system are non-negative.

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// cursor is a destructive slice reader for the small fixed codecs.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: truncated %s", ErrCorruptState, what)
	}
}

func (c *cursor) bytes(n int, what string) []byte {
	if c.err != nil {
		return nil
	}
	if len(c.b) < n {
		c.fail(what)
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *cursor) uvarint(what string) uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *cursor) hash(what string) chainhash.Hash {
	var h chainhash.Hash
	copy(h[:], c.bytes(32, what))
	return h
}

func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorruptState, len(c.b))
	}
	return nil
}

func encodeTip(h chainhash.Hash, height int) []byte {
	out := append([]byte(nil), h[:]...)
	return appendUvarint(out, uint64(height))
}

func decodeTip(b []byte) (chainhash.Hash, int, error) {
	c := &cursor{b: b}
	h := c.hash("tip hash")
	height := c.uvarint("tip height")
	return h, int(height), c.done()
}

func encodeBlockRef(ref store.BlockRef) []byte {
	out := make([]byte, 12)
	binary.LittleEndian.PutUint64(out[:8], ref.Offset)
	binary.LittleEndian.PutUint32(out[8:], ref.Len)
	return out
}

func decodeBlockRef(b []byte) (store.BlockRef, error) {
	if len(b) != 12 {
		return store.BlockRef{}, fmt.Errorf("%w: block ref is %d bytes", ErrCorruptState, len(b))
	}
	return store.BlockRef{
		Offset: binary.LittleEndian.Uint64(b[:8]),
		Len:    binary.LittleEndian.Uint32(b[8:]),
	}, nil
}

func appendUtxoEntry(dst []byte, e *UtxoEntry) []byte {
	var flags byte
	if e.IsCoinBase {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = appendUvarint(dst, uint64(e.Height))
	dst = appendUvarint(dst, uint64(e.Out.Value))
	dst = appendUvarint(dst, uint64(len(e.Out.PkScript)))
	return append(dst, e.Out.PkScript...)
}

func decodeUtxoEntryFrom(c *cursor) *UtxoEntry {
	flags := c.bytes(1, "utxo flags")
	height := c.uvarint("utxo height")
	value := c.uvarint("utxo value")
	slen := c.uvarint("utxo script length")
	var script []byte
	if c.err == nil {
		script = append([]byte(nil), c.bytes(int(slen), "utxo script")...)
	}
	if c.err != nil {
		return nil
	}
	return &UtxoEntry{
		Out:        wire.TxOut{Value: int64(value), PkScript: script},
		Height:     int(height),
		IsCoinBase: flags[0]&1 != 0,
	}
}

func decodeUtxoEntry(b []byte) (*UtxoEntry, error) {
	c := &cursor{b: b}
	e := decodeUtxoEntryFrom(c)
	if err := c.done(); err != nil {
		return nil, err
	}
	return e, nil
}

func appendSpendRecord(dst []byte, rec SpendRecord) []byte {
	dst = append(dst, rec.Spender[:]...)
	var idx [4]byte
	binary.LittleEndian.PutUint32(idx[:], rec.SpentBy.Index)
	dst = append(dst, idx[:]...)
	return appendUvarint(dst, uint64(rec.Height))
}

func encodeSpendRecord(rec SpendRecord) []byte {
	return appendSpendRecord(nil, rec)
}

func decodeSpendRecord(b []byte) (SpendRecord, error) {
	c := &cursor{b: b}
	spender := c.hash("spend record spender")
	idx := c.bytes(4, "spend record index")
	height := c.uvarint("spend record height")
	if err := c.done(); err != nil {
		return SpendRecord{}, err
	}
	index := binary.LittleEndian.Uint32(idx)
	return SpendRecord{
		SpentBy: wire.OutPoint{Hash: spender, Index: index},
		Spender: spender,
		Height:  int(height),
	}, nil
}

func encodeUndo(undo []undoItem) []byte {
	out := appendUvarint(nil, uint64(len(undo)))
	for _, item := range undo {
		out = appendOutPoint(out, item.op)
		out = appendUtxoEntry(out, item.entry)
	}
	return out
}

func decodeUndo(b []byte) ([]undoItem, error) {
	c := &cursor{b: b}
	count := c.uvarint("undo count")
	if count > uint64(len(b)) {
		return nil, fmt.Errorf("%w: undo count %d exceeds payload", ErrCorruptState, count)
	}
	items := make([]undoItem, 0, count)
	for i := uint64(0); i < count && c.err == nil; i++ {
		opBytes := c.bytes(outPointSize, "undo outpoint")
		entry := decodeUtxoEntryFrom(c)
		if c.err != nil {
			break
		}
		op, err := decodeOutPoint(opBytes)
		if err != nil {
			return nil, err
		}
		items = append(items, undoItem{op: op, entry: entry})
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return items, nil
}

// SpentOutput pairs a consumed outpoint with the entry it held — the
// spend-journal row exposed to persist subscribers.
type SpentOutput struct {
	OutPoint wire.OutPoint
	Entry    *UtxoEntry
}

// PersistEvent describes a main-chain change while its atomic commit
// batch is still open. Connected reports direction (like Notification);
// Spent lists the UTXO entries the block consumed (connect) or is
// giving back (disconnect), in spend order.
type PersistEvent struct {
	Connected bool
	Block     *wire.MsgBlock
	Height    int
	Spent     []SpentOutput
}

// PersistFunc contributes subsystem rows to the atomic batch committed
// for a main-chain change. It runs under the chain lock while the batch
// is assembled: it must not call back into Chain methods, and any
// subsystem locks it takes must never be held while waiting on the
// chain elsewhere.
type PersistFunc func(ev PersistEvent, b *store.Batch)

// SubscribePersist registers fn to contribute to every future commit
// batch. Register before processing blocks.
func (c *Chain) SubscribePersist(fn PersistFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.persisters = append(c.persisters, fn)
}

// SubscribePersistWithTip registers fn like SubscribePersist and
// returns the tip snapshot taken under the same lock acquisition: every
// main-chain change at heights above the returned snapshot is
// guaranteed to reach fn, and nothing at or below it will. A subsystem
// that builds derived state by scanning history (the chain indexer's
// bulk initial sync) uses this to know exactly where its scan must stop
// and its event-driven updates begin — with two separate calls a block
// could connect in between and be missed by both.
func (c *Chain) SubscribePersistWithTip(fn PersistFunc) Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.persisters = append(c.persisters, fn)
	return c.snapshotLocked()
}

// Store returns the store backing this chain, so sibling subsystems
// (wallet, ledger, mempool) persist into the same engine and share its
// durability.
func (c *Chain) Store() store.Store { return c.st }

// Config configures Open.
type Config struct {
	// Params selects the chain parameters; required.
	Params *Params
	// Clock provides time; nil means the system clock.
	Clock clock.Clock
	// SigCache is the shared signature-verification cache; nil disables
	// caching.
	SigCache *sigcache.Cache
	// Store is the persistence engine; nil means a fresh in-memory
	// store (the state dies with the process).
	Store store.Store
}

// New creates an in-memory chain containing only the genesis block of
// params, with a default-sized signature cache. The environment
// variable TYPECOIN_SIGCACHE=off disables the cache, and
// TYPECOIN_SCRIPT_WORKERS=n pins the script-verification worker count
// (default GOMAXPROCS; 1 means serial) — both are benchmarking and
// debugging knobs.
func New(params *Params, clk clock.Clock) *Chain {
	var sc *sigcache.Cache
	if os.Getenv("TYPECOIN_SIGCACHE") != "off" {
		sc = sigcache.New(sigcache.DefaultCapacity)
	}
	return NewWithSigCache(params, clk, sc)
}

// NewWithSigCache is New with an explicit signature cache; sc may be
// nil to disable signature caching entirely.
func NewWithSigCache(params *Params, clk clock.Clock, sc *sigcache.Cache) *Chain {
	c, err := Open(Config{Params: params, Clock: clk, SigCache: sc})
	if err != nil {
		// A fresh in-memory store has nothing to load, so Open cannot
		// fail on it.
		panic("chain: impossible in-memory open failure: " + err.Error())
	}
	return c
}

// Open creates a chain over cfg.Store, loading persisted state when the
// store holds any and bootstrapping genesis otherwise. Opening verifies
// the stored chain: genesis must match params, every main-chain block
// must hash-link to its parent, and the stored tip must be the last
// linked block — violations return ErrCorruptState rather than a
// half-loaded chain.
func Open(cfg Config) (*Chain, error) {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System{}
	}
	st := cfg.Store
	if st == nil {
		st = store.NewMem()
	}
	c := &Chain{
		params:      cfg.Params,
		clock:       clk,
		sigCache:    cfg.SigCache,
		st:          st,
		index:       make(map[chainhash.Hash]*blockNode),
		headers:     make(map[chainhash.Hash]*headerNode),
		parked:      make(map[chainhash.Hash]*wire.MsgBlock),
		utxo:        NewUtxoView(),
		spent:       make(map[wire.OutPoint]SpendRecord),
		txToBlock:   make(map[chainhash.Hash]txLoc),
		orphans:     make(map[chainhash.Hash][]*wire.MsgBlock),
		orphanIndex: make(map[chainhash.Hash]orphanMeta),
	}
	if n, err := strconv.Atoi(os.Getenv("TYPECOIN_SCRIPT_WORKERS")); err == nil && n > 0 {
		c.scriptWorkers = n
	}
	hasTip, err := st.Has(keyTip)
	if err != nil {
		return nil, err
	}
	if !hasTip {
		if err := c.bootstrap(); err != nil {
			return nil, err
		}
	} else if err := c.load(); err != nil {
		return nil, err
	}
	c.baseFlushed = c.tip.height
	return c, nil
}

// bootstrap initializes an empty store with the genesis block.
func (c *Chain) bootstrap() error {
	genesis := c.params.GenesisBlock
	gnode := &blockNode{
		hash:    genesis.BlockHash(),
		height:  0,
		workSum: CalcWork(genesis.Header.Bits),
		block:   genesis,
		inMain:  true,
	}
	c.index[gnode.hash] = gnode
	c.tip = gnode
	c.mainChain = []*blockNode{gnode}
	c.addHeaderNodeLocked(&headerNode{
		hash:    gnode.hash,
		height:  0,
		workSum: new(big.Int).Set(gnode.workSum),
		header:  genesis.Header,
	}, false)

	b := store.NewBatch()
	ref, err := c.st.AppendBlock(genesis.Bytes())
	if err != nil {
		return err
	}
	b.Put(keyBlock(gnode.hash), encodeBlockRef(ref))
	b.Put(keyMain(0), gnode.hash[:])
	b.Put(keyTip, encodeTip(gnode.hash, 0))
	// Genesis outputs enter the UTXO table (ours is OP_RETURN, so in
	// practice nothing does; the loop keeps the invariant uniform).
	for i, tx := range genesis.Transactions {
		c.utxo.add(tx, 0)
		txid := tx.TxHash()
		c.txToBlock[txid] = txLoc{block: gnode.hash, index: i}
		for j := range tx.TxOut {
			op := wire.OutPoint{Hash: txid, Index: uint32(j)}
			if e := c.utxo.Lookup(op); e != nil {
				b.Put(keyUtxo(op), appendUtxoEntry(nil, e))
			}
		}
	}
	return c.st.Apply(b)
}

// readBlock fetches and decodes a stored block by hash.
func (c *Chain) readBlock(h chainhash.Hash) (*wire.MsgBlock, error) {
	raw, err := c.st.Get(keyBlock(h))
	if err != nil {
		return nil, fmt.Errorf("%w: missing block %s (%v)", ErrCorruptState, h, err)
	}
	ref, err := decodeBlockRef(raw)
	if err != nil {
		return nil, err
	}
	blob, err := c.st.ReadBlock(ref)
	if err != nil {
		return nil, fmt.Errorf("%w: block %s unreadable (%v)", ErrCorruptState, h, err)
	}
	blk := &wire.MsgBlock{}
	if err := blk.Deserialize(bytes.NewReader(blob)); err != nil {
		return nil, fmt.Errorf("%w: block %s undecodable (%v)", ErrCorruptState, h, err)
	}
	return blk, nil
}

// load rebuilds the resident chain state from the store: the linked
// main chain (verifying hashes and linkage — the tip integrity check),
// any stored side-chain blocks that still attach, the UTXO table and
// the spend journal.
func (c *Chain) load() error {
	tipRaw, err := c.st.Get(keyTip)
	if err != nil {
		return err
	}
	tipHash, tipHeight, err := decodeTip(tipRaw)
	if err != nil {
		return err
	}

	var parent *blockNode
	work := new(big.Int)
	for h := 0; h <= tipHeight; h++ {
		hashRaw, err := c.st.Get(keyMain(h))
		if err != nil {
			return fmt.Errorf("%w: missing main-chain hash at height %d", ErrCorruptState, h)
		}
		want, err := chainhash.NewHashFromBytes(hashRaw)
		if err != nil {
			return fmt.Errorf("%w: bad main-chain hash at height %d", ErrCorruptState, h)
		}
		blk, err := c.readBlock(want)
		if err != nil {
			return err
		}
		if got := blk.BlockHash(); got != want {
			return fmt.Errorf("%w: block at height %d hashes to %s, index says %s",
				ErrCorruptState, h, got, want)
		}
		if h == 0 {
			if want != c.params.GenesisBlock.BlockHash() {
				return fmt.Errorf("%w: stored genesis %s does not match network %s",
					ErrCorruptState, want, c.params.GenesisBlock.BlockHash())
			}
		} else if blk.Header.PrevBlock != parent.hash {
			return fmt.Errorf("%w: block at height %d links to %s, parent is %s",
				ErrCorruptState, h, blk.Header.PrevBlock, parent.hash)
		}
		work = new(big.Int).Add(work, CalcWork(blk.Header.Bits))
		node := &blockNode{
			hash:    want,
			parent:  parent,
			height:  h,
			workSum: new(big.Int).Set(work),
			block:   blk,
			inMain:  true,
		}
		c.index[want] = node
		c.mainChain = append(c.mainChain, node)
		for i, tx := range blk.Transactions {
			c.txToBlock[tx.TxHash()] = txLoc{block: want, index: i}
		}
		parent = node
	}
	if parent.hash != tipHash {
		return fmt.Errorf("%w: main chain ends at %s, tip record says %s",
			ErrCorruptState, parent.hash, tipHash)
	}
	c.tip = parent

	// Side-chain blocks: reattach everything that still links to a
	// known block. Blocks whose branch point is gone are dropped.
	pending := make(map[chainhash.Hash]*wire.MsgBlock)
	err = c.st.Iterate([]byte("b"), func(k, v []byte) error {
		var h chainhash.Hash
		if len(k) != 1+32 {
			return fmt.Errorf("%w: malformed block key", ErrCorruptState)
		}
		copy(h[:], k[1:])
		if _, ok := c.index[h]; ok {
			return nil
		}
		blk, err := c.readBlock(h)
		if err != nil {
			return err
		}
		pending[h] = blk
		return nil
	})
	if err != nil {
		return err
	}
	for progressed := true; progressed && len(pending) > 0; {
		progressed = false
		for h, blk := range pending {
			p, ok := c.index[blk.Header.PrevBlock]
			if !ok {
				continue
			}
			c.index[h] = &blockNode{
				hash:    h,
				parent:  p,
				height:  p.height + 1,
				workSum: new(big.Int).Add(p.workSum, CalcWork(blk.Header.Bits)),
				block:   blk,
			}
			delete(pending, h)
			progressed = true
		}
	}

	// Header index. Every stored block contributes its header; the 'h'
	// rows add the persisted skeleton — headers validated ahead of their
	// bodies — on top, so a node killed mid-sync restarts with its
	// header tip at or ahead of the connected tip. Both sets are linked
	// progressively from genesis (height and work derive from the
	// parent); rows whose ancestry no longer reaches a known header are
	// dropped, to be refetched from peers.
	c.addHeaderNodeLocked(&headerNode{
		hash:    c.mainChain[0].hash,
		height:  0,
		workSum: new(big.Int).Set(c.mainChain[0].workSum),
		header:  c.mainChain[0].block.Header,
	}, false)
	for _, node := range c.mainChain[1:] {
		c.addHeaderNodeLocked(&headerNode{
			hash:    node.hash,
			parent:  c.headers[node.parent.hash],
			height:  node.height,
			workSum: new(big.Int).Set(node.workSum),
			header:  node.block.Header,
		}, false)
	}
	pendingHdrs := make(map[chainhash.Hash]wire.BlockHeader)
	for h, node := range c.index {
		if _, ok := c.headers[h]; !ok {
			pendingHdrs[h] = node.block.Header
		}
	}
	err = c.st.Iterate([]byte("h"), func(k, v []byte) error {
		if len(k) != 1+32 {
			return fmt.Errorf("%w: malformed header key", ErrCorruptState)
		}
		var h chainhash.Hash
		copy(h[:], k[1:])
		if _, ok := c.headers[h]; ok {
			return nil
		}
		if _, ok := pendingHdrs[h]; ok {
			return nil
		}
		var hdr wire.BlockHeader
		if err := hdr.Deserialize(bytes.NewReader(v)); err != nil {
			return fmt.Errorf("%w: header %s undecodable (%v)", ErrCorruptState, h, err)
		}
		if hdr.BlockHash() != h {
			return fmt.Errorf("%w: header row %s hashes to %s", ErrCorruptState, h, hdr.BlockHash())
		}
		pendingHdrs[h] = hdr
		return nil
	})
	if err != nil {
		return err
	}
	for progressed := true; progressed && len(pendingHdrs) > 0; {
		progressed = false
		for h, hdr := range pendingHdrs {
			parent, ok := c.headers[hdr.PrevBlock]
			if !ok {
				continue
			}
			c.addHeaderNodeLocked(&headerNode{
				hash:    h,
				parent:  parent,
				height:  parent.height + 1,
				workSum: new(big.Int).Add(parent.workSum, CalcWork(hdr.Bits)),
				header:  hdr,
			}, false)
			delete(pendingHdrs, h)
			progressed = true
		}
	}
	// Recompute the best-header tip deterministically: map iteration
	// order above must not pick among equal-work branches. The connected
	// tip's header wins ties; among strictly heavier candidates, lowest
	// hash wins.
	best := c.headers[c.tip.hash]
	for _, hn := range c.headers {
		cmp := hn.workSum.Cmp(best.workSum)
		if cmp > 0 || (cmp == 0 && best != c.headers[c.tip.hash] && bytes.Compare(hn.hash[:], best.hash[:]) < 0) {
			best = hn
		}
	}
	c.setHeaderTipLocked(best)

	// UTXO table and spend journal.
	err = c.st.Iterate([]byte("u"), func(k, v []byte) error {
		op, err := decodeOutPoint(k[1:])
		if err != nil {
			return err
		}
		entry, err := decodeUtxoEntry(v)
		if err != nil {
			return err
		}
		c.utxo.restore(op, entry)
		return nil
	})
	if err != nil {
		return err
	}
	return c.st.Iterate([]byte("s"), func(k, v []byte) error {
		op, err := decodeOutPoint(k[1:])
		if err != nil {
			return err
		}
		rec, err := decodeSpendRecord(v)
		if err != nil {
			return err
		}
		c.spent[op] = rec
		return nil
	})
}

// persistSideBlock stores a side-chain block's data and index row so a
// restarted node can still reorganize onto the branch.
func (c *Chain) persistSideBlock(node *blockNode) error {
	has, err := c.st.Has(keyBlock(node.hash))
	if err != nil {
		return err
	}
	if has {
		return nil
	}
	ref, err := c.st.AppendBlock(node.block.Bytes())
	if err != nil {
		return err
	}
	b := store.NewBatch()
	b.Put(keyBlock(node.hash), encodeBlockRef(ref))
	c.stageHeaderRows(b)
	return c.st.Apply(b)
}

// commitConnect assembles and applies the atomic batch for connecting
// node. Caller holds c.mu; the chain's resident maps have already been
// mutated and will be rolled back by the caller if the commit fails.
func (c *Chain) commitConnect(node *blockNode, undo []undoItem) error {
	b := store.NewBatch()
	blkHash := node.hash
	has, err := c.st.Has(keyBlock(blkHash))
	if err != nil {
		return err
	}
	if !has {
		ref, err := c.st.AppendBlock(node.block.Bytes())
		if err != nil {
			return err
		}
		b.Put(keyBlock(blkHash), encodeBlockRef(ref))
	}
	b.Put(keyMain(node.height), blkHash[:])
	b.Put(keyTip, encodeTip(blkHash, node.height))
	b.Put(keyUndo(blkHash), encodeUndo(undo))
	var key outPointKey
	var rowBuf []byte
	spent := make([]SpentOutput, 0, len(undo))
	for _, item := range undo {
		b.Delete(key.set('u', item.op))
		rowBuf = appendSpendRecord(rowBuf[:0], c.spent[item.op])
		b.Put(key.set('s', item.op), rowBuf)
		spent = append(spent, SpentOutput{OutPoint: item.op, Entry: item.entry})
	}
	for _, tx := range node.block.Transactions {
		txid := tx.TxHash()
		for i := range tx.TxOut {
			op := wire.OutPoint{Hash: txid, Index: uint32(i)}
			e := c.utxo.Lookup(op)
			if e == nil {
				continue
			}
			row := c.utxo.encodedRow(op)
			if row == nil {
				rowBuf = appendUtxoEntry(rowBuf[:0], e)
				row = rowBuf
			}
			b.Put(key.set('u', op), row)
		}
	}
	ev := PersistEvent{Connected: true, Block: node.block, Height: node.height, Spent: spent}
	for _, fn := range c.persisters {
		fn(ev, b)
	}
	// Any headers accepted since the last commit (including this block's
	// own, when it is new) ride the same atomic batch.
	c.stageHeaderRows(b)
	return c.applyBatch(b, node.height)
}

// applyBatch commits b, timing the store round trip. When the store is
// a group-commit pipeline, the batch carries its block height so the
// durability watermark advances as it flushes; height < 0 means the
// batch moves no block boundary (side blocks, bootstrap).
func (c *Chain) applyBatch(b *store.Batch, height int) error {
	start := time.Now()
	var err error
	if ma, ok := c.st.(markedApplier); ok && height >= 0 {
		err = ma.ApplyMarked(b, height)
	} else {
		err = c.st.Apply(b)
	}
	if c.tel.commitSeconds != nil {
		observeSince(c.tel.commitSeconds, start)
		c.tel.commitOps.Observe(float64(b.Len()))
	}
	if err == nil {
		c.tel.commits.Inc()
	}
	return err
}

// The store decorations the chain knows how to exploit, discovered by
// interface probe so every store.Store still works unmodified.
type (
	// markedApplier tags a batch with the block height it makes durable
	// (store.Group).
	markedApplier interface {
		ApplyMarked(b *store.Batch, height int) error
	}
	// drainer forces enqueued batches down to the inner store.
	drainer interface {
		Drain() error
	}
	// watermarked reports the highest block height known durable.
	watermarked interface {
		Flushed() int
	}
)

// commitDisconnect assembles and applies the atomic batch for
// disconnecting the tip, given its decoded spend journal. Caller holds
// c.mu and mutates resident state only after this succeeds.
func (c *Chain) commitDisconnect(node *blockNode, undo []undoItem) error {
	b := store.NewBatch()
	b.Delete(keyMain(node.height))
	b.Delete(keyUndo(node.hash))
	parent := node.parent
	b.Put(keyTip, encodeTip(parent.hash, parent.height))
	// Restore-then-delete, matching the resident order: batch ops apply
	// in sequence, so an outpoint created and consumed within this block
	// is restored by its undo row and then deleted by the removal pass.
	var key outPointKey
	var rowBuf []byte
	spent := make([]SpentOutput, 0, len(undo))
	for _, item := range undo {
		rowBuf = appendUtxoEntry(rowBuf[:0], item.entry)
		b.Put(key.set('u', item.op), rowBuf)
		b.Delete(key.set('s', item.op))
		spent = append(spent, SpentOutput{OutPoint: item.op, Entry: item.entry})
	}
	for _, tx := range node.block.Transactions {
		txid := tx.TxHash()
		for i := range tx.TxOut {
			b.Delete(key.set('u', wire.OutPoint{Hash: txid, Index: uint32(i)}))
		}
	}
	ev := PersistEvent{Connected: false, Block: node.block, Height: node.height, Spent: spent}
	for _, fn := range c.persisters {
		fn(ev, b)
	}
	c.stageHeaderRows(b)
	// The new tip is the parent: once this batch is durable, the chain
	// can only replay to parent or later, never to the detached block.
	return c.applyBatch(b, node.parent.height)
}

// loadUndo fetches and decodes the spend journal of a connected block.
func (c *Chain) loadUndo(h chainhash.Hash) ([]undoItem, error) {
	raw, err := c.st.Get(keyUndo(h))
	if err != nil {
		return nil, fmt.Errorf("%w: missing spend journal for %s (%v)", ErrCorruptState, h, err)
	}
	return decodeUndo(raw)
}

// AuditFromGenesis structurally replays the whole main chain and checks
// the resident UTXO table and spend journal against the replay: every
// spend consumes an output that exists, nothing is spent twice, the
// UTXO table is exactly created-minus-spent (modulo provably
// unspendable outputs, which are pruned), and the spend journal names
// the correct spender for every consumed outpoint. This is the startup
// recovery audit for persistent nodes and the convergence audit used by
// the network simulator.
func (c *Chain) AuditFromGenesis() error {
	created := make(map[wire.OutPoint]bool)
	unspendable := make(map[wire.OutPoint]bool)
	spent := make(map[wire.OutPoint]chainhash.Hash)
	tipHeight := c.BestHeight()
	for height := 0; ; height++ {
		blk, ok := c.BlockAtHeight(height)
		if !ok {
			if height <= tipHeight {
				return fmt.Errorf("chain audit: missing block at height %d", height)
			}
			break
		}
		for ti, tx := range blk.Transactions {
			txid := tx.TxHash()
			if ti > 0 { // the coinbase consumes nothing
				for _, in := range tx.TxIn {
					op := in.PreviousOutPoint
					if by, dup := spent[op]; dup {
						return fmt.Errorf("chain audit: utxo %v spent twice: by %s and %s (height %d)",
							op, by, txid, height)
					}
					if !created[op] {
						return fmt.Errorf("chain audit: tx %s at height %d spends nonexistent output %v",
							txid, height, op)
					}
					spent[op] = txid
				}
			}
			for idx, out := range tx.TxOut {
				op := wire.OutPoint{Hash: txid, Index: uint32(idx)}
				created[op] = true
				if isUnspendable(out.PkScript) {
					unspendable[op] = true
				}
			}
		}
	}
	// The resident UTXO table must be exactly created minus spent.
	live := make(map[wire.OutPoint]bool)
	for _, op := range c.UtxoOutpoints() {
		live[op] = true
		if !created[op] {
			return fmt.Errorf("chain audit: utxo set contains never-created output %v", op)
		}
		if by, dup := spent[op]; dup {
			return fmt.Errorf("chain audit: utxo set contains output %v spent by %s", op, by)
		}
	}
	for op := range created {
		if _, wasSpent := spent[op]; !wasSpent && !live[op] && !unspendable[op] {
			return fmt.Errorf("chain audit: unspent output %v missing from utxo set", op)
		}
	}
	// The spend journal must name exactly the replayed spends.
	c.mu.RLock()
	journalSize := len(c.spent)
	bad := ""
	for op, txid := range spent {
		rec, ok := c.spent[op]
		if !ok {
			bad = fmt.Sprintf("spend of %v (by %s) missing from journal", op, txid)
			break
		}
		if rec.Spender != txid {
			bad = fmt.Sprintf("journal says %v spent by %s, replay says %s", op, rec.Spender, txid)
			break
		}
	}
	c.mu.RUnlock()
	if bad != "" {
		return fmt.Errorf("chain audit: %s", bad)
	}
	if journalSize != len(spent) {
		return fmt.Errorf("chain audit: spend journal has %d records, replay produced %d",
			journalSize, len(spent))
	}
	return nil
}
