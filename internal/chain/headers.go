package chain

// Headers-first synchronization: the chain tracks a header index beside
// the block tree. Headers are cheap to validate (80 bytes: proof of
// work, linkage, difficulty schedule, timestamps) so a syncing node
// first extends a best-header skeleton from its peers, then downloads
// block bodies for the skeleton in parallel from many peers and
// connects them in height order. The header index therefore tracks a
// best-header tip that runs ahead of the fully-connected tip, and
// bodies that arrive before their predecessor has connected are parked
// until the gap fills.
//
// Every connected or side block keeps an entry in the header index (its
// header was necessarily accepted first), so the header tip's work is
// always >= the connected tip's work.

import (
	"bytes"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"time"

	"typecoin/internal/chainhash"
	"typecoin/internal/store"
	"typecoin/internal/wire"
)

// ErrOrphanHeader reports a header whose parent is not in the header
// index: the skeleton a peer sent does not connect to anything we know.
var ErrOrphanHeader = errors.New("chain: header does not connect")

// headerNode is one entry in the header index. It mirrors blockNode but
// carries only the 80-byte header; the body may not have arrived yet.
type headerNode struct {
	hash    chainhash.Hash
	parent  *headerNode
	height  int
	workSum *big.Int // cumulative work from genesis
	header  wire.BlockHeader
}

// medianTimePast computes the median timestamp of the last
// medianTimeBlocks ancestors (including the node itself), over the
// header index. Identical to blockNode.medianTimePast — headers and
// bodies share timestamps — but usable before any body arrives.
func (n *headerNode) medianTimePast() time.Time {
	times := make([]time.Time, 0, medianTimeBlocks)
	for iter := n; iter != nil && len(times) < medianTimeBlocks; iter = iter.parent {
		times = append(times, iter.header.Timestamp)
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	return times[len(times)/2]
}

// Parked-body bounds. Parked blocks have validated headers (real proof
// of work on their chain), so they are far harder to fabricate than
// orphans, but the pool is still capped: a sliding-window download can
// legitimately hold a few windows' worth of out-of-order bodies, not an
// unbounded backlog.
const (
	defaultMaxParked      = 4096
	defaultMaxParkedBytes = 32 << 20
)

// checkHeaderContext validates hdr against its parent header: proof of
// work against its own claimed bits, the difficulty schedule, and the
// timestamp rules. These are exactly the contextual checks bodies used
// to get from checkBlockContext, now applied to the skeleton before any
// body is trusted.
func (c *Chain) checkHeaderContext(hdr *wire.BlockHeader, parent *headerNode) error {
	if err := CheckProofOfWork(hdr.BlockHash(), hdr.Bits, c.params.PowLimit); err != nil {
		return fmt.Errorf("%w: %v", ErrBadProofOfWork, err)
	}
	wantBits := c.nextRequiredDifficultyHeader(parent)
	if hdr.Bits != wantBits {
		return fmt.Errorf("%w: header bits %08x, want %08x", ErrBadProofOfWork,
			hdr.Bits, wantBits)
	}
	if !hdr.Timestamp.After(parent.medianTimePast()) {
		return ErrTimeTooOld
	}
	if hdr.Timestamp.After(c.clock.Now().Add(maxFutureBlockTime)) {
		return ErrTimeTooNew
	}
	return nil
}

// nextRequiredDifficultyHeader computes the difficulty for the block
// following parent, walking the header index. nextRequiredDifficulty
// (the blockNode variant) delegates here: every block node has a header
// node, and headers carry everything retargeting needs.
func (c *Chain) nextRequiredDifficultyHeader(parent *headerNode) uint32 {
	if c.params.NoRetarget || c.params.RetargetInterval <= 0 {
		return c.params.PowLimitBits
	}
	nextHeight := parent.height + 1
	if nextHeight%c.params.RetargetInterval != 0 {
		return parent.header.Bits
	}
	// Walk back to the first block of the window.
	first := parent
	for i := 0; i < c.params.RetargetInterval-1 && first.parent != nil; i++ {
		first = first.parent
	}
	actual := parent.header.Timestamp.Sub(first.header.Timestamp)
	target := c.params.TargetTimespan
	// Clamp adjustment to 4x in either direction, as Bitcoin does.
	if actual < target/4 {
		actual = target / 4
	}
	if actual > target*4 {
		actual = target * 4
	}
	oldTarget := CompactToBig(parent.header.Bits)
	newTarget := new(big.Int).Mul(oldTarget, big.NewInt(int64(actual/time.Second)))
	newTarget.Div(newTarget, big.NewInt(int64(target/time.Second)))
	if newTarget.Cmp(c.params.PowLimit) > 0 {
		newTarget.Set(c.params.PowLimit)
	}
	return BigToCompact(newTarget)
}

// acceptHeaderLocked validates hdr and adds it to the header index,
// staging its store row for the next commit batch. Known headers return
// their existing node; the parent header must already be indexed.
// Callers hold c.mu.
func (c *Chain) acceptHeaderLocked(hdr *wire.BlockHeader) (*headerNode, error) {
	hash := hdr.BlockHash()
	if hn, ok := c.headers[hash]; ok {
		return hn, nil
	}
	parent, ok := c.headers[hdr.PrevBlock]
	if !ok {
		return nil, fmt.Errorf("%w: %s links to unknown %s", ErrOrphanHeader, hash, hdr.PrevBlock)
	}
	if err := c.checkHeaderContext(hdr, parent); err != nil {
		return nil, err
	}
	hn := &headerNode{
		hash:    hash,
		parent:  parent,
		height:  parent.height + 1,
		workSum: new(big.Int).Add(parent.workSum, CalcWork(hdr.Bits)),
		header:  *hdr,
	}
	c.addHeaderNodeLocked(hn, true)
	c.tel.headersAcc.Inc()
	return hn, nil
}

// addHeaderNodeLocked indexes hn, advances the best-header tip when it
// carries strictly more work, and optionally stages its store row
// (nodes rebuilt during load are already persisted).
func (c *Chain) addHeaderNodeLocked(hn *headerNode, stage bool) {
	c.headers[hn.hash] = hn
	if stage {
		c.hdrDirty = append(c.hdrDirty, hn)
	}
	if c.headerTip == nil || hn.workSum.Cmp(c.headerTip.workSum) > 0 {
		c.setHeaderTipLocked(hn)
	}
}

// setHeaderTipLocked moves the best-header tip to hn and reconciles the
// by-height view: walk hn's ancestry down until it rejoins the existing
// best header chain, rewriting only the divergent suffix.
func (c *Chain) setHeaderTipLocked(hn *headerNode) {
	c.headerTip = hn
	if len(c.hmain) > hn.height+1 {
		c.hmain = c.hmain[:hn.height+1]
	}
	for len(c.hmain) < hn.height+1 {
		c.hmain = append(c.hmain, nil)
	}
	for n := hn; n != nil; n = n.parent {
		if c.hmain[n.height] == n {
			break
		}
		c.hmain[n.height] = n
	}
}

// stageHeaderRows moves accepted-but-unpersisted header rows into b.
// Every commit batch drains the staging list, so header rows ride the
// same atomic batches as the state they justify (and a headers-only
// batch in ProcessHeaders when no body commit is in flight).
func (c *Chain) stageHeaderRows(b *store.Batch) {
	for _, hn := range c.hdrDirty {
		b.Put(keyHeader(hn.hash), hn.header.Bytes())
	}
	c.hdrDirty = c.hdrDirty[:0]
}

// ProcessHeaders validates a batch of headers (in order) against the
// header index, persisting accepted ones as one atomic batch. It
// returns how many of the headers are now indexed (including ones
// already known) and the first validation error, if any. A header whose
// parent is unknown fails with ErrOrphanHeader, which the p2p layer
// treats as a stale-locator signal rather than hostility.
func (c *Chain) ProcessHeaders(headers []wire.BlockHeader) (int, error) {
	if len(headers) == 0 {
		return 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	accepted := 0
	var firstErr error
	for i := range headers {
		if _, err := c.acceptHeaderLocked(&headers[i]); err != nil {
			firstErr = err
			break
		}
		accepted++
	}
	if len(c.hdrDirty) > 0 {
		b := store.NewBatch()
		c.stageHeaderRows(b)
		if err := c.applyBatch(b, -1); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return accepted, firstErr
}

// HeaderHeight returns the height of the best-header tip. It is >= the
// connected BestHeight; the gap is the sync backlog.
func (c *Chain) HeaderHeight() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.headerTip.height
}

// HeaderTipHash returns the hash of the best-header tip.
func (c *Chain) HeaderTipHash() chainhash.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.headerTip.hash
}

// HeaderLocator builds a block locator over the best header chain:
// recent hashes densely, then exponentially sparser back to genesis.
// This is what getheaders requests carry — it must reflect the header
// skeleton, not just connected bodies, or a restarted node would refetch
// headers it already validated.
func (c *Chain) HeaderLocator() []chainhash.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []chainhash.Hash
	step := 1
	for h := c.headerTip.height; h >= 0; h -= step {
		out = append(out, c.hmain[h].hash)
		if len(out) >= 10 {
			step *= 2
		}
	}
	if out[len(out)-1] != c.hmain[0].hash {
		out = append(out, c.hmain[0].hash)
	}
	return out
}

// HeadersAfter returns up to limit best-header-chain headers after the
// first locator hash found on the best header chain (genesis if none
// match) — the serving side of getheaders. Serving stops at the first
// skeleton entry whose body this node cannot itself serve: a header a
// peer accepts makes this node a download target for its body, and
// relaying an unbacked skeleton would both amplify a body-withholding
// attack and earn this node the attacker's stall penalties.
func (c *Chain) HeadersAfter(locator []chainhash.Hash, limit int) []wire.BlockHeader {
	c.mu.RLock()
	defer c.mu.RUnlock()
	start := 0
	for _, h := range locator {
		if hn, ok := c.headers[h]; ok && hn.height < len(c.hmain) && c.hmain[hn.height] == hn {
			start = hn.height
			break
		}
	}
	var out []wire.BlockHeader
	for h := start + 1; h <= c.headerTip.height && len(out) < limit; h++ {
		hn := c.hmain[h]
		if _, have := c.index[hn.hash]; !have {
			break
		}
		out = append(out, hn.header)
	}
	return out
}

// NeededBody is one body the header skeleton still needs, with the
// height its header occupies on the best header chain — the download
// scheduler matches it against each peer's servable height.
type NeededBody struct {
	Hash   chainhash.Hash
	Height int
}

// NextNeededBodies returns up to max blocks, in height order, whose
// headers are on the best header chain above the connected chain's fork
// point with it but whose bodies this node has not yet seen. This
// drives the download scheduler: bodies are fetched in skeleton order,
// not inbound announcement order.
func (c *Chain) NextNeededBodies(max int) []NeededBody {
	c.mu.RLock()
	defer c.mu.RUnlock()
	// Find the fork point between the connected tip and the best header
	// chain; everything above it is the sync backlog.
	fork := 0
	for n := c.tip; n != nil; n = n.parent {
		if n.height < len(c.hmain) && c.hmain[n.height] != nil && c.hmain[n.height].hash == n.hash {
			fork = n.height
			break
		}
	}
	var out []NeededBody
	for h := fork + 1; h <= c.headerTip.height && len(out) < max; h++ {
		hn := c.hmain[h]
		if _, have := c.index[hn.hash]; have {
			continue
		}
		if _, held := c.parked[hn.hash]; held {
			continue
		}
		out = append(out, NeededBody{Hash: hn.hash, Height: h})
	}
	return out
}

// ServableHeight reports how far up the current best header chain a
// peer whose best announced header is bestKnown can serve bodies: the
// height of bestKnown's highest ancestor on the skeleton (bestKnown
// itself when it is on the skeleton). Zero when the header is unknown —
// an unverified claim earns no download assignments, so a peer that is
// behind, on a different fork, or silent is never charged a stall for
// bodies it never claimed to have.
func (c *Chain) ServableHeight(bestKnown chainhash.Hash) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	hn, ok := c.headers[bestKnown]
	if !ok {
		return 0
	}
	for ; hn != nil; hn = hn.parent {
		if hn.height < len(c.hmain) && c.hmain[hn.height] == hn {
			return hn.height
		}
	}
	return 0
}

// ParkedCount returns the number of bodies parked awaiting their
// predecessors.
func (c *Chain) ParkedCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.parked)
}

// parkBlockLocked holds a body whose header is validated but whose
// predecessor body has not connected yet. Past the pool bounds the
// block is dropped instead: NextNeededBodies will list it again and the
// scheduler refetches it once the backlog drains.
func (c *Chain) parkBlockLocked(hash chainhash.Hash, blk *wire.MsgBlock) {
	size := int64(len(blk.Bytes()))
	if len(c.parked)+1 > defaultMaxParked || c.parkedBytes+size > defaultMaxParkedBytes {
		return
	}
	c.parked[hash] = blk
	c.parkedBytes += size
	c.tel.parked.Inc()
}

// adoptParked connects parked bodies whose predecessors have arrived,
// lowest height first (deterministically — map order must not influence
// which sibling connects first), cascading until no parked block can
// make progress. Callers hold c.mu.
func (c *Chain) adoptParked() []Notification {
	var events []Notification
	for {
		type ready struct {
			hash chainhash.Hash
			blk  *wire.MsgBlock
		}
		var batch []ready
		for hash, blk := range c.parked {
			if _, ok := c.index[blk.Header.PrevBlock]; ok {
				batch = append(batch, ready{hash, blk})
			}
		}
		if len(batch) == 0 {
			return events
		}
		sort.Slice(batch, func(i, j int) bool {
			hi, hj := c.headers[batch[i].hash].height, c.headers[batch[j].hash].height
			if hi != hj {
				return hi < hj
			}
			return bytes.Compare(batch[i].hash[:], batch[j].hash[:]) < 0
		})
		for _, r := range batch {
			delete(c.parked, r.hash)
			c.parkedBytes -= int64(len(r.blk.Bytes()))
			parent, ok := c.index[r.blk.Header.PrevBlock]
			if !ok {
				continue // a sibling earlier in the batch replaced its branch
			}
			if _, evs, err := c.acceptBlock(r.blk, parent); err == nil {
				events = append(events, evs...)
				// A connected body can in turn free orphans waiting on it.
				events = append(events, c.adoptOrphans(r.hash)...)
			}
		}
	}
}
