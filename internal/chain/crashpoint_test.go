package chain

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"typecoin/internal/clock"
	"typecoin/internal/crashpoint"
	"typecoin/internal/store"
)

// recoverAndCheck reopens a materialized crash state as a full chain
// and runs the recovery invariants: the store must open (truncating any
// torn tail), the chain must load with its tip linked back to genesis,
// the from-genesis audit (UTXO set + spend journal vs replay) must
// pass, and the recovered height must lie inside the commit window.
func recoverAndCheck(params *Params, clk clock.Clock, dir string, preHeight, finalHeight int) (int, error) {
	st, err := store.OpenFile(dir)
	if err != nil {
		return 0, fmt.Errorf("recovery open store: %w", err)
	}
	defer st.Close()
	c, err := Open(Config{Params: params, Clock: clk, Store: st})
	if err != nil {
		return 0, fmt.Errorf("recovery open chain: %w", err)
	}
	h := c.BestHeight()
	if h < preHeight || h > finalHeight {
		return h, fmt.Errorf("recovered height %d outside window [%d, %d]", h, preHeight, finalHeight)
	}
	// Tip linkage: every height up to the tip must resolve to a block
	// whose parent is the block below it.
	prev := params.GenesisBlock.BlockHash()
	for height := 1; height <= h; height++ {
		blk, ok := c.BlockAtHeight(height)
		if !ok {
			return h, fmt.Errorf("missing block at height %d (tip %d)", height, h)
		}
		if blk.Header.PrevBlock != prev {
			return h, fmt.Errorf("height %d links to %s, want %s", height, blk.Header.PrevBlock, prev)
		}
		prev = blk.BlockHash()
	}
	if err := c.AuditFromGenesis(); err != nil {
		return h, fmt.Errorf("audit: %w", err)
	}
	return h, nil
}

// TestCrashPointsSyncPath explores every crash state of a synchronous
// commit window (per-apply fsync, no pipeline): two block connects,
// each a blocks.dat append plus one journal frame plus its fsync. At
// every boundary and torn variant the datadir must recover a consistent
// chain, and across clean boundaries the recovered height must be
// monotone — later crashes never recover less chain.
func TestCrashPointsSyncPath(t *testing.T) {
	base := t.TempDir()
	dataDir := filepath.Join(base, "data")
	params := RegTestParams()
	clk := clock.NewSimulated(params.GenesisBlock.Header.Timestamp.Add(time.Minute))

	c, st := openFileChain(t, dataDir, clk)
	st.SetSyncEvery(true)
	extend(t, c, clk, 3, 0)
	if err := st.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	preHeight := c.BestHeight()
	snap := filepath.Join(base, "snap")
	if err := crashpoint.Snapshot(snap, dataDir); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	rec := &crashpoint.Recorder{}
	st.SetDiskHook(rec)
	extend(t, c, clk, 2, 0)
	st.SetDiskHook(nil)
	finalHeight := c.BestHeight()
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	events := rec.Events()
	if len(events) < 6 { // 2 connects x (body append + frame write + fsync)
		t.Fatalf("window recorded only %d physical ops: %v", len(events), events)
	}

	lastClean := -1
	n, err := crashpoint.Explore(filepath.Join(base, "scratch"), snap, events, func(dir string, p crashpoint.Point) error {
		h, err := recoverAndCheck(params, clk, dir, preHeight, finalHeight)
		if err != nil {
			return err
		}
		if p.Tear < 0 {
			if h < lastClean {
				return fmt.Errorf("recovery regressed: height %d after an earlier boundary gave %d", h, lastClean)
			}
			lastClean = h
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastClean != finalHeight {
		t.Fatalf("full-window recovery reached height %d, want %d", lastClean, finalHeight)
	}
	t.Logf("sync path: %d crash states over %d physical ops", n, len(events))
}

// TestCrashPointsGroupCommitPath explores the same matrix under the
// async group-commit pipeline, with watermark checkpoints: after each
// drain the durability watermark (Flushed) is recorded against the
// physical-op count, and every crash state at or past a checkpoint must
// recover at least that height — the watermark may never overpromise.
func TestCrashPointsGroupCommitPath(t *testing.T) {
	base := t.TempDir()
	dataDir := filepath.Join(base, "data")
	params := RegTestParams()
	clk := clock.NewSimulated(params.GenesisBlock.Header.Timestamp.Add(time.Minute))

	st, err := store.OpenFile(dataDir)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	g := store.NewGroup(st, store.GroupConfig{Interval: 0, SyncEvery: 1})
	c, err := Open(Config{Params: params, Clock: clk, Store: g})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	extend(t, c, clk, 3, 0)
	if err := g.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	preHeight := c.BestHeight()
	snap := filepath.Join(base, "snap")
	if err := crashpoint.Snapshot(snap, dataDir); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	rec := &crashpoint.Recorder{}
	st.SetDiskHook(rec)
	type checkpoint struct {
		ops    int
		height int
	}
	var marks []checkpoint
	// Two drained sub-windows, so the matrix crosses a mid-window
	// watermark advance, not just the final one.
	for _, burst := range []int{2, 1} {
		extend(t, c, clk, burst, 0)
		if err := g.Drain(); err != nil {
			t.Fatalf("Drain: %v", err)
		}
		marks = append(marks, checkpoint{ops: rec.Len(), height: g.Flushed()})
	}
	st.SetDiskHook(nil)
	finalHeight := c.BestHeight()
	if got := marks[len(marks)-1].height; got != finalHeight {
		t.Fatalf("drained watermark %d, tip %d", got, finalHeight)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	events := rec.Events()

	n, err := crashpoint.Explore(filepath.Join(base, "scratch"), snap, events, func(dir string, p crashpoint.Point) error {
		h, err := recoverAndCheck(params, clk, dir, preHeight, finalHeight)
		if err != nil {
			return err
		}
		for _, m := range marks {
			if p.N >= m.ops && h < m.height {
				return fmt.Errorf("watermark said %d durable after %d ops, crash at op %d recovered only %d",
					m.height, m.ops, p.N, h)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("group-commit path: %d crash states over %d physical ops, %d watermark checkpoints",
		n, len(events), len(marks))
}
