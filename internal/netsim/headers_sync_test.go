package netsim

// Headers-first catch-up scenario: a ten-node network where one node is
// a thousand blocks behind. The laggard pulls the header skeleton from
// its sync peer and bodies in parallel windows from every connected
// donor; the same cold start forced through a single peer is the
// baseline. The comparison is in virtual time (clock ticks to tip) and
// bytes on the wire (the per-peer receive counters): parallel download
// must reach the tip in fewer ticks, spread body traffic across at
// least three donors, and not amplify total download volume.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"typecoin/internal/chain"
	"typecoin/internal/clock"
	"typecoin/internal/miner"
	"typecoin/internal/testutil"
	"typecoin/internal/wallet"
	"typecoin/internal/wire"
)

// catchUpDepth is how far behind the laggard starts.
const catchUpDepth = 1000

// mineDonorChain mines the shared donor history on a scratch chain with
// its own virtual clock, so the blocks depend only on the seed — both
// the parallel and the single-peer run replay the identical chain.
func mineDonorChain(t *testing.T, seed int64, params *chain.Params, depth int) []*wire.MsgBlock {
	t.Helper()
	clk := clock.NewSimulated(params.GenesisBlock.Header.Timestamp.Add(time.Minute))
	c := chain.New(params, clk)
	w := wallet.New(c, testutil.NewEntropy(fmt.Sprintf("netsim/headsync/%d", seed)))
	payout, err := w.NewKey()
	if err != nil {
		t.Fatalf("donor payout key: %v", err)
	}
	m := miner.New(c, nil, clk)
	blocks, err := m.MineN(depth, payout)
	if err != nil {
		t.Fatalf("donor pre-mine: %v", err)
	}
	return blocks
}

// runHeaderCatchUp feeds the donor chain into the first donorCount
// nodes, dials the laggard (node 9) into each, and drives the virtual
// clock until the laggard's connected tip reaches the donor tip.
// It returns the tick count and the laggard's per-peer receive-byte
// snapshot.
func runHeaderCatchUp(t *testing.T, seed int64, blocks []*wire.MsgBlock, donorCount int) (int, map[string]uint64) {
	t.Helper()
	cfg := LinkConfig{Latency: 25 * time.Millisecond, Jitter: 2 * time.Millisecond}
	h := NewHarness(t, seed, 10, cfg)
	const laggard = 9
	for i := 0; i < donorCount; i++ {
		for _, blk := range blocks {
			if _, err := h.Nodes[i].Chain().ProcessBlock(blk); err != nil {
				t.Fatalf("feed donor %d: %v", i, err)
			}
		}
	}
	for i := 0; i < donorCount; i++ {
		h.Connect(laggard, i)
	}

	tip := blocks[len(blocks)-1].BlockHash()
	lchain := h.Nodes[laggard].Chain()
	deadline := time.Now().Add(60 * time.Second)
	ticks := 0
	for lchain.BestHash() != tip {
		if time.Now().After(deadline) {
			t.Fatalf("laggard stuck at height %d (headers %d) after %d ticks",
				lchain.BestHeight(), lchain.HeaderHeight(), ticks)
		}
		h.Clk.Advance(20 * time.Millisecond)
		time.Sleep(time.Millisecond)
		ticks++
		if ticks%100 == 0 {
			for _, node := range h.Nodes {
				node.SyncPeers()
			}
		}
	}
	if got := lchain.HeaderHeight(); got != catchUpDepth {
		t.Fatalf("laggard header height %d, want %d", got, catchUpDepth)
	}
	if got := h.Metric(laggard, "chain_header_height"); int(got) != catchUpDepth {
		t.Fatalf("chain_header_height reads %v, want %d", got, catchUpDepth)
	}
	return ticks, h.Regs[laggard].VecValues("p2p_recv_bytes_total")
}

// donorBytes extracts the receive-byte totals per donor host from a
// label-rendered snapshot (keys look like `{peer="n3"}`).
func donorBytes(snapshot map[string]uint64, donorCount int) map[string]uint64 {
	out := make(map[string]uint64)
	for i := 0; i < donorCount; i++ {
		host := fmt.Sprintf("%q", fmt.Sprintf("n%d", i))
		for key, v := range snapshot {
			if strings.Contains(key, host) {
				out[host] += v
			}
		}
	}
	return out
}

func sumBytes(m map[string]uint64) uint64 {
	var n uint64
	for _, v := range m {
		n += v
	}
	return n
}

func runHeaderSyncScenario(t *testing.T, seed int64) {
	params := chain.RegTestParams()
	blocks := mineDonorChain(t, seed, params, catchUpDepth)

	const donors = 6
	multiTicks, multiSnap := runHeaderCatchUp(t, seed, blocks, donors)
	singleTicks, singleSnap := runHeaderCatchUp(t, seed, blocks, 1)

	multi := donorBytes(multiSnap, donors)
	single := donorBytes(singleSnap, 1)
	multiTotal, singleTotal := sumBytes(multi), sumBytes(single)
	t.Logf("seed=%d multi: %d ticks, %d bytes across %v; single: %d ticks, %d bytes",
		seed, multiTicks, multiTotal, multi, singleTicks, singleTotal)

	// Virtual time to tip must improve: parallel windows keep several
	// round trips in flight where the single peer serializes them.
	if multiTicks >= singleTicks {
		t.Fatalf("parallel sync took %d ticks, single-peer baseline %d — no improvement",
			multiTicks, singleTicks)
	}

	// Body traffic must actually spread: at least three distinct donors
	// each delivered a meaningful share of the download.
	const minShare = 2048 // a handful of bodies, well above handshake noise
	served := 0
	for _, v := range multi {
		if v >= minShare {
			served++
		}
	}
	if served < 3 {
		t.Fatalf("bodies came from %d donors with >= %d bytes, want >= 3 (per-peer bytes: %v)",
			served, minShare, multi)
	}

	// Bytes on the wire must improve per peer without amplifying in
	// aggregate: no single donor carries what the lone peer carried, and
	// the parallel run downloads at most modest overhead (extra
	// handshakes and header probes) beyond the baseline.
	for host, v := range multi {
		if v >= singleTotal {
			t.Fatalf("donor %s received %d bytes, not below single-peer total %d", host, v, singleTotal)
		}
	}
	if singleTotal == 0 {
		t.Fatalf("single-peer baseline recorded no received bytes")
	}
	if multiTotal > singleTotal+singleTotal/4 {
		t.Fatalf("parallel run pulled %d bytes, more than 1.25x the single-peer %d — amplification",
			multiTotal, singleTotal)
	}
}

// TestHeaderSyncCatchUp runs the ten-node catch-up comparison across
// the replayable seed list (override with SIM_SEED).
func TestHeaderSyncCatchUp(t *testing.T) {
	if raceEnabled {
		// The comparison drives the virtual clock at a fixed real-time
		// pace (1ms per 20ms tick); the race detector slows the node
		// goroutines 5-20x, so virtual time outruns delivery, stall
		// timers fire spuriously, and both the tick and byte comparisons
		// stop measuring the sync manager. Correctness under race is
		// covered by TestHeaderSyncConvergedInvariants.
		t.Skip("virtual-time/bytes comparison is not meaningful under the race detector")
	}
	seeds := byzantineSeeds(t)
	if len(seeds) > 2 {
		// The full five-seed sweep is for the cheap byzantine scenarios;
		// two thousand-block cold syncs per seed is the expensive path.
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runHeaderSyncScenario(t, seed)
		})
	}
}

// TestHeaderSyncConvergedInvariants re-runs the parallel catch-up on the
// first seed with every donor populated and checks the five harness
// invariants at the converged tip.
func TestHeaderSyncConvergedInvariants(t *testing.T) {
	seed := byzantineSeeds(t)[0]
	params := chain.RegTestParams()
	blocks := mineDonorChain(t, seed, params, catchUpDepth)

	cfg := LinkConfig{Latency: 25 * time.Millisecond, Jitter: 2 * time.Millisecond}
	h := NewHarness(t, seed, 10, cfg)
	const laggard = 9
	for i := 0; i < laggard; i++ {
		for _, blk := range blocks {
			if _, err := h.Nodes[i].Chain().ProcessBlock(blk); err != nil {
				t.Fatalf("feed donor %d: %v", i, err)
			}
		}
	}
	for i := 0; i < 6; i++ {
		h.Connect(laggard, i)
	}
	tip := blocks[len(blocks)-1].BlockHash()
	// Wait for the download windows to drain too: stall rotation can
	// leave duplicate requests in flight at the instant the tip
	// connects, and they only release when the redundant bodies arrive.
	h.WaitFor("laggard at donor tip with windows drained", func() bool {
		if h.Nodes[laggard].Chain().BestHash() != tip {
			return false
		}
		status := h.Nodes[laggard].SyncStatus()
		return status.InflightBodies == 0 && status.ParkedBodies == 0
	})
	if got := h.AssertConverged(); got != tip {
		t.Fatalf("converged on %s, want donor tip %s", got, tip)
	}
	status := h.Nodes[laggard].SyncStatus()
	if status.HeaderHeight != status.Height || status.Height != catchUpDepth {
		t.Fatalf("laggard sync status %+v, want header and connected height %d", status, catchUpDepth)
	}
	if status.InflightBodies != 0 || status.ParkedBodies != 0 {
		t.Fatalf("laggard still has %d in-flight and %d parked bodies at tip",
			status.InflightBodies, status.ParkedBodies)
	}
}
