//go:build !race

package netsim

// See race_on_test.go.
const raceEnabled = false
