package netsim

// Cluster-wide commitment tracing. Every node's span store runs on the
// harness's shared virtual clock, so per-node spans for the same subject
// merge into one causal timeline: the cluster's first sight of a stage
// is simply the minimum timestamp any node recorded for it. On top of
// the merged timelines the harness computes a latency-budget report —
// per-stage p50/p99 across all transactions — which is deterministic for
// a given seed (virtual time only advances when the scenario says so),
// making the budget replayable bit-for-bit with SIM_SEED.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"typecoin/internal/telemetry"
)

// ClusterSpan is the merged cross-node view of one subject: for every
// stage, the earliest and latest virtual time any node recorded it,
// which nodes tracked the subject, and how many relay hop records the
// cluster accumulated.
type ClusterSpan struct {
	Ref   string
	Kind  string
	Nodes []int
	Hops  int
	First map[string]time.Time
	Last  map[string]time.Time
}

// Delta returns the elapsed virtual time between the cluster's first
// sight of two stages, ok=false when either stage was never recorded.
// Negative deltas (stages that can land out of order across pipelines)
// clamp to zero, matching the histogram semantics.
func (cs *ClusterSpan) Delta(from, to string) (time.Duration, bool) {
	a, oka := cs.First[from]
	b, okb := cs.First[to]
	if !oka || !okb {
		return 0, false
	}
	d := b.Sub(a)
	if d < 0 {
		d = 0
	}
	return d, true
}

// Spread returns how long a stage took to sweep the cluster: the gap
// between the first and the last node recording it. A healthy gossip
// mesh keeps spreads at propagation scale; a Byzantine slow relay shows
// up here while first-sight deltas stay honest.
func (cs *ClusterSpan) Spread(stage string) (time.Duration, bool) {
	a, oka := cs.First[stage]
	b, okb := cs.Last[stage]
	if !oka || !okb {
		return 0, false
	}
	return b.Sub(a), true
}

// AssembleTrace merges every node's span store into per-subject cluster
// spans, keyed by the subject hash string.
func (h *Harness) AssembleTrace() map[string]*ClusterSpan {
	out := make(map[string]*ClusterSpan)
	for i, s := range h.Spans {
		for _, snap := range s.Snapshots() {
			cs := out[snap.Ref]
			if cs == nil {
				cs = &ClusterSpan{
					Ref:   snap.Ref,
					Kind:  snap.Kind,
					First: make(map[string]time.Time),
					Last:  make(map[string]time.Time),
				}
				out[snap.Ref] = cs
			}
			cs.Nodes = append(cs.Nodes, i)
			cs.Hops += len(snap.Hops)
			for _, m := range snap.Stages {
				if t, ok := cs.First[m.Stage]; !ok || m.Time.Before(t) {
					cs.First[m.Stage] = m.Time
				}
				if t, ok := cs.Last[m.Stage]; !ok || m.Time.After(t) {
					cs.Last[m.Stage] = m.Time
				}
			}
		}
	}
	return out
}

// BudgetRow is one measured stage (or stage spread) of the latency
// budget: how many subjects had the measurement and its p50/p99.
type BudgetRow struct {
	Name string
	N    int
	P50  time.Duration
	P99  time.Duration
}

// BudgetReport is the cluster's commitment-latency budget: where the
// time between submitting a transaction and seeing it indexed (and a
// block's path from first sight to every node's index) actually goes.
type BudgetReport struct {
	Seed      int64
	TxSpans   int
	BlockSpans int
	Rows      []BudgetRow
}

// budgetMeasure extracts one duration from a cluster span.
type budgetMeasure struct {
	name string
	kind string
	get  func(*ClusterSpan) (time.Duration, bool)
}

func delta(from, to string) func(*ClusterSpan) (time.Duration, bool) {
	return func(cs *ClusterSpan) (time.Duration, bool) { return cs.Delta(from, to) }
}

func spread(stage string) func(*ClusterSpan) (time.Duration, bool) {
	return func(cs *ClusterSpan) (time.Duration, bool) { return cs.Spread(stage) }
}

// budgetMeasures is the fixed row schema of the report. First-sight
// deltas decompose the commitment pipeline; the two spread rows separate
// "the cluster reached the stage" from "every node reached the stage",
// which is where relay-path attacks surface.
var budgetMeasures = []budgetMeasure{
	{"tx submit->accept", "tx", delta(telemetry.StageSubmitted, telemetry.StageAccepted)},
	{"tx accept->mined", "tx", delta(telemetry.StageAccepted, telemetry.StageMined)},
	{"tx mined->connected", "tx", delta(telemetry.StageMined, telemetry.StageConnected)},
	{"tx connected->durable", "tx", delta(telemetry.StageConnected, telemetry.StageDurable)},
	{"tx durable->indexed", "tx", delta(telemetry.StageDurable, telemetry.StageIndexed)},
	{"tx submit->indexed", "tx", delta(telemetry.StageSubmitted, telemetry.StageIndexed)},
	{"tx submit->confirmed", "tx", delta(telemetry.StageSubmitted, telemetry.StageConfirmed)},
	{"tx indexed spread", "tx", spread(telemetry.StageIndexed)},
	{"block first_seen->connected", "block", delta(telemetry.StageFirstSeen, telemetry.StageConnected)},
	{"block connected spread", "block", spread(telemetry.StageConnected)},
}

// LatencyBudget assembles the cluster trace and reduces it to the
// per-stage p50/p99 budget. The row set and ordering are fixed, and all
// inputs are virtual-clock timestamps, so the report (and its Render)
// is a pure function of the scenario's seed.
func (h *Harness) LatencyBudget() *BudgetReport {
	spans := h.AssembleTrace()
	rep := &BudgetReport{Seed: h.Seed}
	for _, cs := range spans {
		switch cs.Kind {
		case "tx":
			rep.TxSpans++
		case "block":
			rep.BlockSpans++
		}
	}
	for _, m := range budgetMeasures {
		var ds []time.Duration
		for _, cs := range spans {
			if cs.Kind != m.kind {
				continue
			}
			if d, ok := m.get(cs); ok {
				ds = append(ds, d)
			}
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		rep.Rows = append(rep.Rows, BudgetRow{
			Name: m.name,
			N:    len(ds),
			P50:  percentile(ds, 0.50),
			P99:  percentile(ds, 0.99),
		})
	}
	return rep
}

// percentile is the nearest-rank percentile of a sorted duration slice
// (zero when empty) — deterministic, no interpolation.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Row returns the named row of the report, ok=false when absent.
func (r *BudgetReport) Row(name string) (BudgetRow, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row, true
		}
	}
	return BudgetRow{}, false
}

// Render formats the report as a fixed-width table. Every field is
// derived from virtual time and the fixed row schema, so two runs of the
// same scenario with the same seed render byte-identical reports.
func (r *BudgetReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency budget: seed=%d tx_spans=%d block_spans=%d\n", r.Seed, r.TxSpans, r.BlockSpans)
	fmt.Fprintf(&b, "%-30s %6s %14s %14s\n", "stage", "n", "p50", "p99")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-30s %6d %14s %14s\n", row.Name, row.N, row.P50, row.P99)
	}
	return b.String()
}
