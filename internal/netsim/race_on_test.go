//go:build race

package netsim

// raceEnabled reports whether the race detector is compiled in. Timing
// comparisons (virtual ticks to tip, bytes on the wire) are meaningless
// under the detector's 5-20x goroutine slowdown, so the comparative
// scenarios skip themselves; correctness invariants keep running.
const raceEnabled = true
