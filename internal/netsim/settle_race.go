//go:build race

package netsim

import "time"

// Under the race detector everything between a message delivery and the
// next send runs many times slower, so a short calm window would call a
// tick settled while a handler is still mid-cascade. Widen the window
// and the per-tick budget accordingly.
const (
	settleCalmPolls    = 5
	settleCalmSleep    = 2 * time.Millisecond
	settleTickDeadline = 2 * time.Second
)
