package netsim

import (
	"fmt"
	"testing"
	"time"

	"typecoin/internal/bkey"
	"typecoin/internal/chain"
	"typecoin/internal/chainhash"
	"typecoin/internal/clock"
	"typecoin/internal/index"
	"typecoin/internal/mempool"
	"typecoin/internal/miner"
	"typecoin/internal/p2p"
	"typecoin/internal/store"
	"typecoin/internal/telemetry"
	"typecoin/internal/testutil"
	"typecoin/internal/typecoin"
	"typecoin/internal/wallet"
	"typecoin/internal/wire"
)

// Harness is a multi-node scenario: N full nodes (chain, mempool,
// ledger, wallet, miner) gossiping over one simulated Network on one
// virtual clock. Faults are scripted through the Network (Partition,
// StallOneWay, SetLink) and the harness asserts the system invariants
// after heal via AssertConverged.
type Harness struct {
	T       testing.TB
	Seed    int64
	Params  *chain.Params
	Clk     *clock.Simulated
	Net     *Network
	Nodes   []*p2p.Node
	Ledgers []*typecoin.Ledger
	Wallets []*wallet.Wallet
	Miners  []*miner.Miner
	Payouts []bkey.Principal
	Indexes []*index.Indexer
	// Stores holds each node's persistence stack when the harness was
	// built with NewHarnessWithStores; nil entries mean the default
	// in-memory store. Chaos scenarios reach through it to script fault
	// engines mid-run.
	Stores []store.Store

	// Per-node observability: one registry, one block-lifecycle tracer
	// and one commitment-latency span store per node, so scenarios can
	// assert on defense and chain counters (see Metric) and merge causal
	// spans across the cluster (see AssembleTrace). All span stores run
	// on the shared virtual clock, so cross-node stage deltas are exact.
	Regs    []*telemetry.Registry
	Tracers []*telemetry.Tracer
	Spans   []*telemetry.SpanStore

	base   time.Time // virtual time origin for the block schedule
	blocks int       // global mined-block counter
	edges  [][2]int  // dialed topology (from, to), for reconnects

	// bounds holds the resource limits configured by SetDefense, for
	// AssertBounds; nil until SetDefense is called.
	bounds *Bounds
}

// Bounds are the resource limits a defended scenario enforces on every
// node. AssertBounds checks they were never exceeded (the underlying
// mechanisms cap continuously, so observing compliance at any instant
// plus the mechanisms' own tests covers the invariant).
type Bounds struct {
	MaxOrphans     int
	MaxOrphanBytes int64
	MaxPoolTxs     int
	MaxPoolBytes   int64
	MaxPeers       int // total peers per node, inbound plus outbound
}

// NewHarness builds n nodes over a fresh Network with the given seed and
// default link configuration, and stops them on test cleanup. Nodes are
// not connected; call Connect to build a topology.
func NewHarness(t testing.TB, seed int64, n int, cfg LinkConfig) *Harness {
	return NewHarnessWithStores(t, seed, n, cfg, nil)
}

// NewHarnessWithStores is NewHarness with an explicit persistence stack
// per node: storeFor(i) supplies node i's store (nil falls back to a
// fresh in-memory store). Supplied stores are closed on test cleanup,
// after the nodes stop. When a store reports health
// (store.HealthReporter — the Retry degradation wrapper does), the
// harness registers a store_health gauge on the node's telemetry
// registry and gates its mempool on the store being writable, matching
// the daemon's wiring — which is what lets chaos scenarios assert
// degraded-readonly behavior through the same metrics an operator sees.
func NewHarnessWithStores(t testing.TB, seed int64, n int, cfg LinkConfig, storeFor func(i int) store.Store) *Harness {
	t.Helper()
	params := chain.RegTestParams()
	start := params.GenesisBlock.Header.Timestamp.Add(time.Minute)
	clk := clock.NewSimulated(start)
	h := &Harness{
		T:      t,
		Seed:   seed,
		Params: params,
		Clk:    clk,
		Net:    New(clk, seed, cfg),
		base:   start,
	}
	for i := 0; i < n; i++ {
		var st store.Store
		if storeFor != nil {
			st = storeFor(i)
		}
		var c *chain.Chain
		if st != nil {
			var err error
			c, err = chain.Open(chain.Config{Params: params, Clock: clk, Store: st})
			if err != nil {
				t.Fatalf("node %d chain open: %v", i, err)
			}
		} else {
			c = chain.New(params, clk)
		}
		h.Stores = append(h.Stores, st)
		pool := mempool.New(c, -1)
		node := p2p.NewNode(c, pool, nil)
		reg := telemetry.NewRegistry()
		tr := telemetry.NewTracer(telemetry.DefaultTraceCapacity, clk)
		// Span origin ids are 1-based node indices: deterministic, and 0
		// stays "unset" for hop adoption.
		spans := telemetry.NewSpanStore(telemetry.DefaultSpanCapacity, clk)
		spans.SetOrigin(uint64(i + 1))
		telemetry.RegisterSpanMetrics(reg, spans)
		c.SetTelemetry(reg, tr)
		c.SetSpans(spans)
		pool.SetTelemetry(reg, tr)
		pool.SetSpans(spans)
		node.SetTelemetry(reg, tr)
		node.SetSpans(spans)
		// Every node runs a chain index, so scenarios that reorg nodes
		// through partitions exercise the index's disconnect path too.
		ix, err := index.Open(c)
		if err != nil {
			t.Fatalf("node %d index: %v", i, err)
		}
		ix.SetTelemetry(reg, tr)
		ix.SetSpans(spans)
		node.SetTransport(h.Net.Transport(h.Host(i)))
		// Generous real-time redial budget: a partition must not
		// exhaust it before the heal.
		node.SetRedial(12, 10*time.Millisecond)
		ledger := typecoin.NewLedger(c, 1)
		node.SetLedger(ledger)
		if _, err := node.Listen(""); err != nil {
			t.Fatalf("node %d listen: %v", i, err)
		}
		w := wallet.New(c, testutil.NewEntropy(fmt.Sprintf("netsim/%d/node%d", seed, i)))
		payout, err := w.NewKey()
		if err != nil {
			t.Fatalf("node %d payout key: %v", i, err)
		}
		mn := miner.New(c, pool, clk)
		mn.SetTelemetry(reg)
		mn.SetSpans(spans)
		if hr, ok := st.(store.HealthReporter); ok {
			reg.GaugeFunc("store_health",
				"Store health state (0 healthy, 1 recovering, 2 degraded-readonly).",
				func() float64 {
					s, _ := hr.Health()
					return float64(s)
				})
			pool.SetGate(func() bool {
				s, _ := hr.Health()
				return s != store.HealthDegraded
			})
		}
		h.Nodes = append(h.Nodes, node)
		h.Ledgers = append(h.Ledgers, ledger)
		h.Wallets = append(h.Wallets, w)
		h.Miners = append(h.Miners, mn)
		h.Payouts = append(h.Payouts, payout)
		h.Indexes = append(h.Indexes, ix)
		h.Regs = append(h.Regs, reg)
		h.Tracers = append(h.Tracers, tr)
		h.Spans = append(h.Spans, spans)
	}
	t.Cleanup(func() {
		for _, node := range h.Nodes {
			node.Stop()
		}
		for _, st := range h.Stores {
			if st != nil {
				st.Close()
			}
		}
	})
	return h
}

// SetDefense applies an adversarial-defense policy and resource bounds
// to every node in the harness. Call it before (or after) connecting;
// policies take effect for new penalties immediately.
func (h *Harness) SetDefense(pol p2p.Policy, b Bounds) {
	h.bounds = &b
	for _, node := range h.Nodes {
		node.SetPolicy(pol)
		node.Chain().SetOrphanLimits(b.MaxOrphans, b.MaxOrphanBytes)
		node.Pool().SetLimits(b.MaxPoolTxs, b.MaxPoolBytes)
	}
}

// AssertBounds fails the test if any node currently exceeds the resource
// bounds configured by SetDefense. Safe to call repeatedly, including
// inside WaitFor conditions, to sample the invariant throughout a
// scenario.
func (h *Harness) AssertBounds() {
	h.T.Helper()
	if h.bounds == nil {
		h.T.Fatalf("AssertBounds called without SetDefense")
	}
	b := h.bounds
	for i, node := range h.Nodes {
		if got := node.Chain().OrphanCount(); got > b.MaxOrphans {
			h.T.Fatalf("node %d holds %d orphans, bound %d", i, got, b.MaxOrphans)
		}
		if got := node.Chain().OrphanBytes(); got > b.MaxOrphanBytes {
			h.T.Fatalf("node %d holds %d orphan bytes, bound %d", i, got, b.MaxOrphanBytes)
		}
		if got := node.Pool().Size(); got > b.MaxPoolTxs {
			h.T.Fatalf("node %d pools %d txs, bound %d", i, got, b.MaxPoolTxs)
		}
		if got := node.Pool().Bytes(); got > b.MaxPoolBytes {
			h.T.Fatalf("node %d pools %d tx bytes, bound %d", i, got, b.MaxPoolBytes)
		}
		if got := node.PeerCount(); got > b.MaxPeers {
			h.T.Fatalf("node %d has %d peers, bound %d", i, got, b.MaxPeers)
		}
	}
}

// Metric returns the current value of a metric on node i (counter sum,
// gauge, vec total or histogram count; see telemetry.Registry.Value).
// Unregistered names read as zero so assertions stay simple.
func (h *Harness) Metric(i int, name string) float64 {
	v, _ := h.Regs[i].Value(name)
	return v
}

// Host names node i on the simulated network.
func (h *Harness) Host(i int) string { return fmt.Sprintf("n%d", i) }

// Connect dials node i -> node j and remembers the edge for reconnects.
func (h *Harness) Connect(i, j int) {
	h.T.Helper()
	if err := h.Nodes[i].Dial(h.Host(j)); err != nil {
		h.T.Fatalf("connect %d->%d: %v", i, j, err)
	}
	h.edges = append(h.edges, [2]int{i, j})
}

// Settle advances virtual time in small ticks, yielding real time
// between ticks so node goroutines drain their queues.
func (h *Harness) Settle(ticks int) {
	for k := 0; k < ticks; k++ {
		h.Clk.Advance(20 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
}

// SettleIdle advances virtual time like Settle but waits for the nodes
// to go fully idle between ticks: after each advance it polls the
// network's frame counters until they hold still for two consecutive
// polls (bounded real time per tick). Handlers therefore finish the
// causal cascade a tick delivered before the next tick starts, so every
// span timestamp lands on the virtual tick that caused it — which is
// what makes latency-budget reports a pure function of the seed.
func (h *Harness) SettleIdle(ticks int) {
	for k := 0; k < ticks; k++ {
		h.Clk.Advance(20 * time.Millisecond)
		deadline := time.Now().Add(settleTickDeadline)
		prev := h.Net.Stats()
		calm := 0
		for calm < settleCalmPolls && time.Now().Before(deadline) {
			time.Sleep(settleCalmSleep)
			cur := h.Net.Stats()
			if cur == prev {
				calm++
			} else {
				calm = 0
				prev = cur
			}
		}
	}
}

// MineIdle is Mine with the deterministic SettleIdle drain instead of
// Settle, for latency-tracing scenarios.
func (h *Harness) MineIdle(i, ticks int) *wire.MsgBlock {
	h.T.Helper()
	h.blocks++
	target := h.base.Add(time.Duration(h.blocks) * time.Minute)
	if h.Clk.Now().Before(target) {
		h.Clk.Set(target)
	} else {
		h.Clk.Advance(time.Minute)
	}
	blk, _, err := h.Miners[i].Mine(h.Payouts[i])
	if err != nil {
		h.T.Fatalf("mine on node %d: %v", i, err)
	}
	h.SettleIdle(ticks)
	return blk
}

// WaitFor polls cond while driving the virtual clock, failing the test
// after a generous real-time deadline. Every ~100 ticks it makes all
// nodes re-sync from their peers: lossy links can swallow a one-shot
// inv/getdata exchange, and the protocol has no per-message retry, so
// liveness under faults comes from periodic resync (as in Bitcoin).
func (h *Harness) WaitFor(what string, cond func() bool) {
	h.T.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for k := 0; time.Now().Before(deadline); k++ {
		if cond() {
			return
		}
		h.Clk.Advance(20 * time.Millisecond)
		time.Sleep(time.Millisecond)
		if k%100 == 99 {
			for _, node := range h.Nodes {
				node.SyncPeers()
			}
		}
	}
	h.T.Fatalf("timeout waiting for %s", what)
}

// Mine mines one block on node i at the next slot of a fixed virtual
// timestamp schedule (one minute per block, globally ordered), so block
// hashes depend only on their content — not on how long the scenario
// settled in between.
func (h *Harness) Mine(i int) *wire.MsgBlock {
	h.T.Helper()
	h.blocks++
	target := h.base.Add(time.Duration(h.blocks) * time.Minute)
	if h.Clk.Now().Before(target) {
		h.Clk.Set(target)
	} else {
		h.Clk.Advance(time.Minute)
	}
	blk, _, err := h.Miners[i].Mine(h.Payouts[i])
	if err != nil {
		h.T.Fatalf("mine on node %d: %v", i, err)
	}
	h.Settle(5)
	return blk
}

// MineN mines n blocks on node i.
func (h *Harness) MineN(i, n int) {
	h.T.Helper()
	for k := 0; k < n; k++ {
		h.Mine(i)
	}
}

// Partition splits the network into groups of node indices.
func (h *Harness) Partition(groups ...[]int) {
	named := make([][]string, len(groups))
	for gi, g := range groups {
		for _, i := range g {
			named[gi] = append(named[gi], h.Host(i))
		}
	}
	h.Net.SetPartition(named...)
}

// Heal removes all faults, restores the dialed topology (connections
// killed by corruption may have exhausted their redial budget during the
// partition), and triggers a full resync on every node.
func (h *Harness) Heal() {
	h.T.Helper()
	h.Net.Heal()
	h.Settle(10)
	h.Reconnect()
	h.Settle(10)
	for _, node := range h.Nodes {
		node.SyncPeers()
	}
	h.Settle(10)
}

// Reconnect re-dials every recorded edge whose outbound connection is
// gone.
func (h *Harness) Reconnect() {
	for _, e := range h.edges {
		if !h.Nodes[e[0]].HasPeerAddr(h.Host(e[1])) {
			// Ignore errors: the redial loop may be mid-flight.
			_ = h.Nodes[e[0]].Dial(h.Host(e[1]))
		}
	}
}

// WaitConverged waits until every node reports the same best hash.
func (h *Harness) WaitConverged() {
	h.T.Helper()
	h.WaitFor("best-hash convergence", func() bool {
		best := h.Nodes[0].Chain().BestHash()
		for _, node := range h.Nodes[1:] {
			if node.Chain().BestHash() != best {
				return false
			}
		}
		return true
	})
}

// AssertConverged checks the four system invariants and returns the
// converged best hash:
//
//  1. every node reports the same best hash;
//  2. no UTXO is spent twice across the converged chain's history, and
//     the UTXO set equals created-minus-spent;
//  3. the Typecoin affine invariant holds on every node's ledger, and
//     all ledgers applied the same number of carriers;
//  4. no mempool holds a transaction conflicting with the converged
//     chain;
//  5. every node's chain index sits at the converged tip and its rows —
//     built incrementally through whatever partitions and reorgs the
//     scenario ran — are bit-for-bit what a from-genesis rebuild yields.
func (h *Harness) AssertConverged() chainhash.Hash {
	h.T.Helper()
	best := h.Nodes[0].Chain().BestHash()
	for i, node := range h.Nodes {
		if got := node.Chain().BestHash(); got != best {
			h.T.Fatalf("invariant 1: node %d best hash %s, node 0 has %s (heights %d vs %d)",
				i, got, best, node.Chain().BestHeight(), h.Nodes[0].Chain().BestHeight())
		}
	}
	if err := AuditChainUTXO(h.Nodes[0].Chain()); err != nil {
		h.T.Fatalf("invariant 2: %v", err)
	}
	for i, l := range h.Ledgers {
		if err := l.AuditAffine(); err != nil {
			h.T.Fatalf("invariant 3: node %d: %v", i, err)
		}
		if got, want := l.AppliedCount(), h.Ledgers[0].AppliedCount(); got != want {
			h.T.Fatalf("invariant 3: node %d applied %d typecoin carriers, node 0 applied %d",
				i, got, want)
		}
	}
	for i, node := range h.Nodes {
		if err := AuditMempoolAgainstChain(node.Pool(), node.Chain()); err != nil {
			h.T.Fatalf("invariant 4: node %d: %v", i, err)
		}
	}
	for i, ix := range h.Indexes {
		tipHash, tipHeight, err := ix.Tip()
		if err != nil {
			h.T.Fatalf("invariant 5: node %d index tip: %v", i, err)
		}
		if tipHash != best || tipHeight != h.Nodes[i].Chain().BestHeight() {
			h.T.Fatalf("invariant 5: node %d index tip %s@%d, chain tip %s@%d",
				i, tipHash, tipHeight, best, h.Nodes[i].Chain().BestHeight())
		}
		if err := ix.AuditRebuild(); err != nil {
			h.T.Fatalf("invariant 5: node %d: %v", i, err)
		}
	}
	return best
}

// AuditChainUTXO re-walks a chain's main-chain history from genesis and
// verifies Bitcoin's between-transaction affine guarantee: every spend
// consumes an output that exists and was not consumed before, and the
// chain's UTXO set is exactly the outputs created and never spent. It
// delegates to the chain's own from-genesis audit, which additionally
// cross-checks the spend journal — the same audit persistent nodes run
// after crash recovery.
func AuditChainUTXO(c *chain.Chain) error {
	return c.AuditFromGenesis()
}

// AuditMempoolAgainstChain verifies that no pooled transaction conflicts
// with the chain: none is already confirmed and none spends an outpoint
// the chain has consumed.
func AuditMempoolAgainstChain(pool *mempool.Pool, c *chain.Chain) error {
	for _, txid := range pool.TxIDs() {
		if _, onChain := c.TxByID(txid); onChain {
			return fmt.Errorf("mempool tx %s is already confirmed", txid)
		}
		tx, ok := pool.Tx(txid)
		if !ok {
			continue
		}
		for _, in := range tx.TxIn {
			if rec, isSpent := c.IsSpent(in.PreviousOutPoint); isSpent {
				return fmt.Errorf("mempool tx %s double-spends %v (consumed on chain: %+v)",
					txid, in.PreviousOutPoint, rec)
			}
		}
	}
	return nil
}
