package netsim

// Byzantine actors: hostile peers that speak the raw wire protocol over
// the simulated network, with no p2p.Node behind them. Each actor is a
// tick-driven state machine subscribed to the network's virtual clock,
// so its attack schedule is as deterministic as the rest of a scenario:
// the same seed replays the same flood, the same garbage bytes, the same
// equivocation order.
//
// The library covers the attacker classes the defense policy is designed
// against:
//
//   - Flooder: bursts of valid frames that overrun the per-peer rate
//     buckets.
//   - GarbageSender: well-framed, checksummed messages whose payloads do
//     not decode — garbage only the sender can have produced.
//   - InvSpammer: inventory batches far beyond what the protocol itself
//     ever sends, advertising objects it will never serve.
//   - Withholder: advertises blocks and ignores every getdata, stalling
//     the victim's sync until stall detection rotates and charges it.
//   - Equivocator: pre-mines two conflicting low-work forks and pushes
//     their blocks unsolicited, replaying them forever.
//   - SkeletonWithholder: serves a valid, heavier header skeleton on
//     getheaders and then ignores every body request — the headers-first
//     attack surface. The victim adopts the skeleton, schedules its
//     bodies on the actor (and only the actor: no other peer claims that
//     chain), and stall detection charges and eventually bans it.
//   - SkeletonCorrupter: same skeleton, but serves bodies whose payload
//     bytes are tampered. The merkle commitment fails, each delivery is
//     charged as an invalid block, and the ban lands immediately.
//
// A banned actor keeps redialing; the victim's accept path refuses the
// connection outright, which the scenarios assert.

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"time"

	"typecoin/internal/chain"
	"typecoin/internal/chainhash"
	"typecoin/internal/miner"
	"typecoin/internal/testutil"
	"typecoin/internal/wallet"
	"typecoin/internal/wire"
)

// actorRedialEvery paces reconnect attempts: one dial per this many
// ticks while disconnected, so a banned actor probes the accept path
// without saturating the listener backlog.
const actorRedialEvery = 5

// Actor is one Byzantine peer on the simulated network. Its Name is the
// host it dials from — and therefore the address the victim's ban list
// keys on.
type Actor struct {
	Name   string
	h      *Harness
	target string
	magic  uint32
	behave func(a *Actor)
	// onMsg, when set, turns the read side from a bit bucket into a
	// protocol server: every decoded frame from the victim is dispatched
	// to it (skeleton-serving actors answer getheaders/getdata there).
	onMsg func(a *Actor, msg *wire.Message)
	// hello is the version payload sent on every (re)dial; skeleton
	// actors use it to announce their private fork tip as claimed chain
	// knowledge.
	hello []byte

	mu      sync.Mutex
	conn    net.Conn
	dead    bool
	stopped bool
	tick    int
	sent    int64
	dials   int64
	rng     *rand.Rand
}

// startActor wires an actor to the harness clock and attempts the first
// connection immediately. Stop is registered on test cleanup, which runs
// before the harness stops its nodes (LIFO), so actor goroutines are
// gone before the network is torn down.
func startActor(h *Harness, name string, target int, behave func(*Actor)) *Actor {
	return startServingActor(h, name, target, behave, nil, nil)
}

// startServingActor is startActor for actors that also answer the
// victim's requests: onMsg receives every decoded inbound frame, and
// hello is the version payload announced on each dial.
func startServingActor(h *Harness, name string, target int, behave func(*Actor),
	onMsg func(*Actor, *wire.Message), hello []byte) *Actor {
	seedHash := fnv.New64a()
	seedHash.Write([]byte(name))
	a := &Actor{
		Name:   name,
		h:      h,
		target: h.Host(target),
		magic:  h.Params.Magic,
		behave: behave,
		onMsg:  onMsg,
		hello:  hello,
		rng:    rand.New(rand.NewSource(h.Seed ^ int64(seedHash.Sum64()))),
	}
	h.T.Cleanup(a.Stop)
	a.mu.Lock()
	a.dialLocked()
	a.mu.Unlock()
	h.Net.Clock().Subscribe(a.onTick)
	return a
}

// onTick advances the actor one step of its behavior. Clock
// subscriptions cannot be removed, so a stopped actor simply goes inert.
func (a *Actor) onTick(now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stopped {
		return
	}
	a.tick++
	if a.dead && a.conn != nil {
		a.conn.Close()
		a.conn = nil
	}
	if a.conn == nil {
		if a.tick%actorRedialEvery != 0 {
			return
		}
		a.dialLocked()
		if a.conn == nil {
			return
		}
	}
	a.behave(a)
}

// dialLocked attempts one connection to the target and, on success,
// opens with a version message so the victim completes its handshake.
// The read side is discarded unless the actor serves requests (onMsg).
func (a *Actor) dialLocked() {
	c, err := a.h.Net.Dial(a.Name, a.target)
	if err != nil {
		return
	}
	a.conn = c
	a.dead = false
	a.dials++
	if a.onMsg != nil {
		go a.serve(c)
	} else {
		go a.discard(c)
	}
	a.writeLocked(wire.CmdVersion, a.hello)
}

// serve decodes the victim's frames and dispatches them to onMsg until
// the connection dies.
func (a *Actor) serve(c net.Conn) {
	for {
		msg, err := wire.ReadMessage(c, a.magic)
		if err != nil {
			a.mu.Lock()
			if a.conn == c {
				a.dead = true
			}
			a.mu.Unlock()
			return
		}
		a.onMsg(a, msg)
	}
}

// write frames and sends one message, for callers (the serve goroutine)
// that do not hold a.mu.
func (a *Actor) write(cmd string, payload []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.writeLocked(cmd, payload)
}

// discard drains everything the victim sends until the connection dies
// (EOF when the victim — or its ban logic — closes it).
func (a *Actor) discard(c net.Conn) {
	buf := make([]byte, 4096)
	for {
		if _, err := c.Read(buf); err != nil {
			a.mu.Lock()
			if a.conn == c {
				a.dead = true
			}
			a.mu.Unlock()
			return
		}
	}
}

// writeLocked frames and sends one message on the current connection,
// marking it dead on write failure. Callers hold a.mu.
func (a *Actor) writeLocked(cmd string, payload []byte) {
	if a.conn == nil || a.dead {
		return
	}
	if err := wire.WriteMessage(a.conn, a.magic, &wire.Message{Command: cmd, Payload: payload}); err != nil {
		a.dead = true
		return
	}
	a.sent++
}

// Stop permanently disables the actor and closes its connection.
func (a *Actor) Stop() {
	a.mu.Lock()
	a.stopped = true
	c := a.conn
	a.conn = nil
	a.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Sent reports how many frames the actor has pushed.
func (a *Actor) Sent() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sent
}

// Dials reports how many connections the actor has opened, including
// redials after being disconnected or refused.
func (a *Actor) Dials() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dials
}

// StartFlooder launches an actor that sends perTick valid ping frames
// every clock tick — far beyond any honest rate — until the victim's
// token buckets run dry and the rate-limit penalty bans it.
func StartFlooder(h *Harness, name string, target, perTick int) *Actor {
	return startActor(h, name, target, func(a *Actor) {
		var nonce [8]byte
		for i := 0; i < perTick && !a.dead; i++ {
			a.rng.Read(nonce[:])
			a.writeLocked(wire.CmdPing, nonce[:])
		}
	})
}

// StartGarbageSender launches an actor that sends correctly framed,
// correctly checksummed inv messages whose payloads cannot decode: the
// length prefix promises more entries than the payload carries. Link
// corruption cannot produce this (the checksum would fail first), so the
// victim attributes it fully to the sender.
func StartGarbageSender(h *Harness, name string, target, perTick int) *Actor {
	return startActor(h, name, target, func(a *Actor) {
		for i := 0; i < perTick && !a.dead; i++ {
			junk := make([]byte, 1+a.rng.Intn(8))
			a.rng.Read(junk)
			junk[0] = 0x20 // declare 32 inventory entries, deliver almost none
			a.writeLocked(wire.CmdInv, junk)
		}
	})
}

// StartInvSpammer launches an actor that advertises huge batches of
// nonexistent blocks — inventory messages beyond the policy's
// MaxInvEntries cap — and never serves any of them.
func StartInvSpammer(h *Harness, name string, target, batch int) *Actor {
	return startActor(h, name, target, func(a *Actor) {
		invs := make([]wire.InvVect, batch)
		for i := range invs {
			invs[i].Type = wire.InvTypeBlock
			a.rng.Read(invs[i].Hash[:])
		}
		a.writeLocked(wire.CmdInv, wire.EncodeInv(invs))
	})
}

// StartWithholder launches an actor that advertises one fresh fake block
// per tick and ignores the resulting getdata forever: the classic
// block-withholding stall. The victim's stall sweep charges it and
// rotates sync to other peers.
func StartWithholder(h *Harness, name string, target int) *Actor {
	return startActor(h, name, target, func(a *Actor) {
		var fake chainhash.Hash
		a.rng.Read(fake[:])
		inv := []wire.InvVect{{Type: wire.InvTypeBlock, Hash: fake}}
		a.writeLocked(wire.CmdInv, wire.EncodeInv(inv))
	})
}

// StartEquivocator pre-mines two conflicting low-work forks from genesis
// on private chains and launches an actor that pushes their blocks
// unsolicited, cycling through them forever. The victim sees valid
// proof-of-work blocks that never advance its chain: first stale side
// forks, then pure replays.
func StartEquivocator(h *Harness, name string, target int) *Actor {
	blocks := EquivocationBlocks(h, name, 2)
	// Push order A1, A2, B2, B1: fork B's child arrives before its
	// parent, so the victim's orphan pool and source attribution are
	// exercised before B1 connects it.
	order := []int{0, 1, 3, 2}
	next := 0
	return startActor(h, name, target, func(a *Actor) {
		a.writeLocked(wire.CmdBlock, blocks[order[next%len(order)]])
		next++
	})
}

// skeletonFork is a pre-mined private fork a skeleton actor serves
// headers (and possibly corrupted bodies) from.
type skeletonFork struct {
	tip     chainhash.Hash
	headers []wire.BlockHeader        // heights 1..depth
	heights map[chainhash.Hash]int    // genesis and every fork block
	bodies  map[chainhash.Hash][]byte // serialized fork blocks
}

// mineSkeletonFork mines a private fork of the given depth from genesis.
// Its coinbases pay a fork-private principal, so its blocks are disjoint
// from the honest chain at every height.
func mineSkeletonFork(h *Harness, name string, depth int) *skeletonFork {
	h.T.Helper()
	c := chain.New(h.Params, h.Clk)
	w := wallet.New(c, testutil.NewEntropy(fmt.Sprintf("netsim/skeleton/%d/%s", h.Seed, name)))
	payout, err := w.NewKey()
	if err != nil {
		h.T.Fatalf("skeleton payout key: %v", err)
	}
	m := miner.New(c, nil, h.Clk)
	f := &skeletonFork{
		heights: map[chainhash.Hash]int{h.Params.GenesisBlock.BlockHash(): 0},
		bodies:  make(map[chainhash.Hash][]byte),
	}
	for k := 0; k < depth; k++ {
		blk, _, err := m.Mine(payout)
		if err != nil {
			h.T.Fatalf("skeleton pre-mine block %d: %v", k, err)
		}
		hash := blk.BlockHash()
		f.headers = append(f.headers, blk.Header)
		f.heights[hash] = k + 1
		f.bodies[hash] = blk.Bytes()
		f.tip = hash
	}
	return f
}

// serveHeaders answers one getheaders request from the fork skeleton:
// headers above the highest locator entry on the fork (genesis when the
// victim's chain shares nothing else), capped at the protocol batch
// size. A caught-up locator gets an empty batch, like an honest peer.
func (f *skeletonFork) serveHeaders(a *Actor, payload []byte) {
	locator, _, err := wire.DecodeLocator(payload)
	if err != nil {
		return
	}
	start := 0
	for _, hsh := range locator {
		if ht, ok := f.heights[hsh]; ok {
			start = ht
			break
		}
	}
	batch := f.headers[start:]
	if len(batch) > wire.MaxHeadersPerMsg {
		batch = batch[:wire.MaxHeadersPerMsg]
	}
	a.write(wire.CmdHeaders, wire.EncodeHeaders(batch))
}

// StartSkeletonWithholder launches an actor that serves a valid private
// header skeleton of the given depth (mine it heavier than the honest
// chain) and withholds every body. The victim adopts the skeleton,
// schedules its bodies on the actor — no honest peer claims that chain,
// so none is asked, and none is charged — and the stall sweep penalizes
// the actor until it is banned. The victim's connected chain never
// moves: headers alone carry no state.
func StartSkeletonWithholder(h *Harness, name string, target, depth int) *Actor {
	fork := mineSkeletonFork(h, name, depth)
	onMsg := func(a *Actor, msg *wire.Message) {
		if msg.Command == wire.CmdGetHeaders {
			fork.serveHeaders(a, msg.Payload)
		}
		// Every getdata is ignored: the skeleton's bodies never come.
	}
	hello := wire.EncodeVersion(fork.tip, uint64(depth))
	return startServingActor(h, name, target, func(*Actor) {}, onMsg, hello)
}

// StartSkeletonCorrupter launches an actor that serves the same valid
// header skeleton but answers body requests with tampered payloads: the
// header (and thus the requested hash) is intact while the transaction
// bytes are flipped, so the delivery is solicited but its merkle
// commitment fails. Each corrupt body is charged as an invalid block.
func StartSkeletonCorrupter(h *Harness, name string, target, depth int) *Actor {
	fork := mineSkeletonFork(h, name, depth)
	corrupt := make(map[chainhash.Hash][]byte, len(fork.bodies))
	for hash, body := range fork.bodies {
		bad := append([]byte(nil), body...)
		bad[len(bad)-1] ^= 0xff // last byte of the last tx: body, not header
		corrupt[hash] = bad
	}
	onMsg := func(a *Actor, msg *wire.Message) {
		switch msg.Command {
		case wire.CmdGetHeaders:
			fork.serveHeaders(a, msg.Payload)
		case wire.CmdGetData:
			invs, err := wire.DecodeInv(msg.Payload)
			if err != nil {
				return
			}
			for _, iv := range invs {
				if body, ok := corrupt[iv.Hash]; ok && iv.Type == wire.InvTypeBlock {
					a.write(wire.CmdBlock, body)
				}
			}
		}
	}
	hello := wire.EncodeVersion(fork.tip, uint64(depth))
	return startServingActor(h, name, target, func(*Actor) {}, onMsg, hello)
}

// EquivocationBlocks mines two conflicting private forks of the given
// depth from genesis and returns their serialized blocks in push order
// (fork A ascending, then fork B ascending). The forks pay different
// principals, so their blocks are distinct even at the same heights.
func EquivocationBlocks(h *Harness, name string, depth int) [][]byte {
	h.T.Helper()
	var out [][]byte
	for f := 0; f < 2; f++ {
		c := chain.New(h.Params, h.Clk)
		w := wallet.New(c, testutil.NewEntropy(fmt.Sprintf("netsim/equivocator/%d/%s/%d", h.Seed, name, f)))
		payout, err := w.NewKey()
		if err != nil {
			h.T.Fatalf("equivocator payout key: %v", err)
		}
		m := miner.New(c, nil, h.Clk)
		for k := 0; k < depth; k++ {
			blk, _, err := m.Mine(payout)
			if err != nil {
				h.T.Fatalf("equivocator pre-mine fork %d block %d: %v", f, k, err)
			}
			out = append(out, blk.Bytes())
		}
	}
	return out
}
