package netsim

// Byzantine scenarios: five hostile actor classes attack a 3-node honest
// ring simultaneously. The harness asserts the adversarial-defense
// invariants end to end:
//
//  1. every adversary is banned by its victim within bounded virtual
//     time;
//  2. resource bounds (orphan pool, mempool, peer counts) are never
//     exceeded, sampled continuously while waiting;
//  3. wallet traffic keeps flowing mid-attack: a payment broadcast
//     during the flood relays to every mempool and confirms;
//  4. no honest node is banned as collateral damage;
//  5. banned actors keep redialing and are refused at accept, never
//     re-entering the peer set;
//  6. after the attack the honest ring converges to one best hash with
//     all system invariants intact (AssertConverged).
//
// Scenarios run across a fixed seed list; replay one failing seed with
// SIM_SEED=<n>.

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"typecoin/internal/p2p"
	"typecoin/internal/script"
	"typecoin/internal/telemetry"
	"typecoin/internal/wallet"
)

// byzantineSeeds returns the scenario seed list, or the single seed from
// SIM_SEED for replaying a failure.
func byzantineSeeds(t *testing.T) []int64 {
	t.Helper()
	if env := os.Getenv("SIM_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("SIM_SEED=%q: %v", env, err)
		}
		return []int64{seed}
	}
	return []int64{1, 7, 23, 42, 1337}
}

// byzantinePolicy tightens the defense policy to virtual-time scales so
// bans land within seconds of simulated time: the flooder's budget is a
// couple thousand frames, a stall is ten virtual seconds.
func byzantinePolicy() p2p.Policy {
	return p2p.Policy{
		BanThreshold:  100,
		BanDuration:   2 * time.Hour,
		ScoreHalfLife: 30 * time.Minute,
		MsgRate:       200,
		MsgBurst:      2000,
		ByteRate:      2 << 20,
		ByteBurst:     8 << 20,
		StallTimeout:  10 * time.Second,
		RequestMemory: time.Minute,
		OrphanExpiry:  time.Minute,
		MaxInbound:    8,
		MaxOutbound:   8,
	}
}

func byzantineBounds() Bounds {
	return Bounds{
		MaxOrphans:     16,
		MaxOrphanBytes: 1 << 20,
		MaxPoolTxs:     200,
		MaxPoolBytes:   1 << 20,
		MaxPeers:       16,
	}
}

// banBound is the virtual-time budget for banning every adversary,
// measured from attack launch. It dominates the withholder (whose
// penalties accrue one stall sweep per virtual second after the 10s
// stall timeout) plus the one-minute block schedule jump for the
// mid-attack confirmation.
const banBound = 30 * time.Minute

func runByzantineScenario(t *testing.T, seed int64) {
	cfg := LinkConfig{Latency: 2 * time.Millisecond, Jitter: time.Millisecond}
	h := NewHarness(t, seed, 3, cfg)
	h.SetDefense(byzantinePolicy(), byzantineBounds())
	h.Connect(0, 1)
	h.Connect(1, 2)
	h.Connect(2, 0)
	h.Settle(10)

	// Fund node 0's wallet past coinbase maturity.
	h.MineN(0, h.Params.CoinbaseMaturity+2)
	h.WaitConverged()

	attackStart := h.Clk.Now()

	// One actor of every class, victims spread across the ring. The
	// actor name is the host it attacks from — and the address its
	// victim bans.
	victims := map[string]int{
		"flooder":    0,
		"garbage":    1,
		"invspam":    2,
		"withhold":   0,
		"equivocate": 1,
	}
	actors := map[string]*Actor{
		"flooder":    StartFlooder(h, "flooder", victims["flooder"], 300),
		"garbage":    StartGarbageSender(h, "garbage", victims["garbage"], 2),
		"invspam":    StartInvSpammer(h, "invspam", victims["invspam"], 1500),
		"withhold":   StartWithholder(h, "withhold", victims["withhold"]),
		"equivocate": StartEquivocator(h, "equivocate", victims["equivocate"]),
	}
	h.Settle(5)

	// Wallet traffic must keep flowing mid-attack: broadcast a payment
	// from node 0 while all five attacks are running.
	dest, err := h.Wallets[1].NewKey()
	if err != nil {
		t.Fatalf("destination key: %v", err)
	}
	tx, err := h.Wallets[0].Build(
		[]wallet.Output{{Value: 2_000_000, PkScript: script.PayToPubKeyHash(dest)}},
		wallet.BuildOptions{})
	if err != nil {
		t.Fatalf("build payment: %v", err)
	}
	if err := h.Nodes[0].BroadcastTx(tx); err != nil {
		t.Fatalf("broadcast payment: %v", err)
	}
	txid := tx.TxHash()
	h.WaitFor("payment in every mempool during attack", func() bool {
		h.AssertBounds()
		for _, node := range h.Nodes {
			if !node.Pool().Have(txid) {
				return false
			}
		}
		return true
	})
	// Confirm it from the far side of the ring, still under attack.
	h.Mine(2)
	h.WaitFor("payment confirmed on every node during attack", func() bool {
		h.AssertBounds()
		for _, node := range h.Nodes {
			if _, onChain := node.Chain().TxByID(txid); !onChain {
				return false
			}
		}
		return true
	})

	// Every adversary is banned by its victim within bounded virtual
	// time, with resource bounds holding throughout.
	h.WaitFor("every adversary banned", func() bool {
		h.AssertBounds()
		for name, vi := range victims {
			if !h.Nodes[vi].IsBanned(name) {
				return false
			}
		}
		return true
	})
	if elapsed := h.Clk.Now().Sub(attackStart); elapsed > banBound {
		t.Fatalf("banning all adversaries took %v of virtual time, bound %v", elapsed, banBound)
	}

	// The same facts at the metric level: every victim's ban counter and
	// banned-address gauge moved, misbehavior points accumulated, and the
	// ban landed in the victim's event trace under the adversary's name.
	for name, vi := range victims {
		if got := h.Metric(vi, "p2p_bans_total"); got < 1 {
			t.Fatalf("node %d banned %s but p2p_bans_total = %v", vi, name, got)
		}
		if got := h.Metric(vi, "p2p_misbehavior_points_total"); got <= 0 {
			t.Fatalf("node %d: p2p_misbehavior_points_total = %v after attack", vi, got)
		}
		if got := h.Metric(vi, "p2p_banned_addrs"); got < 1 {
			t.Fatalf("node %d: p2p_banned_addrs = %v after banning %s", vi, got, name)
		}
		if events := h.Tracers[vi].Events(name, 0); len(events) == 0 {
			t.Fatalf("node %d has no trace events for banned adversary %s", vi, name)
		}
	}
	// Honest counters stay clean: no node's trace records a ban of an
	// honest ring member.
	for i := range h.Nodes {
		for j := range h.Nodes {
			for _, ev := range h.Tracers[i].Events(h.Host(j), 0) {
				if ev.Kind == telemetry.EvPeerBanned {
					t.Fatalf("node %d trace records a ban of honest node %d: %+v", i, j, ev)
				}
			}
		}
	}

	// Banned actors keep redialing; the accept path must refuse them.
	before := make(map[string]int64)
	for name, a := range actors {
		before[name] = a.Dials()
	}
	h.Settle(50)
	for name, a := range actors {
		if a.Dials() <= before[name] {
			t.Fatalf("banned actor %s stopped redialing; refusal path not exercised", name)
		}
	}
	// No actor is in any peer set: each node holds exactly its two
	// honest ring neighbors.
	for i, node := range h.Nodes {
		if got := node.PeerCount(); got != 2 {
			t.Fatalf("node %d has %d peers after bans, want 2 honest ring neighbors", i, got)
		}
	}
	// No honest node was banned as collateral damage.
	for i, node := range h.Nodes {
		for j := range h.Nodes {
			if i != j && node.IsBanned(h.Host(j)) {
				t.Fatalf("node %d banned honest node %d (score %d)", i, j, node.BanScore(h.Host(j)))
			}
		}
	}

	for _, a := range actors {
		a.Stop()
	}
	h.Settle(10)

	// The honest ring converges with all system invariants intact.
	h.MineN(1, 2)
	h.WaitConverged()
	h.AssertConverged()
	h.AssertBounds()
}

func TestByzantineScenarios(t *testing.T) {
	for _, seed := range byzantineSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runByzantineScenario(t, seed)
		})
	}
}

// runHeaderSkeletonScenario attacks the headers-first download manager
// itself: an actor serves a valid header skeleton heavier than the
// honest chain and then withholds (or corrupts) every body. The victim
// must adopt the skeleton, charge the only peer claiming that chain,
// ban it, leave the honest ring untouched, and converge once the honest
// chain outruns the dead fork.
func runHeaderSkeletonScenario(t *testing.T, seed int64, corrupt bool) {
	cfg := LinkConfig{Latency: 2 * time.Millisecond, Jitter: time.Millisecond}
	h := NewHarness(t, seed, 3, cfg)
	h.SetDefense(byzantinePolicy(), byzantineBounds())
	h.Connect(0, 1)
	h.Connect(1, 2)
	h.Connect(2, 0)
	h.Settle(10)

	const honestHeight = 8
	const forkDepth = 20 // heavier than the honest chain at attack time
	h.MineN(0, honestHeight)
	h.WaitConverged()

	attackStart := h.Clk.Now()
	victim := 0
	var a *Actor
	if corrupt {
		a = StartSkeletonCorrupter(h, "skelcorrupt", victim, forkDepth)
	} else {
		a = StartSkeletonWithholder(h, "skelwithhold", victim, forkDepth)
	}

	// The skeleton is valid and heavier, so the victim must adopt it —
	// headers-first cannot tell it apart from an honest better chain.
	h.WaitFor("victim adopts the hostile skeleton", func() bool {
		h.AssertBounds()
		return h.Nodes[victim].Chain().HeaderHeight() == forkDepth
	})

	// Bodies never materialize (or never validate), so the ban must land
	// within the virtual-time bound, with the connected chain unmoved.
	h.WaitFor("skeleton actor banned", func() bool {
		h.AssertBounds()
		return h.Nodes[victim].IsBanned(a.Name)
	})
	if elapsed := h.Clk.Now().Sub(attackStart); elapsed > banBound {
		t.Fatalf("banning the skeleton actor took %v of virtual time, bound %v", elapsed, banBound)
	}
	if got := h.Nodes[victim].Chain().BestHeight(); got != honestHeight {
		t.Fatalf("victim's connected chain moved to %d on a bodyless skeleton, want %d",
			got, honestHeight)
	}
	if corrupt {
		// Each tampered body is charged as an invalid block.
		if got := h.Metric(victim, "p2p_misbehavior_points_total"); got < 100 {
			t.Fatalf("p2p_misbehavior_points_total = %v after corrupt bodies, want >= 100", got)
		}
	} else {
		// The withheld bodies are charged through the stall sweep.
		if got := h.Metric(victim, "p2p_stalls_total"); got < 1 {
			t.Fatalf("p2p_stalls_total = %v after withheld bodies, want >= 1", got)
		}
	}
	// The fork's bodies were only ever scheduled on the actor: no honest
	// node is banned or even meaningfully scored as collateral.
	for i, node := range h.Nodes {
		for j := range h.Nodes {
			if i != j && node.IsBanned(h.Host(j)) {
				t.Fatalf("node %d banned honest node %d (score %d)", i, j, node.BanScore(h.Host(j)))
			}
		}
	}
	for j := range h.Nodes {
		if j != victim {
			if score := h.Nodes[victim].BanScore(h.Host(j)); score > 0 {
				t.Fatalf("victim charged honest node %d with %d points for the hostile skeleton",
					j, score)
			}
		}
	}

	a.Stop()
	h.Settle(10)

	// Once the honest chain outruns the dead fork, the victim's header
	// tip returns to the honest skeleton and everything converges.
	h.MineN(1, forkDepth-honestHeight+2)
	h.WaitConverged()
	h.AssertConverged()
	if hh, bh := h.Nodes[victim].Chain().HeaderHeight(), h.Nodes[victim].Chain().BestHeight(); hh != bh {
		t.Fatalf("victim header tip %d still off the connected chain %d after recovery", hh, bh)
	}
	h.AssertBounds()
}

func TestByzantineScenariosHeaderSkeleton(t *testing.T) {
	for _, seed := range byzantineSeeds(t) {
		t.Run(fmt.Sprintf("withhold/seed=%d", seed), func(t *testing.T) {
			runHeaderSkeletonScenario(t, seed, false)
		})
		t.Run(fmt.Sprintf("corrupt/seed=%d", seed), func(t *testing.T) {
			runHeaderSkeletonScenario(t, seed, true)
		})
	}
}
