package netsim

// Latency-budget scenarios: a 10-node gossip mesh under sustained
// wallet load, with every node recording commitment spans on the shared
// virtual clock. The harness merges the spans into cluster timelines
// and reduces them to a per-stage p50/p99 budget that must replay
// bit-identically from its seed (SIM_SEED=<n> replays one seed), and a
// Byzantine variant shows a hostile slow relay inflating exactly the
// cluster-sweep stages while the first-sight stages stay honest.

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"typecoin/internal/chainhash"
	"typecoin/internal/script"
	"typecoin/internal/telemetry"
	"typecoin/internal/wallet"
)

const (
	latencyNodes       = 10
	latencyRounds      = 3
	latencyTxsPerRound = 3
	latencyTxCount     = latencyRounds * latencyTxsPerRound

	// slowRelayLatency is the one-way delay the Byzantine variant puts
	// on the attacker's links. The honest mesh sweeps the ring in a few
	// hundred ms of virtual time (each relay hop costs ~3 of the 20ms
	// settle ticks), so a full second separates cleanly from that.
	slowRelayLatency = time.Second
)

// latencySeeds returns the scenario seed list, or the single seed from
// SIM_SEED for replaying a failure.
func latencySeeds(t *testing.T) []int64 {
	t.Helper()
	if env := os.Getenv("SIM_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("SIM_SEED=%q: %v", env, err)
		}
		return []int64{seed}
	}
	return []int64{42}
}

// runLatencyBudget drives the cluster under sustained load and returns
// the harness, the budget report and the submitted txids. Topology is a
// 10-node ring plus a 0-5 chord, so transactions submitted on node 0
// traverse multi-hop relay paths. With attack set, node 9's two ring
// links are degraded to slowRelayLatency — a Byzantine relay that lags
// everything through it without dropping anything.
func runLatencyBudget(t *testing.T, seed int64, attack bool) (*Harness, *BudgetReport, []chainhash.Hash) {
	t.Helper()
	cfg := LinkConfig{Latency: 2 * time.Millisecond}
	h := NewHarness(t, seed, latencyNodes, cfg)
	for i := 0; i < latencyNodes; i++ {
		h.Connect(i, (i+1)%latencyNodes)
	}
	h.Connect(0, 5)
	h.SettleIdle(10)

	// settle must cover the full relay cascade of a round: in the attack
	// variant one inv/getdata/body exchange across the slow links costs
	// 3 crossings of slowRelayLatency (45 virtual ticks), so the drain
	// window scales up with it.
	settle := 40
	if attack {
		slow := LinkConfig{Latency: slowRelayLatency}
		h.Net.SetLinkBoth(h.Host(9), h.Host(8), slow)
		h.Net.SetLinkBoth(h.Host(9), h.Host(0), slow)
		settle = 170
	}

	// Fund node 0's wallet past coinbase maturity.
	for b := 0; b < h.Params.CoinbaseMaturity+3; b++ {
		h.MineIdle(0, settle)
	}

	// Sustained load: each round submits a batch on node 0, lets it
	// sweep the cluster, and mines it on a rotating miner.
	var txids []chainhash.Hash
	for round := 0; round < latencyRounds; round++ {
		for k := 0; k < latencyTxsPerRound; k++ {
			dest, err := h.Wallets[1+(round*latencyTxsPerRound+k)%(latencyNodes-1)].NewKey()
			if err != nil {
				t.Fatalf("round %d destination key: %v", round, err)
			}
			tx, err := h.Wallets[0].Build(
				[]wallet.Output{{Value: 1_000_000, PkScript: script.PayToPubKeyHash(dest)}},
				wallet.BuildOptions{})
			if err != nil {
				t.Fatalf("round %d build tx %d: %v", round, k, err)
			}
			if err := h.Nodes[0].BroadcastTx(tx); err != nil {
				t.Fatalf("round %d broadcast tx %d: %v", round, k, err)
			}
			txids = append(txids, tx.TxHash())
		}
		h.SettleIdle(settle)
		for _, txid := range txids[len(txids)-latencyTxsPerRound:] {
			for i, node := range h.Nodes {
				if !node.Pool().Have(txid) {
					t.Fatalf("round %d: node %d never pooled tx %s", round, i, txid)
				}
			}
		}
		h.MineIdle((round*3)%latencyNodes, settle)
	}

	// Bury the last batch to the confirmation depth so every span closes
	// with the confirmed stage.
	for b := 0; b < telemetry.DefaultConfirmDepth; b++ {
		h.MineIdle((b+1)%latencyNodes, settle)
	}

	// The five system invariants hold before any latency claims are
	// made.
	h.AssertConverged()
	return h, h.LatencyBudget(), txids
}

func mustRow(t *testing.T, rep *BudgetReport, name string) BudgetRow {
	t.Helper()
	row, ok := rep.Row(name)
	if !ok {
		t.Fatalf("report has no row %q:\n%s", name, rep.Render())
	}
	return row
}

func TestLatencyBudget(t *testing.T) {
	for _, seed := range latencySeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			h, rep, txids := runLatencyBudget(t, seed, false)
			t.Logf("\n%s", rep.Render())

			if rep.TxSpans != latencyTxCount {
				t.Errorf("TxSpans = %d, want %d", rep.TxSpans, latencyTxCount)
			}
			minedBlocks := h.Params.CoinbaseMaturity + 3 + latencyRounds + telemetry.DefaultConfirmDepth
			if rep.BlockSpans != minedBlocks {
				t.Errorf("BlockSpans = %d, want %d", rep.BlockSpans, minedBlocks)
			}

			// Every transaction completes the full pipeline on the
			// cluster timeline.
			for _, name := range []string{
				"tx submit->accept", "tx accept->mined", "tx mined->connected",
				"tx connected->durable", "tx durable->indexed",
				"tx submit->indexed", "tx submit->confirmed", "tx indexed spread",
			} {
				if row := mustRow(t, rep, name); row.N != latencyTxCount {
					t.Errorf("row %q has n=%d, want %d", name, row.N, latencyTxCount)
				}
			}
			// Submission and acceptance happen in the same call on the
			// submitting node: zero-cost stage.
			if row := mustRow(t, rep, "tx submit->accept"); row.P50 != 0 || row.P99 != 0 {
				t.Errorf("submit->accept = %v/%v, want 0/0", row.P50, row.P99)
			}
			// Mining waits for the block schedule, so acceptance->mined
			// dominates the budget at minutes scale.
			if row := mustRow(t, rep, "tx accept->mined"); row.P50 < 30*time.Second {
				t.Errorf("accept->mined p50 = %v, want block-schedule scale", row.P50)
			}
			if row := mustRow(t, rep, "tx submit->confirmed"); row.P50 < 5*time.Minute {
				t.Errorf("submit->confirmed p50 = %v, want >= 5m at depth %d",
					row.P50, telemetry.DefaultConfirmDepth)
			}
			// A healthy mesh sweeps the index in propagation time.
			if row := mustRow(t, rep, "tx indexed spread"); row.P99 >= 600*time.Millisecond {
				t.Errorf("indexed spread p99 = %v on a healthy mesh", row.P99)
			}
			if row := mustRow(t, rep, "block first_seen->connected"); row.N != minedBlocks {
				t.Errorf("block row n=%d, want %d", row.N, minedBlocks)
			}

			// The wire-propagated context reached a node several hops
			// from the submitter: its span adopted node 0's origin
			// identity and a multi-hop count.
			snap, ok := h.Spans[3].Snapshot(txids[0])
			if !ok {
				t.Fatalf("node 3 has no span for tx %s", txids[0])
			}
			if len(snap.Hops) == 0 {
				t.Fatalf("node 3 span for %s has no relay hops", txids[0])
			}
			if snap.HopCount < 2 {
				t.Errorf("node 3 hop count = %d, want >= 2 (multi-hop relay)", snap.HopCount)
			}
			if snap.Origin != 1 {
				t.Errorf("node 3 span origin = %d, want 1 (node 0's identity)", snap.Origin)
			}

			// Replay determinism: the same seed renders a byte-identical
			// budget report. Skipped under the race detector, whose
			// slowdown can defeat the real-time quiescence heuristic
			// even with the widened race-mode calm window; the non-race
			// pass (make latency-report, go test ./...) asserts it.
			if raceEnabled {
				return
			}
			_, rep2, _ := runLatencyBudget(t, seed, false)
			if a, b := rep.Render(), rep2.Render(); a != b {
				t.Fatalf("replay of seed %d diverged:\n--- run 1:\n%s--- run 2:\n%s", seed, a, b)
			}
		})
	}
}

// TestLatencyBudgetByzantineSlowRelay shows the budget report localizing
// a Byzantine slow relay: the cluster-sweep rows (how long until every
// node holds the stage) inflate to the attacker's latency scale, while
// the first-sight rows the attacker cannot touch stay at honest cost.
func TestLatencyBudgetByzantineSlowRelay(t *testing.T) {
	for _, seed := range latencySeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, rep, _ := runLatencyBudget(t, seed, true)
			t.Logf("\n%s", rep.Render())

			// Inflated: the attacker lags every sweep.
			if row := mustRow(t, rep, "tx indexed spread"); row.P50 < slowRelayLatency {
				t.Errorf("indexed spread p50 = %v under slow relay, want >= %v",
					row.P50, slowRelayLatency)
			}
			if row := mustRow(t, rep, "block connected spread"); row.P50 < slowRelayLatency {
				t.Errorf("block connected spread p50 = %v under slow relay, want >= %v",
					row.P50, slowRelayLatency)
			}
			// Untouched: local submission and the miner-local connect
			// path cost what they cost on the honest mesh.
			if row := mustRow(t, rep, "tx submit->accept"); row.P50 != 0 || row.P99 != 0 {
				t.Errorf("submit->accept = %v/%v under slow relay, want 0/0", row.P50, row.P99)
			}
			if row := mustRow(t, rep, "block first_seen->connected"); row.P50 >= slowRelayLatency {
				t.Errorf("block first_seen->connected p50 = %v, should not inflate", row.P50)
			}
		})
	}
}
