//go:build !race

package netsim

import "time"

// Quiescence parameters for SettleIdle: a tick is settled once the
// network's message counters hold still for settleCalmPolls consecutive
// polls spaced settleCalmSleep apart, bounded by settleTickDeadline of
// real time. Without the race detector, handler turnaround is fast and
// a short calm window keeps idle-settled scenarios cheap.
const (
	settleCalmPolls    = 2
	settleCalmSleep    = time.Millisecond
	settleTickDeadline = 200 * time.Millisecond
)
