// Package netsim is a deterministic fault-injection network simulator for
// the p2p layer. It implements net.Conn and net.Listener over in-process
// message queues, so a p2p.Node can run unmodified on top of it, and
// injects the failure modes a commitment layer must survive: per-link
// latency and jitter, bandwidth shaping, message drop, duplication,
// reordering, byte-level corruption, one-way stalls, and scripted
// partitions and heals.
//
// Every probabilistic decision is drawn from a PRNG derived from the
// network seed, the connection id and the direction, and delivery timing
// runs on a virtual clock (clock.Simulated), so a failing run replays
// from its seed: the same seed and the same write sequence produce the
// same fault schedule, byte for byte (TestExactReplay).
//
// The simulator is message-oriented: each Write is one frame, and faults
// apply to whole frames. wire.WriteMessage emits one frame per p2p
// message, so "drop" loses a whole protocol message while keeping the
// stream parseable, "reorder" swaps protocol messages, and "corrupt"
// flips a byte inside one message (caught by the wire checksum, killing
// the connection — which is the point: the peer must recover by
// redialing).
package netsim

import (
	"bytes"
	"container/heap"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"typecoin/internal/clock"
)

// LinkConfig describes the behaviour of one direction of a link.
type LinkConfig struct {
	// Latency is the base one-way propagation delay.
	Latency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
	// BandwidthBps serializes frames at this many bytes per virtual
	// second; 0 means infinite bandwidth.
	BandwidthBps int64
	// DropRate is the probability a frame is silently discarded.
	DropRate float64
	// DupRate is the probability a frame is delivered twice.
	DupRate float64
	// CorruptRate is the probability one byte of a frame is flipped.
	CorruptRate float64
	// ReorderRate is the probability a frame is delayed by ReorderDelay,
	// letting frames sent after it overtake it.
	ReorderRate float64
	// ReorderDelay is the extra delay for reordered frames; 0 selects
	// 4*Latency + 1ms.
	ReorderDelay time.Duration
}

// Stats counts fault decisions across the network. Frames eaten by a
// partition count only as Blackholed; Dropped counts only PRNG drops.
type Stats struct {
	Sent       int64 // frames offered by writers
	Delivered  int64 // frames moved into a reader's buffer
	Dropped    int64
	Duplicated int64
	Corrupted  int64
	Reordered  int64
	Blackholed int64 // eaten by a partition
	Stalled    int64 // held by a one-way stall
}

type pairKey struct{ from, to string }

// Network is a simulated network of named hosts sharing one virtual
// clock and one seed.
type Network struct {
	clk  *clock.Simulated
	seed int64
	def  LinkConfig

	mu        sync.Mutex
	listeners map[string]*Listener
	links     map[pairKey]LinkConfig
	groups    map[string]int // partition group per host; absent = unrestricted
	stalls    map[pairKey]bool
	halves    []*halfConn
	nextConn  int64
	nextSeq   int64
	stats     Stats
}

// New creates a network over the virtual clock clk. def is the link
// configuration used for every direction without a SetLink override; the
// zero LinkConfig is a perfect, instantaneous network. The network
// subscribes to the clock, delivering in-flight frames as virtual time
// advances.
func New(clk *clock.Simulated, seed int64, def LinkConfig) *Network {
	n := &Network{
		clk:       clk,
		seed:      seed,
		def:       def,
		listeners: make(map[string]*Listener),
		links:     make(map[pairKey]LinkConfig),
		stalls:    make(map[pairKey]bool),
	}
	clk.Subscribe(n.onTick)
	return n
}

// Clock returns the network's virtual clock.
func (n *Network) Clock() *clock.Simulated { return n.clk }

// SetLink overrides the configuration for frames sent from -> to.
func (n *Network) SetLink(from, to string, cfg LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[pairKey{from, to}] = cfg
}

// SetLinkBoth overrides both directions between a and b.
func (n *Network) SetLinkBoth(a, b string, cfg LinkConfig) {
	n.SetLink(a, b, cfg)
	n.SetLink(b, a, cfg)
}

// SetPartition splits the network: hosts in different groups cannot
// exchange frames (in-flight and future frames are blackholed) and
// cannot dial each other. Hosts in no group are unrestricted. A new call
// replaces the previous partition.
func (n *Network) SetPartition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups = make(map[string]int)
	for i, g := range groups {
		for _, host := range g {
			n.groups[host] = i
		}
	}
}

// StallOneWay holds every frame sent from -> to until Unstall or Heal;
// held frames are then delivered (late), modeling a half-open link.
func (n *Network) StallOneWay(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stalls[pairKey{from, to}] = true
}

// Unstall releases a one-way stall, delivering the held frames.
func (n *Network) Unstall(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.releaseLocked(pairKey{from, to})
}

// Heal removes every partition and stall, releasing held frames.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups = nil
	for key := range n.stalls {
		n.releaseLocked(key)
	}
}

// releaseLocked ends the stall on key and re-queues frames held on the
// receiving halves of that direction.
func (n *Network) releaseLocked(key pairKey) {
	delete(n.stalls, key)
	now := n.clk.Now()
	for _, h := range n.halves {
		if h.local != key.to || h.remote != key.from || len(h.held) == 0 {
			continue
		}
		for _, fr := range h.held {
			if fr.arrival.Before(now) {
				fr.arrival = now
			}
			heap.Push(&h.pending, fr)
		}
		h.held = nil
		h.flushLocked(now)
	}
}

// Stats returns a snapshot of the fault counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

func (n *Network) blockedLocked(a, b string) bool {
	ga, aok := n.groups[a]
	gb, bok := n.groups[b]
	return aok && bok && ga != gb
}

func (n *Network) linkLocked(from, to string) LinkConfig {
	if cfg, ok := n.links[pairKey{from, to}]; ok {
		return cfg
	}
	return n.def
}

// onTick delivers every frame whose arrival time has passed.
func (n *Network) onTick(now time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, h := range n.halves {
		h.flushLocked(now)
	}
}

// rngFor derives a deterministic per-direction PRNG so the fault
// schedule of a connection depends only on (seed, connID, direction) and
// the sequence of frames written — not on cross-connection scheduling.
func (n *Network) rngFor(connID int64, dir byte, from, to string) *rand.Rand {
	var buf bytes.Buffer
	_ = binary.Write(&buf, binary.LittleEndian, n.seed)
	_ = binary.Write(&buf, binary.LittleEndian, connID)
	buf.WriteByte(dir)
	buf.WriteString(from)
	buf.WriteByte(0)
	buf.WriteString(to)
	sum := sha256.Sum256(buf.Bytes())
	return rand.New(rand.NewSource(int64(binary.LittleEndian.Uint64(sum[:8]))))
}

// Listen starts accepting connections for the named host. There is one
// listener per host name.
func (n *Network) Listen(host string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[host]; ok {
		return nil, fmt.Errorf("netsim: host %q already listening", host)
	}
	l := &Listener{
		net:  n,
		host: host,
		ch:   make(chan net.Conn, 64),
		quit: make(chan struct{}),
	}
	n.listeners[host] = l
	return l, nil
}

// Dial connects host from to the listener at host to, applying the
// current link configuration in each direction. Dialing fails when no
// listener exists or a partition separates the hosts.
func (n *Network) Dial(from, to string) (net.Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.listeners[to]
	if !ok || l.closed {
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: Addr(to),
			Err: fmt.Errorf("connection refused")}
	}
	if n.blockedLocked(from, to) {
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: Addr(to),
			Err: fmt.Errorf("host unreachable (partitioned)")}
	}
	connID := n.nextConn
	n.nextConn++
	a := &halfConn{net: n, local: from, remote: to,
		rng: n.rngFor(connID, 0, from, to)}
	b := &halfConn{net: n, local: to, remote: from,
		rng: n.rngFor(connID, 1, to, from)}
	a.peer, b.peer = b, a
	a.readCond = sync.NewCond(&n.mu)
	b.readCond = sync.NewCond(&n.mu)
	select {
	case l.ch <- &Conn{h: b}:
	default:
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: Addr(to),
			Err: fmt.Errorf("accept backlog full")}
	}
	n.halves = append(n.halves, a, b)
	return &Conn{h: a}, nil
}

// Addr is a host name on the simulated network.
type Addr string

// Network returns the simulated network name.
func (Addr) Network() string { return "sim" }

// String returns the host name.
func (a Addr) String() string { return string(a) }

// Listener accepts simulated connections for one host.
type Listener struct {
	net    *Network
	host   string
	ch     chan net.Conn
	quit   chan struct{}
	closed bool
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.quit:
		return nil, net.ErrClosed
	}
}

// Close stops the listener; pending Accept calls return net.ErrClosed.
func (l *Listener) Close() error {
	l.net.mu.Lock()
	defer l.net.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.quit)
		delete(l.net.listeners, l.host)
	}
	return nil
}

// Addr returns the listening host's address.
func (l *Listener) Addr() net.Addr { return Addr(l.host) }

// frame is one Write's worth of bytes in flight.
type frame struct {
	data    []byte
	arrival time.Time
	seq     int64
}

// frameHeap orders frames by (arrival, seq).
type frameHeap []frame

func (h frameHeap) Len() int { return len(h) }
func (h frameHeap) Less(i, j int) bool {
	if !h[i].arrival.Equal(h[j].arrival) {
		return h[i].arrival.Before(h[j].arrival)
	}
	return h[i].seq < h[j].seq
}
func (h frameHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *frameHeap) Push(x interface{}) { *h = append(*h, x.(frame)) }
func (h *frameHeap) Pop() interface{} {
	old := *h
	n := len(old)
	fr := old[n-1]
	*h = old[:n-1]
	return fr
}

// halfConn is one endpoint of a connection. Its rng governs the frames
// it SENDS (the link config is read live from the network's link
// table); its pending/held/readBuf hold the frames it RECEIVES. All
// mutable state is guarded by the network mutex.
type halfConn struct {
	net           *Network
	local, remote string
	rng           *rand.Rand
	lastDepart    time.Time

	peer         *halfConn
	pending      frameHeap
	held         []frame
	readBuf      bytes.Buffer
	readCond     *sync.Cond
	closed       bool // this end closed
	remoteClosed bool // peer end closed
}

// flushLocked moves due frames into the read buffer and wakes readers.
func (h *halfConn) flushLocked(now time.Time) {
	moved := false
	for len(h.pending) > 0 && !h.pending[0].arrival.After(now) {
		fr := heap.Pop(&h.pending).(frame)
		h.readBuf.Write(fr.data)
		h.net.stats.Delivered++
		moved = true
	}
	if moved {
		h.readCond.Broadcast()
	}
}

// Conn is a simulated net.Conn.
type Conn struct{ h *halfConn }

var _ net.Conn = (*Conn)(nil)

// Read returns buffered delivered bytes, blocking until a frame arrives
// (virtual time advances past its arrival), the remote closes (io.EOF),
// or this end closes.
func (c *Conn) Read(b []byte) (int, error) {
	h := c.h
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	for {
		if h.readBuf.Len() > 0 {
			return h.readBuf.Read(b)
		}
		if h.closed {
			return 0, io.ErrClosedPipe
		}
		if h.remoteClosed {
			return 0, io.EOF
		}
		h.readCond.Wait()
	}
}

// Write sends b as one frame through the fault pipeline. The PRNG draw
// sequence is fixed per frame regardless of which faults apply, so a
// fault schedule replays exactly from the seed.
func (c *Conn) Write(b []byte) (int, error) {
	h := c.h
	n := h.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if h.closed || h.remoteClosed {
		return 0, io.ErrClosedPipe
	}
	if len(b) == 0 {
		return 0, nil
	}
	n.stats.Sent++
	dropDraw := h.rng.Float64()
	dupDraw := h.rng.Float64()
	corruptDraw := h.rng.Float64()
	corruptPos := h.rng.Intn(1 << 20)
	jitterDraw := h.rng.Float64()
	reorderDraw := h.rng.Float64()

	if n.blockedLocked(h.local, h.remote) {
		n.stats.Blackholed++
		return len(b), nil
	}
	// Consult the live link table so SetLink mid-connection takes effect
	// on the next frame.
	cfg := n.linkLocked(h.local, h.remote)
	if dropDraw < cfg.DropRate {
		n.stats.Dropped++
		return len(b), nil
	}
	data := append([]byte(nil), b...)
	if corruptDraw < cfg.CorruptRate {
		data[corruptPos%len(data)] ^= 0xff
		n.stats.Corrupted++
	}

	now := n.clk.Now()
	depart := now
	if depart.Before(h.lastDepart) {
		depart = h.lastDepart
	}
	if cfg.BandwidthBps > 0 {
		depart = depart.Add(time.Duration(float64(len(data)) /
			float64(cfg.BandwidthBps) * float64(time.Second)))
	}
	h.lastDepart = depart
	delay := cfg.Latency
	if cfg.Jitter > 0 {
		delay += time.Duration(jitterDraw * float64(cfg.Jitter))
	}
	if reorderDraw < cfg.ReorderRate {
		rd := cfg.ReorderDelay
		if rd == 0 {
			rd = 4*cfg.Latency + time.Millisecond
		}
		delay += rd
		n.stats.Reordered++
	}
	h.sendFrameLocked(frame{data: data, arrival: depart.Add(delay)})
	if dupDraw < cfg.DupRate {
		dup := frame{
			data:    append([]byte(nil), data...),
			arrival: depart.Add(delay + cfg.Latency/2 + time.Millisecond),
		}
		h.sendFrameLocked(dup)
		n.stats.Duplicated++
	}
	h.peer.flushLocked(now)
	return len(b), nil
}

// sendFrameLocked queues a frame on the peer's receive side, honouring
// one-way stalls.
func (h *halfConn) sendFrameLocked(fr frame) {
	fr.seq = h.net.nextSeq
	h.net.nextSeq++
	if h.net.stalls[pairKey{h.local, h.remote}] {
		h.peer.held = append(h.peer.held, fr)
		h.net.stats.Stalled++
		return
	}
	heap.Push(&h.peer.pending, fr)
}

// Close closes this end. The remote may still read frames already
// delivered to its buffer, then sees io.EOF; in-flight frames are lost.
func (c *Conn) Close() error {
	h := c.h
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	h.peer.remoteClosed = true
	// In-flight and stalled frames in both directions are lost; only
	// bytes already delivered to the peer's buffer remain readable.
	h.pending, h.peer.pending = nil, nil
	h.held, h.peer.held = nil, nil
	h.readCond.Broadcast()
	h.peer.readCond.Broadcast()
	return nil
}

// LocalAddr returns the local host name.
func (c *Conn) LocalAddr() net.Addr { return Addr(c.h.local) }

// RemoteAddr returns the remote host name.
func (c *Conn) RemoteAddr() net.Addr { return Addr(c.h.remote) }

// SetDeadline is a no-op: simulated time is driven by the virtual clock.
func (c *Conn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline is a no-op.
func (c *Conn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline is a no-op.
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }

// Transport binds a Network to one host, yielding the Listen/Dial pair
// the p2p layer plugs in under a Node.
type Transport struct {
	n    *Network
	host string
}

// Transport returns the transport for host.
func (n *Network) Transport(host string) *Transport {
	return &Transport{n: n, host: host}
}

// Listen listens as the transport's host; addr other than "" or the host
// name is rejected so misconfigurations surface early.
func (t *Transport) Listen(addr string) (net.Listener, error) {
	if addr == "" {
		addr = t.host
	}
	if addr != t.host {
		return nil, fmt.Errorf("netsim: transport for %q cannot listen on %q", t.host, addr)
	}
	return t.n.Listen(addr)
}

// Dial dials from the transport's host.
func (t *Transport) Dial(addr string) (net.Conn, error) {
	return t.n.Dial(t.host, addr)
}
