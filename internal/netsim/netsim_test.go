package netsim

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"typecoin/internal/clock"
	"typecoin/internal/wire"
)

// pair dials from -> to and returns both ends.
func pair(t *testing.T, n *Network, from, to string) (net.Conn, net.Conn) {
	t.Helper()
	l, err := n.Listen(to)
	if err != nil {
		t.Fatalf("Listen(%s): %v", to, err)
	}
	c, err := n.Dial(from, to)
	if err != nil {
		t.Fatalf("Dial(%s->%s): %v", from, to, err)
	}
	s, err := l.Accept()
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	return c, s
}

// readN reads exactly n already-delivered bytes without blocking forever.
func readN(t *testing.T, c net.Conn, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("ReadFull(%d): %v", n, err)
	}
	return buf
}

func TestInstantDeliveryOnPerfectLink(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk, 1, LinkConfig{})
	a, b := pair(t, n, "a", "b")
	if _, err := a.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got := readN(t, b, 5); string(got) != "hello" {
		t.Fatalf("read %q, want hello", got)
	}
	// And the other direction.
	if _, err := b.Write([]byte("world")); err != nil {
		t.Fatalf("Write back: %v", err)
	}
	if got := readN(t, a, 5); string(got) != "world" {
		t.Fatalf("read back %q, want world", got)
	}
}

func TestLatencyGatesDelivery(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk, 1, LinkConfig{Latency: 50 * time.Millisecond})
	a, b := pair(t, n, "a", "b")
	if _, err := a.Write([]byte("late")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if st := n.Stats(); st.Delivered != 0 {
		t.Fatalf("delivered before latency elapsed: %+v", st)
	}
	clk.Advance(49 * time.Millisecond)
	if st := n.Stats(); st.Delivered != 0 {
		t.Fatalf("delivered at 49ms: %+v", st)
	}
	clk.Advance(2 * time.Millisecond)
	if st := n.Stats(); st.Delivered != 1 {
		t.Fatalf("not delivered at 51ms: %+v", st)
	}
	if got := readN(t, b, 4); string(got) != "late" {
		t.Fatalf("read %q, want late", got)
	}
}

func TestBandwidthSerializesFrames(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk, 1, LinkConfig{BandwidthBps: 1000})
	a, _ := pair(t, n, "a", "b")
	// Two 500-byte frames at 1000 B/s: departures at +0.5s and +1.0s.
	frame := make([]byte, 500)
	a.Write(frame)
	a.Write(frame)
	clk.Advance(400 * time.Millisecond)
	if st := n.Stats(); st.Delivered != 0 {
		t.Fatalf("delivered before serialization delay: %+v", st)
	}
	clk.Advance(200 * time.Millisecond) // 0.6s
	if st := n.Stats(); st.Delivered != 1 {
		t.Fatalf("first frame not alone at 0.6s: %+v", st)
	}
	clk.Advance(500 * time.Millisecond) // 1.1s
	if st := n.Stats(); st.Delivered != 2 {
		t.Fatalf("second frame missing at 1.1s: %+v", st)
	}
}

func TestDuplicationDeliversTwice(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk, 1, LinkConfig{DupRate: 1})
	a, b := pair(t, n, "a", "b")
	a.Write([]byte("dup!"))
	clk.Advance(time.Second)
	st := n.Stats()
	if st.Duplicated != 1 || st.Delivered != 2 {
		t.Fatalf("stats = %+v, want 1 duplicated / 2 delivered", st)
	}
	if got := readN(t, b, 8); string(got) != "dup!dup!" {
		t.Fatalf("read %q, want dup!dup!", got)
	}
}

func TestDropLosesWholeFrames(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk, 7, LinkConfig{DropRate: 0.5})
	a, _ := pair(t, n, "a", "b")
	for i := 0; i < 100; i++ {
		a.Write([]byte{byte(i)})
	}
	clk.Advance(time.Second)
	st := n.Stats()
	if st.Dropped == 0 || st.Delivered == 0 {
		t.Fatalf("expected both drops and deliveries: %+v", st)
	}
	if st.Dropped+st.Delivered != 100 {
		t.Fatalf("dropped+delivered = %d, want 100 (%+v)", st.Dropped+st.Delivered, st)
	}
}

func TestReorderSwapsWireMessages(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk, 3, LinkConfig{
		Latency:      time.Millisecond,
		ReorderRate:  0.5,
		ReorderDelay: 10 * time.Millisecond,
	})
	a, b := pair(t, n, "a", "b")
	const count = 30
	for i := 0; i < count; i++ {
		msg := &wire.Message{Command: wire.CmdPing, Payload: []byte{byte(i)}}
		if err := wire.WriteMessage(a, wire.RegTestMagic, msg); err != nil {
			t.Fatalf("WriteMessage(%d): %v", i, err)
		}
	}
	clk.Advance(time.Second)
	a.Close()
	var order []int
	seen := make(map[int]bool)
	for {
		msg, err := wire.ReadMessage(b, wire.RegTestMagic)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadMessage: %v", err)
		}
		order = append(order, int(msg.Payload[0]))
		seen[int(msg.Payload[0])] = true
	}
	if len(order) != count || len(seen) != count {
		t.Fatalf("got %d messages (%d distinct), want %d", len(order), len(seen), count)
	}
	inOrder := true
	for i := 1; i < count; i++ {
		if order[i] < order[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatalf("no reordering observed with seed 3: %v (stats %+v)", order, n.Stats())
	}
	if st := n.Stats(); st.Reordered == 0 {
		t.Fatalf("Reordered counter is zero: %+v", st)
	}
}

func TestCorruptionCannotPassUnnoticed(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk, 5, LinkConfig{CorruptRate: 1})
	a, b := pair(t, n, "a", "b")
	orig := &wire.Message{Command: wire.CmdPing, Payload: []byte("nonce123")}
	if err := wire.WriteMessage(a, wire.RegTestMagic, orig); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	clk.Advance(time.Second)
	a.Close() // a corrupted length field must hit EOF, not block
	msg, err := wire.ReadMessage(b, wire.RegTestMagic)
	if err == nil && msg.Command == orig.Command && bytes.Equal(msg.Payload, orig.Payload) {
		t.Fatalf("corrupted frame read back unchanged (stats %+v)", n.Stats())
	}
	if st := n.Stats(); st.Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", st.Corrupted)
	}
}

func TestPartitionBlackholesThenHeals(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk, 1, LinkConfig{})
	a, b := pair(t, n, "a", "b")
	n.SetPartition([]string{"a"}, []string{"b"})

	if _, err := a.Write([]byte("void")); err != nil {
		t.Fatalf("Write into partition should succeed silently: %v", err)
	}
	clk.Advance(time.Second)
	st := n.Stats()
	if st.Blackholed != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v, want 1 blackholed / 0 delivered", st)
	}
	if _, err := n.Dial("a", "b"); err == nil {
		t.Fatal("Dial across partition should fail")
	}

	n.Heal()
	if _, err := a.Write([]byte("back")); err != nil {
		t.Fatalf("Write after heal: %v", err)
	}
	if got := readN(t, b, 4); string(got) != "back" {
		t.Fatalf("read %q after heal, want back", got)
	}
	// The blackholed frame is gone for good.
	if st := n.Stats(); st.Delivered != 1 {
		t.Fatalf("blackholed frame resurrected: %+v", st)
	}
}

func TestStallOneWayHoldsUntilRelease(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk, 1, LinkConfig{})
	a, b := pair(t, n, "a", "b")
	n.StallOneWay("a", "b")

	a.Write([]byte("held"))
	clk.Advance(time.Second)
	st := n.Stats()
	if st.Stalled != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v, want 1 stalled / 0 delivered", st)
	}
	// The reverse direction is unaffected.
	b.Write([]byte("flow"))
	if got := readN(t, a, 4); string(got) != "flow" {
		t.Fatalf("reverse read %q, want flow", got)
	}

	n.Unstall("a", "b")
	if got := readN(t, b, 4); string(got) != "held" {
		t.Fatalf("read %q after unstall, want held", got)
	}
}

func TestDialRefusedWithoutListener(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk, 1, LinkConfig{})
	if _, err := n.Dial("a", "nobody"); err == nil {
		t.Fatal("Dial to missing listener should fail")
	}
	l, err := n.Listen("b")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	l.Close()
	if _, err := n.Dial("a", "b"); err == nil {
		t.Fatal("Dial to closed listener should fail")
	}
	if _, err := l.Accept(); err != net.ErrClosed {
		t.Fatalf("Accept on closed listener = %v, want net.ErrClosed", err)
	}
	// The host name is free again.
	if _, err := n.Listen("b"); err != nil {
		t.Fatalf("re-Listen after close: %v", err)
	}
}

func TestCloseLosesInFlightDeliversBuffered(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk, 1, LinkConfig{Latency: 10 * time.Millisecond})
	a, b := pair(t, n, "a", "b")
	a.Write([]byte("kept"))
	clk.Advance(20 * time.Millisecond) // delivered to b's buffer
	a.Write([]byte("lost"))            // still in flight at close
	a.Close()
	if got := readN(t, b, 4); string(got) != "kept" {
		t.Fatalf("read %q, want kept", got)
	}
	clk.Advance(time.Second)
	if _, err := b.Read(make([]byte, 4)); err != io.EOF {
		t.Fatalf("read after peer close = %v, want EOF", err)
	}
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("Write on closed conn should fail")
	}
}

func TestScriptedHealViaAfterFunc(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk, 1, LinkConfig{})
	a, b := pair(t, n, "a", "b")
	n.SetPartition([]string{"a"}, []string{"b"})
	clk.AfterFunc(5*time.Second, n.Heal)

	a.Write([]byte("gone"))
	clk.Advance(4 * time.Second)
	if st := n.Stats(); st.Blackholed != 1 {
		t.Fatalf("stats before heal: %+v", st)
	}
	clk.Advance(2 * time.Second) // heal fires at +5s
	a.Write([]byte("live"))
	if got := readN(t, b, 4); string(got) != "live" {
		t.Fatalf("read %q after scripted heal, want live", got)
	}
}

// replayRun pushes a fixed write schedule through a lossy link and
// returns the delivered byte stream and the fault counters.
func replayRun(seed int64) ([]byte, Stats) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk, seed, LinkConfig{
		Latency:     5 * time.Millisecond,
		Jitter:      3 * time.Millisecond,
		DropRate:    0.2,
		DupRate:     0.15,
		CorruptRate: 0.1,
		ReorderRate: 0.3,
	})
	l, _ := n.Listen("b")
	a, _ := n.Dial("a", "b")
	b, _ := l.Accept()
	for i := 0; i < 200; i++ {
		frame := []byte(fmt.Sprintf("frame-%03d", i))
		a.Write(frame)
	}
	clk.Advance(time.Minute)
	a.Close()
	data, _ := io.ReadAll(b)
	return data, n.Stats()
}

func TestExactReplayFromSeed(t *testing.T) {
	d1, s1 := replayRun(42)
	d2, s2 := replayRun(42)
	if !bytes.Equal(d1, d2) {
		t.Fatal("same seed produced different delivered streams")
	}
	if s1 != s2 {
		t.Fatalf("same seed produced different stats: %+v vs %+v", s1, s2)
	}
	if s1.Dropped == 0 || s1.Duplicated == 0 || s1.Corrupted == 0 || s1.Reordered == 0 {
		t.Fatalf("lossy run exercised no faults: %+v", s1)
	}
	d3, s3 := replayRun(43)
	if bytes.Equal(d1, d3) && s1 == s3 {
		t.Fatal("different seeds produced identical runs")
	}
}
