package netsim

// Telemetry integration over the simulator: counters must move with the
// work actually performed and never run backwards across a full
// mine -> relay -> reorg lifecycle, and the block tracer must record the
// lifecycle transitions.

import (
	"strings"
	"testing"
	"time"

	"typecoin/internal/telemetry"
)

// counterSnapshot reads every *_total series on node i.
func counterSnapshot(h *Harness, i int) map[string]float64 {
	m := make(map[string]float64)
	for _, name := range h.Regs[i].Names() {
		if strings.HasSuffix(name, "_total") {
			m[name] = h.Metric(i, name)
		}
	}
	return m
}

// assertMonotone fails if any counter decreased between two snapshots.
func assertMonotone(t *testing.T, phase string, before, after map[string]float64) {
	t.Helper()
	for name, b := range before {
		if a, ok := after[name]; ok && a < b {
			t.Errorf("%s: counter %s went backwards: %v -> %v", phase, name, b, a)
		}
	}
}

func TestTelemetryCountersAcrossMineRelayReorg(t *testing.T) {
	cfg := LinkConfig{Latency: 2 * time.Millisecond, Jitter: time.Millisecond}
	h := NewHarness(t, 11, 2, cfg)
	h.Connect(0, 1)
	h.Settle(10)
	base := []map[string]float64{counterSnapshot(h, 0), counterSnapshot(h, 1)}

	// Mine on node 0; blocks relay to node 1.
	h.MineN(0, 3)
	h.WaitConverged()
	if got := h.Metric(0, "miner_blocks_found_total"); got != 3 {
		t.Errorf("node 0 miner_blocks_found_total = %v, want 3", got)
	}
	if got := h.Metric(1, "chain_connects_total"); got < 3 {
		t.Errorf("node 1 chain_connects_total = %v after relay of 3 blocks", got)
	}
	if got := h.Metric(1, "p2p_recv_messages_total"); got <= 0 {
		t.Errorf("node 1 p2p_recv_messages_total = %v after relay", got)
	}
	if got := h.Metric(0, "p2p_sent_messages_total"); got <= 0 {
		t.Errorf("node 0 p2p_sent_messages_total = %v after relay", got)
	}
	// The relayed tip shows up in node 1's trace as seen then connected.
	tip := h.Nodes[1].Chain().BestHash().String()
	kinds := make(map[string]bool)
	for _, ev := range h.Tracers[1].Events(tip, 0) {
		kinds[ev.Kind] = true
	}
	if !kinds[telemetry.EvBlockSeen] || !kinds[telemetry.EvBlockConnected] {
		t.Errorf("node 1 trace for tip %s lacks seen+connected: %v", tip, kinds)
	}
	mid := []map[string]float64{counterSnapshot(h, 0), counterSnapshot(h, 1)}
	for i := range mid {
		assertMonotone(t, "after relay", base[i], mid[i])
	}

	// Fork the nodes: node 1 mines the longer branch, so after the heal
	// node 0 must reorganize off its own block.
	h.Partition([]int{0}, []int{1})
	h.Mine(0)
	h.MineN(1, 2)
	h.Heal()
	h.WaitConverged()
	if got := h.Metric(0, "chain_reorgs_total"); got < 1 {
		t.Errorf("node 0 chain_reorgs_total = %v after reorg", got)
	}
	if got := h.Metric(0, "chain_disconnects_total"); got < 1 {
		t.Errorf("node 0 chain_disconnects_total = %v after reorg", got)
	}
	reorged := false
	for _, ev := range h.Tracers[0].Events("", 0) {
		if ev.Kind == telemetry.EvReorg {
			reorged = true
		}
	}
	if !reorged {
		t.Errorf("node 0 trace has no %s event after reorg", telemetry.EvReorg)
	}
	final := []map[string]float64{counterSnapshot(h, 0), counterSnapshot(h, 1)}
	for i := range final {
		assertMonotone(t, "after reorg", mid[i], final[i])
	}
	h.AssertConverged()
}
