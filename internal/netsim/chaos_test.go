package netsim

// Chaos scenario: disk faults combined with network partitions. One
// node's store starts returning sticky write EIOs mid-partition; the
// node must flip to degraded-readonly (observable through the same
// store_health gauge an operator scrapes), keep serving chain, header
// and index queries, refuse new mempool obligations, and ban nobody —
// a dying local disk is not a peer's fault in either direction. When
// the disk recovers and the partition heals, the node must rejoin and
// the whole network must reconverge with every system invariant intact.
//
// Scenarios run across a fixed seed list; replay one failing seed with
// FAULT_SEED=<n> (the seed drives both the simulated network and the
// fault engine RNG).

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"typecoin/internal/chainhash"
	"typecoin/internal/mempool"
	"typecoin/internal/store"
	"typecoin/internal/wire"
)

// chaosSeeds returns the scenario seed list, or the single seed from
// FAULT_SEED for replaying a failure.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	if env := os.Getenv("FAULT_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("FAULT_SEED=%q: %v", env, err)
		}
		return []int64{seed}
	}
	return []int64{1, 7, 23, 42, 1337}
}

// chaosStack is one node's persistence stack in a chaos run: a fault
// engine over an in-memory store, under the Retry health wrapper —
// the same shape a production node runs (minus the engine).
type chaosStack struct {
	engine *store.FaultEngine
	retry  *store.Retry
}

func newChaosStack(seed int64) *chaosStack {
	eng := store.NewFaultEngine(store.NewMem(), seed)
	// Tight real-time budgets: the scenario wants the state machine's
	// transitions, not its production pacing.
	ret := store.NewRetry(eng, store.RetryConfig{
		Attempts:   3,
		Backoff:    50 * time.Microsecond,
		BackoffMax: time.Millisecond,
	})
	return &chaosStack{engine: eng, retry: ret}
}

func TestChaosStoreFaults(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosStoreFaults(t, seed)
		})
	}
}

func runChaosStoreFaults(t *testing.T, seed int64) {
	const n = 4
	stacks := make([]*chaosStack, n)
	for i := range stacks {
		stacks[i] = newChaosStack(seed + int64(i))
	}
	cfg := LinkConfig{Latency: 2 * time.Millisecond, Jitter: time.Millisecond}
	h := NewHarnessWithStores(t, seed, n, cfg, func(i int) store.Store {
		return stacks[i].retry
	})
	// Mirror the daemon's fault telemetry: every fired injection counts
	// into store_faults_total{op,kind} on the node's own registry.
	for i, s := range stacks {
		faults := h.Regs[i].CounterVec("store_faults_total",
			"Storage faults observed, by operation and kind.", "op", "kind")
		s.engine.SetOnFault(func(op store.FaultOp, kind store.FaultKind) {
			faults.With(op.String(), kind.String()).Inc()
		})
		ret := s.retry
		h.Regs[i].CounterFunc("store_retries_total",
			"Write attempts beyond each first try.",
			func() float64 { return float64(ret.Retries()) })
	}

	// Ring topology, so the partition below still leaves every node a
	// path within its side.
	for i := 0; i < n; i++ {
		h.Connect(i, (i+1)%n)
	}
	h.MineN(0, 3)
	h.WaitConverged()
	preHeight := h.Nodes[0].Chain().BestHeight()

	// The disk turns hostile: sticky write EIOs on the victim. The
	// flush rule keeps the recovery probe failing too, so the node
	// stays degraded until the "device" is repaired with Clear.
	const victim = 1
	stacks[victim].engine.Inject(
		store.FaultRule{Op: store.OpApply, Kind: store.KindEIO, Mode: store.ModeSticky},
		store.FaultRule{Op: store.OpAppendBlock, Kind: store.KindEIO, Mode: store.ModeSticky},
		store.FaultRule{Op: store.OpFlush, Kind: store.KindEIO, Mode: store.ModeSticky},
	)

	// Partition the ring and mine on both sides while the victim's
	// disk is failing: the victim (on the short side) receives blocks
	// it cannot persist, the far side builds the chain everyone must
	// land on after heal.
	h.Partition([]int{0, victim}, []int{2, 3})
	h.MineN(0, 1)
	h.MineN(2, 3)

	h.WaitFor("victim degraded-readonly", func() bool {
		return h.Metric(victim, "store_health") == float64(store.HealthDegraded)
	})

	// Degraded is read-only, not dead. The node still answers chain,
	// header and index queries...
	if got := h.Nodes[victim].Chain().BestHeight(); got < preHeight {
		t.Fatalf("degraded node lost chain state: height %d, had %d", got, preHeight)
	}
	locator := []chainhash.Hash{h.Params.GenesisBlock.BlockHash()}
	if hdrs := h.Nodes[victim].Chain().HeadersAfter(locator, 32); len(hdrs) == 0 {
		t.Fatalf("degraded node stopped serving headers")
	}
	if _, _, err := h.Indexes[victim].Tip(); err != nil {
		t.Fatalf("degraded node index tip: %v", err)
	}
	// ...while refusing new write obligations.
	if _, err := h.Nodes[victim].Pool().Accept(wire.NewMsgTx(1)); !errors.Is(err, mempool.ErrDegraded) {
		t.Fatalf("degraded mempool accepted work: err=%v, want ErrDegraded", err)
	}
	if got := h.Metric(victim, "store_faults_total"); got == 0 {
		t.Fatalf("store_faults_total = 0 on the faulted node")
	}
	// A local disk failure must not score peers in either direction:
	// the victim keeps its neighbors, the neighbors keep the victim.
	for _, peer := range []int{0, 2} {
		if h.Nodes[victim].IsBanned(h.Host(peer)) {
			t.Fatalf("degraded node banned honest peer %d", peer)
		}
		if h.Nodes[peer].IsBanned(h.Host(victim)) {
			t.Fatalf("node %d banned the degraded node", peer)
		}
	}

	// Repair the device and heal the network: the probe must notice,
	// the resync must land writes (closing the loop back to healthy),
	// and the whole network must converge on the far side's chain.
	stacks[victim].engine.Clear()
	h.Heal()
	h.WaitFor("victim healthy again", func() bool {
		return h.Metric(victim, "store_health") == float64(store.HealthHealthy)
	})
	h.WaitConverged()
	h.AssertConverged()

	if h.Metric(victim, "store_retries_total") == 0 {
		t.Fatalf("victim reported no write retries despite sticky EIOs")
	}
	final := h.Nodes[victim].Chain().BestHeight()
	if final <= preHeight {
		t.Fatalf("victim never caught up: height %d, pre-fault %d", final, preHeight)
	}
}
