package bench

import (
	"fmt"

	"typecoin/internal/client"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
	"typecoin/internal/proof"
	"typecoin/internal/script"
	"typecoin/internal/typecoin"
	"typecoin/internal/wallet"
	"typecoin/internal/wire"
)

// Experiment E4 (Section 5): "Alice can revoke the offer at any time
// (with about fifteen minutes average latency), simply by spending I."
//
// We publish a revocable offer conditioned on ~spent(R), then broadcast
// the revocation (a plain spend of R) and measure how many blocks pass
// before a discharge of the offer is rejected: the revocation takes
// effect once its spend is on chain, i.e. after the block in flight plus
// the mining wait — on Bitcoin, roughly 1.5 block intervals (fifteen
// minutes).

// E4Row is one row of the E4 table.
type E4Row struct {
	Trial             int
	DischargeBeforeOK bool // discharge accepted before revocation
	BlocksToRevoke    int  // blocks between revocation broadcast and enforcement
	DischargeAfterOK  bool // discharge accepted after revocation (must be false)
}

// String formats the row.
func (r E4Row) String() string {
	return fmt.Sprintf("trial=%d before_ok=%v blocks_to_revoke=%d after_ok=%v",
		r.Trial, r.DischargeBeforeOK, r.BlocksToRevoke, r.DischargeAfterOK)
}

// RunE4 runs the revocation experiment `trials` times.
func RunE4(trials int) ([]E4Row, error) {
	var rows []E4Row
	for trial := 0; trial < trials; trial++ {
		row, err := runE4Once(trial)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runE4Once(trial int) (E4Row, error) {
	env, err := NewEnv(fmt.Sprintf("e4-%d", trial), 1)
	if err != nil {
		return E4Row{}, err
	}
	if err := env.Fund(); err != nil {
		return E4Row{}, err
	}
	cl := client.New(env.Chain, env.Pool, env.Wallet, env.Ledger)
	aliceKey, err := env.Wallet.Key(env.Payout)
	if err != nil {
		return E4Row{}, err
	}

	// The revocation anchor R: a plain P2PKH output Alice controls.
	anchorTx, err := env.Wallet.Build([]wallet.Output{
		{Value: 20_000, PkScript: script.PayToPubKeyHash(env.Payout)},
	}, wallet.BuildOptions{})
	if err != nil {
		return E4Row{}, err
	}
	if _, err := env.Pool.Accept(anchorTx); err != nil {
		return E4Row{}, err
	}
	if err := env.Mine(1); err != nil {
		return E4Row{}, err
	}
	anchor := wire.OutPoint{Hash: anchorTx.TxHash(), Index: 0}

	// The offer: a token whose discharge requires ~spent(R). Alice
	// issues offer-tokens; each discharge converts one into a good,
	// provided the offer is unrevoked.
	t0 := typecoin.NewTx()
	if err := t0.Basis.DeclareFam(lf.This("offer"), lf.KProp{}); err != nil {
		return E4Row{}, err
	}
	if err := t0.Basis.DeclareFam(lf.This("good"), lf.KProp{}); err != nil {
		return E4Row{}, err
	}
	offer := logic.Atom(lf.This("offer"))
	good := logic.Atom(lf.This("good"))
	redeem := logic.Lolli(offer, logic.If(logic.Unspent(anchor), good))
	if err := t0.Basis.DeclareProp(lf.This("redeem"), redeem); err != nil {
		return E4Row{}, err
	}
	// Grant two offer tokens: one to discharge before revocation, one to
	// attempt after.
	t0.Grant = logic.Tensor(offer, offer)
	t0.Outputs = []typecoin.Output{
		{Type: offer, Amount: 10_000, Owner: aliceKey.PubKey()},
		{Type: offer, Amount: 10_000, Owner: aliceKey.PubKey()},
	}
	t0.Proof = proof.Lam{Name: "d", Ty: t0.Domain(),
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.V("c")}}}
	carrier0, err := cl.Submit(t0)
	if err != nil {
		return E4Row{}, err
	}
	if err := env.Mine(1); err != nil {
		return E4Row{}, err
	}
	t0id := carrier0.TxHash()
	offerG := logic.Atom(lf.TxRef(t0id, "offer"))
	goodG := logic.Atom(lf.TxRef(t0id, "good"))

	discharge := func(idx uint32) (bool, error) {
		tx := typecoin.NewTx()
		op := wire.OutPoint{Hash: t0id, Index: idx}
		tx.Inputs = []typecoin.Input{{Source: op, Type: offerG, Amount: 10_000}}
		tx.Outputs = []typecoin.Output{{Type: goodG, Amount: 10_000, Owner: aliceKey.PubKey()}}
		tx.Proof = proof.Lam{Name: "d", Ty: tx.Domain(),
			Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
				Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
					Body: proof.Apply(proof.Const{Ref: lf.TxRef(t0id, "redeem")}, proof.V("a"))}}}
		carrier, err := cl.Submit(tx)
		if err != nil {
			return false, err
		}
		if err := env.Mine(1); err != nil {
			return false, err
		}
		return cl.Ledger.Applied(carrier.TxHash()), nil
	}

	row := E4Row{Trial: trial}
	// Discharge the first token before revocation: must succeed.
	ok, err := discharge(0)
	if err != nil {
		return E4Row{}, err
	}
	row.DischargeBeforeOK = ok

	// Alice revokes by spending the anchor; measure how many blocks it
	// takes for the revocation to be enforceable (spend confirmed).
	revoke, err := env.Wallet.Build(nil, wallet.BuildOptions{
		ExtraInputs: []wire.OutPoint{anchor},
	})
	if err != nil {
		return E4Row{}, err
	}
	if _, err := env.Pool.Accept(revoke); err != nil {
		return E4Row{}, err
	}
	blocks := 0
	for {
		if _, spent := env.Chain.IsSpent(anchor); spent {
			break
		}
		if err := env.Mine(1); err != nil {
			return E4Row{}, err
		}
		blocks++
		if blocks > 10 {
			return E4Row{}, fmt.Errorf("bench: revocation never confirmed")
		}
	}
	row.BlocksToRevoke = blocks

	// Discharge the second token after revocation: must fail (the
	// transaction enters the chain but is typecoin-invalid, spoiling its
	// input — the hazard fallback transactions address).
	ok, err = discharge(1)
	if err != nil {
		return E4Row{}, err
	}
	row.DischargeAfterOK = ok
	return row, nil
}
