package bench

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Experiment E1 (Section 1, item 5): "In order to reverse a transaction,
// an attacker would need to create a new block without it, and then
// outpace the rest of the network ... his likelihood of success drops
// exponentially" with confirmation depth.
//
// The race is the standard Nakamoto model: block discovery alternates
// between the honest network (probability 1-q per step) and the attacker
// (probability q). A transaction is "confirmed" at depth z; the attacker
// starts one block behind (his replacement block) and wins if he ever
// pulls ahead of the honest chain. We simulate the race with a
// deterministic PRNG and compare against the analytic probability.

// E1Row is one row of the E1 table.
type E1Row struct {
	Q        float64 // attacker hash-power fraction
	Depth    int     // confirmations z
	Observed float64 // simulated reversal rate
	Analytic float64 // Nakamoto's closed form
	Trials   int
}

// String formats the row.
func (r E1Row) String() string {
	return fmt.Sprintf("q=%.2f z=%d observed=%.4f analytic=%.4f (n=%d)",
		r.Q, r.Depth, r.Observed, r.Analytic, r.Trials)
}

// prng is a tiny deterministic generator (SplitMix-style over SHA-256
// seeds) so experiment runs are reproducible without math/rand.
type prng struct{ state uint64 }

func newPRNG(seed string) *prng {
	sum := sha256.Sum256([]byte(seed))
	return &prng{state: binary.LittleEndian.Uint64(sum[:8])}
}

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (p *prng) float() float64 {
	return float64(p.next()>>11) / float64(1<<53)
}

// raceOnce simulates one double-spend race: the merchant waits for z
// confirmations, then the attacker keeps mining until he either pulls
// ahead (reversal) or falls hopelessly behind.
func raceOnce(rng *prng, q float64, z int) bool {
	// While the merchant waits for z honest blocks, the attacker also
	// mines; count how many he finds in that window (one attacker block
	// is needed just to replace the transaction's block).
	attacker := 0
	honest := 0
	for honest < z {
		if rng.float() < q {
			attacker++
		} else {
			honest++
		}
	}
	// Deficit: honest chain is z ahead of the attacker's secret chain
	// (which still needs its replacement block counted in `attacker`).
	deficit := z - attacker
	if deficit <= 0 {
		return true
	}
	// Continue the race; give up when the deficit is insurmountable.
	const hopeless = 80
	for deficit > 0 && deficit < hopeless {
		if rng.float() < q {
			deficit--
		} else {
			deficit++
		}
	}
	return deficit <= 0
}

// RunE1 simulates the confirmation race for each (q, z) pair.
func RunE1(qs []float64, depths []int, trials int) []E1Row {
	rng := newPRNG("typecoin/e1")
	var rows []E1Row
	for _, q := range qs {
		for _, z := range depths {
			wins := 0
			for i := 0; i < trials; i++ {
				if raceOnce(rng, q, z) {
					wins++
				}
			}
			rows = append(rows, E1Row{
				Q:        q,
				Depth:    z,
				Observed: float64(wins) / float64(trials),
				Analytic: NakamotoProbability(q, z),
				Trials:   trials,
			})
		}
	}
	return rows
}

// RunE1Chain demonstrates the same race on the real chain machinery for
// one small case: an attacker who out-mines the honest network reverses
// a buried transaction via a reorganization; one who does not, does not.
// It returns (reorged, stillMain) for an attacker given a head start vs
// one who is behind.
func RunE1Chain() (bool, bool, error) {
	// Honest chain: 3 blocks after genesis.
	env, err := NewEnv("e1-honest", 1)
	if err != nil {
		return false, false, err
	}
	if err := env.Mine(3); err != nil {
		return false, false, err
	}
	honestTip := env.Chain.BestHash()

	// Attacker forks from genesis with 4 blocks: more work, reorg.
	attacker, err := NewEnv("e1-attacker", 1)
	if err != nil {
		return false, false, err
	}
	if err := attacker.Mine(4); err != nil {
		return false, false, err
	}
	for h := 1; h <= attacker.Chain.BestHeight(); h++ {
		blk, _ := attacker.Chain.BlockAtHeight(h)
		if _, err := env.Chain.ProcessBlock(blk); err != nil {
			return false, false, err
		}
	}
	reorged := env.Chain.BestHash() == attacker.Chain.BestHash()

	// A shorter attacking branch (2 blocks) must NOT displace the honest
	// chain.
	env2, err := NewEnv("e1-honest2", 1)
	if err != nil {
		return false, false, err
	}
	if err := env2.Mine(3); err != nil {
		return false, false, err
	}
	weak, err := NewEnv("e1-weak", 1)
	if err != nil {
		return false, false, err
	}
	if err := weak.Mine(2); err != nil {
		return false, false, err
	}
	for h := 1; h <= weak.Chain.BestHeight(); h++ {
		blk, _ := weak.Chain.BlockAtHeight(h)
		if _, err := env2.Chain.ProcessBlock(blk); err != nil {
			return false, false, err
		}
	}
	stillMain := env2.Chain.BestHash() != weak.Chain.BestHash()
	_ = honestTip
	return reorged, stillMain, nil
}
