// Package bench implements the experiment harness of EXPERIMENTS.md: one
// function per experiment (E1-E6), each returning the rows the paper's
// corresponding claim predicts, so `go test -bench` and cmd/tcbench can
// regenerate every table.
package bench

import (
	"math"
	"time"

	"typecoin/internal/bkey"
	"typecoin/internal/chain"
	"typecoin/internal/clock"
	"typecoin/internal/mempool"
	"typecoin/internal/miner"
	"typecoin/internal/testutil"
	"typecoin/internal/typecoin"
	"typecoin/internal/wallet"
)

// Env is a funded single-node environment for experiments.
type Env struct {
	Params *chain.Params
	Clock  *clock.Simulated
	Chain  *chain.Chain
	Pool   *mempool.Pool
	Miner  *miner.Miner
	Wallet *wallet.Wallet
	Payout bkey.Principal
	Ledger *typecoin.Ledger
}

// NewEnv builds the environment. minConf configures the ledger.
func NewEnv(seed string, minConf int) (*Env, error) {
	params := chain.RegTestParams()
	clk := clock.NewSimulated(params.GenesisBlock.Header.Timestamp.Add(time.Minute))
	c := chain.New(params, clk)
	pool := mempool.New(c, -1)
	w := wallet.New(c, testutil.NewEntropy(seed))
	payout, err := w.NewKey()
	if err != nil {
		return nil, err
	}
	m := miner.New(c, pool, clk)
	env := &Env{
		Params: params, Clock: clk, Chain: c, Pool: pool,
		Miner: m, Wallet: w, Payout: payout,
		Ledger: typecoin.NewLedger(c, minConf),
	}
	return env, nil
}

// Mine mines n blocks, advancing the clock by the target spacing each.
func (e *Env) Mine(n int) error {
	for i := 0; i < n; i++ {
		e.Clock.Advance(e.Params.TargetSpacing)
		if _, _, err := e.Miner.Mine(e.Payout); err != nil {
			return err
		}
	}
	return nil
}

// Fund mines to coinbase maturity plus a buffer so the wallet has
// several spendable coinbases.
func (e *Env) Fund() error {
	return e.Mine(e.Params.CoinbaseMaturity + 10)
}

// NakamotoProbability is the analytic probability that an attacker with
// hash-power fraction q reverses a transaction buried under z blocks
// (Nakamoto 2008, section 11; the paper's Section 1, item 5).
func NakamotoProbability(q float64, z int) float64 {
	p := 1 - q
	if q >= p {
		return 1
	}
	lambda := float64(z) * q / p
	sum := 1.0
	for k := 0; k <= z; k++ {
		poisson := math.Exp(-lambda)
		for i := 1; i <= k; i++ {
			poisson *= lambda / float64(i)
		}
		sum -= poisson * (1 - math.Pow(q/p, float64(z-k)))
	}
	if sum < 0 {
		return 0
	}
	return sum
}
