package bench

import (
	"math"
	"testing"
)

// The experiment harness has its own tests: each Run* function must
// produce rows whose *shape* matches the paper's claim (see
// EXPERIMENTS.md). Small parameters keep these fast; the full tables are
// produced by cmd/tcbench and the root benchmarks.

func TestE1ShapeExponentialDrop(t *testing.T) {
	rows := RunE1([]float64{0.1, 0.3}, []int{0, 1, 2, 4, 6}, 4000)
	// Reversal probability must be monotonically non-increasing in depth
	// and roughly match the analytic value.
	byQ := map[float64][]E1Row{}
	for _, r := range rows {
		byQ[r.Q] = append(byQ[r.Q], r)
	}
	for q, rs := range byQ {
		for i := 1; i < len(rs); i++ {
			if rs[i].Observed > rs[i-1].Observed+0.02 {
				t.Errorf("q=%v: observed rate increased with depth: %v -> %v",
					q, rs[i-1], rs[i])
			}
		}
		for _, r := range rs {
			if diff := math.Abs(r.Observed - r.Analytic); diff > 0.05 {
				t.Errorf("q=%v z=%d: observed %.4f vs analytic %.4f",
					q, r.Depth, r.Observed, r.Analytic)
			}
		}
	}
	// At q=0.1, six confirmations make reversal essentially impossible
	// (the paper's "usually taken as five" plus one).
	for _, r := range rows {
		if r.Q == 0.1 && r.Depth == 6 && r.Observed > 0.001 {
			t.Errorf("q=0.1 z=6: reversal rate %.4f not negligible", r.Observed)
		}
	}
}

func TestE1ChainReorg(t *testing.T) {
	reorged, stillMain, err := RunE1Chain()
	if err != nil {
		t.Fatal(err)
	}
	if !reorged {
		t.Error("longer attacking branch failed to reorganize the chain")
	}
	if !stillMain {
		t.Error("shorter attacking branch displaced the honest chain")
	}
}

func TestE2BatchAmortizes(t *testing.T) {
	rows, err := RunE2([]int{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]interface{}]E2Row{}
	for _, r := range rows {
		byKey[[2]interface{}{r.Transfers, r.Mode}] = r
	}
	for _, k := range []int{1, 5} {
		direct := byKey[[2]interface{}{k, "direct"}]
		batched := byKey[[2]interface{}{k, "batch"}]
		if direct.OnChainTxs != k+1 {
			t.Errorf("direct k=%d: on-chain txs = %d, want %d", k, direct.OnChainTxs, k+1)
		}
		if batched.OnChainTxs != 2 {
			t.Errorf("batch k=%d: on-chain txs = %d, want 2", k, batched.OnChainTxs)
		}
		if k > 1 && batched.FeesSat >= direct.FeesSat {
			t.Errorf("batch k=%d: fees %d not below direct %d", k, batched.FeesSat, direct.FeesSat)
		}
	}
}

func TestE3MultisigGarbageCollects(t *testing.T) {
	rows, err := RunE3([]int{25})
	if err != nil {
		t.Fatal(err)
	}
	var bogus, multisig E3Row
	for _, r := range rows {
		switch r.Strategy {
		case "bogus":
			bogus = r
		case "multisig":
			multisig = r
		}
	}
	if bogus.Deadweight != 25 {
		t.Errorf("bogus deadweight = %d, want 25 (permanent)", bogus.Deadweight)
	}
	if multisig.Deadweight != 0 {
		t.Errorf("multisig deadweight = %d, want 0 (garbage-collected)", multisig.Deadweight)
	}
}

func TestE4RevocationTakesEffect(t *testing.T) {
	rows, err := RunE4(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.DischargeBeforeOK {
			t.Errorf("trial %d: discharge before revocation failed", r.Trial)
		}
		if r.DischargeAfterOK {
			t.Errorf("trial %d: discharge after revocation succeeded", r.Trial)
		}
		if r.BlocksToRevoke < 1 || r.BlocksToRevoke > 2 {
			t.Errorf("trial %d: revocation latency %d blocks", r.Trial, r.BlocksToRevoke)
		}
	}
}

func TestE5VerifyScalesLinearly(t *testing.T) {
	rows, err := RunE5([]int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].VerifyTime < rows[0].VerifyTime {
		t.Logf("verify(8)=%v < verify(1)=%v (timer noise)", rows[1].VerifyTime, rows[0].VerifyTime)
	}
}

func TestE6Tolerance(t *testing.T) {
	rows, err := RunE6([][3]int{
		{1, 1, 0},
		{2, 3, 0},
		{2, 3, 1}, // one compromised agent is tolerated
		{2, 3, 2}, // two are not
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, true, false}
	for i, r := range rows {
		if r.Succeeded != want[i] {
			t.Errorf("config %d-of-%d compromised=%d: succeeded=%v, want %v",
				r.M, r.N, r.Compromised, r.Succeeded, want[i])
		}
	}
}

func TestNakamotoProbability(t *testing.T) {
	// Spot values from the Bitcoin paper's table (section 11).
	cases := []struct {
		q    float64
		z    int
		want float64
	}{
		{0.1, 0, 1.0},
		{0.1, 5, 0.0009137},
		{0.3, 5, 0.1773523},
		{0.3, 10, 0.0416605},
	}
	for _, tc := range cases {
		got := NakamotoProbability(tc.q, tc.z)
		if math.Abs(got-tc.want) > 1e-4 {
			t.Errorf("P(q=%v, z=%d) = %.7f, want %.7f", tc.q, tc.z, got, tc.want)
		}
	}
}

func TestE5BatchAblationBoundsBundles(t *testing.T) {
	rows, err := RunE5Batch([]int{1, 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The withdrawal leaves a constant-size upstream set: the issue
		// transaction plus the batch, regardless of the off-chain history
		// length.
		if r.BundleCount != 2 {
			t.Errorf("transfers=%d: bundles=%d, want 2", r.Transfers, r.BundleCount)
		}
	}
}
