package bench

import (
	"fmt"
	"time"

	"typecoin/internal/batch"
	"typecoin/internal/bkey"
	"typecoin/internal/client"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
	"typecoin/internal/proof"
	"typecoin/internal/testutil"
	"typecoin/internal/typecoin"
	"typecoin/internal/wire"
)

// Experiment E5 (Section 3): "type-checking is performed by the
// interested parties, outside the Bitcoin mechanism" — the claimant
// provides the transaction plus all upstream transactions, and the
// verifier re-checks everything. Verification cost therefore grows with
// upstream history length; batch mode (E2) bounds the history a
// withdrawal leaves behind.

// E5Row is one row of the E5 table.
type E5Row struct {
	UpstreamLen int
	VerifyTime  time.Duration
	PerTx       time.Duration
}

// String formats the row.
func (r E5Row) String() string {
	return fmt.Sprintf("upstream=%-5d verify=%-12v per-tx=%v", r.UpstreamLen, r.VerifyTime, r.PerTx)
}

// E5Setup builds a chain with an n-long transfer history and returns
// what Verify needs, so benchmarks can time only the verification.
type E5Setup struct {
	View    typecoin.ChainView
	Claim   wire.OutPoint
	Type    logic.Prop
	Bundles []*typecoin.Bundle
}

// NewE5Setup issues a token and transfers it n-1 times, one carrier per
// block.
func NewE5Setup(n int) (*E5Setup, error) {
	env, err := NewEnv(fmt.Sprintf("e5-%d", n), 1)
	if err != nil {
		return nil, err
	}
	if err := env.Fund(); err != nil {
		return nil, err
	}
	cl := client.New(env.Chain, env.Pool, env.Wallet, env.Ledger)
	key, err := env.Wallet.Key(env.Payout)
	if err != nil {
		return nil, err
	}
	const amount = 10_000
	op, tokGlobal, err := issueToken(env, cl, key.PubKey(), amount)
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		tx := typecoin.NewTx()
		tx.Inputs = []typecoin.Input{{Source: op, Type: tokGlobal, Amount: amount}}
		tx.Outputs = []typecoin.Output{{Type: tokGlobal, Amount: amount, Owner: key.PubKey()}}
		tx.Proof = tokenProofOnChain(tx.Domain())
		carrier, err := cl.Submit(tx)
		if err != nil {
			return nil, fmt.Errorf("transfer %d: %w", i, err)
		}
		if err := env.Mine(1); err != nil {
			return nil, err
		}
		op = wire.OutPoint{Hash: carrier.TxHash(), Index: 0}
	}
	bundles, err := env.Ledger.UpstreamBundles(op)
	if err != nil {
		return nil, err
	}
	return &E5Setup{View: env.Chain, Claim: op, Type: tokGlobal, Bundles: bundles}, nil
}

// Verify runs the trust-free verifier once.
func (s *E5Setup) Verify() error {
	_, err := typecoin.Verify(s.View, s.Claim, s.Type, s.Bundles, 1)
	return err
}

// RunE5 measures verification time for each upstream length.
func RunE5(ns []int) ([]E5Row, error) {
	var rows []E5Row
	for _, n := range ns {
		setup, err := NewE5Setup(n)
		if err != nil {
			return nil, err
		}
		if len(setup.Bundles) != n {
			return nil, fmt.Errorf("bench: expected %d bundles, got %d", n, len(setup.Bundles))
		}
		// Warm once, then time the best of three.
		if err := setup.Verify(); err != nil {
			return nil, err
		}
		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if err := setup.Verify(); err != nil {
				return nil, err
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		rows = append(rows, E5Row{
			UpstreamLen: n,
			VerifyTime:  best,
			PerTx:       best / time.Duration(n),
		})
	}
	return rows, nil
}

// RunE5Checker measures the raw proof-checker throughput on the newcoin
// merge proof (the Figure 3 flavor of work), in checks per second.
func RunE5Checker(iters int) (time.Duration, error) {
	b := logic.NewBasis(nil)
	if err := b.DeclareFam(lf.This("coin"), lf.KArrow(lf.NatFam, lf.KProp{})); err != nil {
		return 0, err
	}
	coin := func(n uint64) logic.Prop { return logic.Atom(lf.This("coin"), lf.Nat(n)) }
	coinP := func(m lf.Term) logic.Prop { return logic.Atom(lf.This("coin"), m) }
	merge := logic.Forall("N", lf.NatFam, logic.Forall("M", lf.NatFam, logic.Forall("P", lf.NatFam,
		logic.Lolli(
			logic.Exists("x", lf.FamApp(lf.PlusFam, lf.Var(2, "N"), lf.Var(1, "M"), lf.Var(0, "P")), logic.One),
			logic.Tensor(coinP(lf.Var(2, "N")), coinP(lf.Var(1, "M"))),
			coinP(lf.Var(0, "P")),
		))))
	if err := b.DeclareProp(lf.This("merge"), merge); err != nil {
		return 0, err
	}
	guard := proof.Pack{
		Witness: lf.App(lf.PlusIntro, lf.Nat(2), lf.Nat(3)),
		Of:      proof.Unit{},
		As:      logic.Exists("x", lf.FamApp(lf.PlusFam, lf.Nat(2), lf.Nat(3), lf.Nat(5)), logic.One),
	}
	m := proof.Lam{Name: "p", Ty: logic.Tensor(coin(2), coin(3)),
		Body: proof.Apply(
			proof.TApply(proof.Const{Ref: lf.This("merge")}, lf.Nat(2), lf.Nat(3), lf.Nat(5)),
			guard, proof.V("p"))}
	want := logic.Lolli(logic.Tensor(coin(2), coin(3)), coin(5))
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := proof.Check(b, nil, m, want); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// E5BatchRow is the batch-mode ablation of E5: the same k-transfer
// history conducted off-chain and flushed by one withdrawal leaves a
// two-bundle upstream set, so verification cost no longer grows with k.
type E5BatchRow struct {
	Transfers   int
	BundleCount int
	VerifyTime  time.Duration
}

// String formats the row.
func (r E5BatchRow) String() string {
	return fmt.Sprintf("transfers=%-5d bundles=%-3d verify=%v", r.Transfers, r.BundleCount, r.VerifyTime)
}

// RunE5Batch runs the batch ablation for each transfer count.
func RunE5Batch(ks []int) ([]E5BatchRow, error) {
	var rows []E5BatchRow
	for _, k := range ks {
		setup, err := newE5BatchSetup(k)
		if err != nil {
			return nil, err
		}
		if err := setup.Verify(); err != nil {
			return nil, err
		}
		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if err := setup.Verify(); err != nil {
				return nil, err
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		rows = append(rows, E5BatchRow{
			Transfers:   k,
			BundleCount: len(setup.Bundles),
			VerifyTime:  best,
		})
	}
	return rows, nil
}

func newE5BatchSetup(k int) (*E5Setup, error) {
	env, err := NewEnv(fmt.Sprintf("e5b-%d", k), 1)
	if err != nil {
		return nil, err
	}
	if err := env.Fund(); err != nil {
		return nil, err
	}
	cl := client.New(env.Chain, env.Pool, env.Wallet, env.Ledger)
	serverKey, err := bkey.NewPrivateKey(testutil.NewEntropy(fmt.Sprintf("e5b-server-%d", k)))
	if err != nil {
		return nil, err
	}
	server := batch.NewServer(cl, serverKey)
	alice, err := env.Wallet.NewKey()
	if err != nil {
		return nil, err
	}
	aliceKey, err := env.Wallet.Key(alice)
	if err != nil {
		return nil, err
	}
	const amount = 10_000
	op, tokGlobal, err := issueToken(env, cl, server.Key(), amount)
	if err != nil {
		return nil, err
	}
	if err := server.Deposit(op, alice); err != nil {
		return nil, err
	}
	cur := op
	for i := 0; i < k; i++ {
		tx := typecoin.NewTx()
		tx.Inputs = []typecoin.Input{{Source: cur, Type: tokGlobal, Amount: amount}}
		tx.Outputs = []typecoin.Output{{Type: tokGlobal, Amount: amount, Owner: aliceKey.PubKey()}}
		tx.Proof = proof.Lam{Name: "d", Ty: tx.DomainOffChain(),
			Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
				Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
					Body: proof.V("a")}}}
		if err := server.SubmitOffChain(tx, alice); err != nil {
			return nil, fmt.Errorf("off-chain %d: %w", i, err)
		}
		cur = wire.OutPoint{Hash: tx.Hash(), Index: 0}
	}
	carrier, _, err := server.Withdraw(cur, aliceKey.PubKey())
	if err != nil {
		return nil, err
	}
	if err := env.Mine(1); err != nil {
		return nil, err
	}
	claim := wire.OutPoint{Hash: carrier.TxHash(), Index: 0}
	bundles, err := env.Ledger.UpstreamBundles(claim)
	if err != nil {
		return nil, err
	}
	return &E5Setup{View: env.Chain, Claim: claim, Type: tokGlobal, Bundles: bundles}, nil
}
