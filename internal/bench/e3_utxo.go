package bench

import (
	"fmt"

	"typecoin/internal/bkey"
	"typecoin/internal/chainhash"
	"typecoin/internal/script"
	"typecoin/internal/wallet"
)

// Experiment E3 (Section 3.3): embedding metadata as a bogus P2PKH
// output "would have a severe consequence on Bitcoin itself ...
// unrecoverable txouts mean permanent deadweight in the [unspent-txout]
// table", while the 1-of-2 multisig form "can be spent, and its entry in
// the unspent-txout table can be garbage-collected."
//
// We create n metadata-carrying transactions under each strategy, then
// run the cleanup pass (spend whatever is spendable) and measure the
// UTXO table size before, after creation, and after cleanup.

// E3Row is one row of the E3 table.
type E3Row struct {
	N            int
	Strategy     string
	Baseline     int // UTXO size before the experiment
	AfterCreate  int
	AfterCleanup int
	Deadweight   int // entries that can never be reclaimed
}

// String formats the row.
func (r E3Row) String() string {
	return fmt.Sprintf("n=%-4d %-9s baseline=%-4d created=%-4d cleaned=%-4d deadweight=%d",
		r.N, r.Strategy, r.Baseline, r.AfterCreate, r.AfterCleanup, r.Deadweight)
}

// RunE3 measures both strategies for each n.
func RunE3(ns []int) ([]E3Row, error) {
	var rows []E3Row
	for _, n := range ns {
		bogus, err := runE3(n, "bogus")
		if err != nil {
			return nil, err
		}
		rows = append(rows, bogus)
		multisig, err := runE3(n, "multisig")
		if err != nil {
			return nil, err
		}
		rows = append(rows, multisig)
	}
	return rows, nil
}

func runE3(n int, strategy string) (E3Row, error) {
	env, err := NewEnv(fmt.Sprintf("e3-%s-%d", strategy, n), 1)
	if err != nil {
		return E3Row{}, err
	}
	// Enough mature coinbases to fund n metadata transactions.
	if err := env.Mine(env.Params.CoinbaseMaturity + n/40 + 10); err != nil {
		return E3Row{}, err
	}
	key, err := env.Wallet.Key(env.Payout)
	if err != nil {
		return E3Row{}, err
	}
	row := E3Row{N: n, Strategy: strategy, Baseline: env.Chain.UtxoSize()}

	// metaScripts tracks every metadata-carrying locking script created,
	// so deadweight can be counted exactly after cleanup.
	metaScripts := make(map[string]bool, n)

	// Create n metadata-carrying transactions.
	for i := 0; i < n; i++ {
		meta := chainhash.TaggedHash("typecoin/tx", []byte(fmt.Sprintf("payload-%d", i)))
		var pkScript []byte
		switch strategy {
		case "bogus":
			// Pre-OP_RETURN style: a P2PKH to a fake "principal" that is
			// really the metadata. Unspendable forever, but indistinguishable
			// from a real output, so the table must keep it.
			var fake bkey.Principal
			copy(fake[:], meta[:bkey.PrincipalSize])
			pkScript = script.PayToPubKeyHash(fake)
		case "multisig":
			pkScript, err = script.MultiSigScript(1, key.PubKey().Serialize(), script.MetadataKeySlot(meta))
			if err != nil {
				return E3Row{}, err
			}
		default:
			return E3Row{}, fmt.Errorf("bench: unknown strategy %q", strategy)
		}
		metaScripts[string(pkScript)] = true
		tx, err := env.Wallet.Build([]wallet.Output{{Value: 10_000, PkScript: pkScript}},
			wallet.BuildOptions{})
		if err != nil {
			return E3Row{}, fmt.Errorf("metadata tx %d: %w", i, err)
		}
		if _, err := env.Pool.Accept(tx); err != nil {
			return E3Row{}, err
		}
		// Mine every few transactions to keep blocks modest.
		if env.Pool.Size() >= 50 {
			if err := env.Mine(1); err != nil {
				return E3Row{}, err
			}
		}
	}
	if err := env.Mine(1); err != nil {
		return E3Row{}, err
	}
	row.AfterCreate = env.Chain.UtxoSize()

	// Cleanup: spend every reclaimable metadata output back to plain
	// funds (Section 3.1's "cracking a resource open").
	for {
		metas := env.Wallet.MetadataOutpoints()
		if len(metas) == 0 {
			break
		}
		if len(metas) > 100 {
			metas = metas[:100]
		}
		cleanup, err := env.Wallet.Build(nil, wallet.BuildOptions{ExtraInputs: metas})
		if err != nil {
			return E3Row{}, fmt.Errorf("cleanup: %w", err)
		}
		if _, err := env.Pool.Accept(cleanup); err != nil {
			return E3Row{}, err
		}
		if err := env.Mine(1); err != nil {
			return E3Row{}, err
		}
	}
	row.AfterCleanup = env.Chain.UtxoSize()
	// Deadweight: metadata-carrying entries still in the table.
	for _, op := range env.Chain.UtxoOutpoints() {
		entry := env.Chain.LookupUtxo(op)
		if entry != nil && metaScripts[string(entry.Out.PkScript)] {
			row.Deadweight++
		}
	}
	return row, nil
}
