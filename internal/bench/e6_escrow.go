package bench

import (
	"fmt"
	"time"

	"typecoin/internal/bkey"
	"typecoin/internal/chainhash"
	"typecoin/internal/client"
	"typecoin/internal/escrow"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
	"typecoin/internal/mempool"
	"typecoin/internal/proof"
	"typecoin/internal/testutil"
	"typecoin/internal/typecoin"
	"typecoin/internal/wallet"
	"typecoin/internal/wire"
)

// Experiment E6 (Section 7): type-checking escrow. The agent's policy —
// "sign any instance of the transaction that type checks" — costs one
// template match, one embedding check, one full type check and one
// signature per agent. We measure the end-to-end signature-collection
// latency for pool thresholds m-of-n, including the tolerance case where
// compromised agents refuse.

// E6Row is one row of the E6 table.
type E6Row struct {
	M, N        int
	Compromised int // agents that refuse to sign
	CollectTime time.Duration
	Succeeded   bool
}

// String formats the row.
func (r E6Row) String() string {
	return fmt.Sprintf("%d-of-%d compromised=%d collect=%-12v ok=%v",
		r.M, r.N, r.Compromised, r.CollectTime, r.Succeeded)
}

// RunE6 measures signature collection for each pool configuration.
// Configurations where compromised > n-m must fail.
func RunE6(configs [][3]int) ([]E6Row, error) {
	var rows []E6Row
	for _, cfg := range configs {
		row, err := runE6Once(cfg[0], cfg[1], cfg[2])
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runE6Once(m, n, compromised int) (E6Row, error) {
	env, err := NewEnv(fmt.Sprintf("e6-%d-%d-%d", m, n, compromised), 1)
	if err != nil {
		return E6Row{}, err
	}
	if err := env.Fund(); err != nil {
		return E6Row{}, err
	}
	cl := client.New(env.Chain, env.Pool, env.Wallet, env.Ledger)
	aliceKey, err := env.Wallet.Key(env.Payout)
	if err != nil {
		return E6Row{}, err
	}
	bob, err := env.Wallet.NewKey()
	if err != nil {
		return E6Row{}, err
	}
	bobKey, err := env.Wallet.Key(bob)
	if err != nil {
		return E6Row{}, err
	}

	var agents []*escrow.Agent
	for i := 0; i < n; i++ {
		key, err := bkey.NewPrivateKey(testutil.NewEntropy(fmt.Sprintf("e6-agent-%d-%d-%d-%d", m, n, compromised, i)))
		if err != nil {
			return E6Row{}, err
		}
		agents = append(agents, escrow.NewAgent(key, env.Chain, env.Ledger))
	}
	pool, err := escrow.NewPool(m, agents...)
	if err != nil {
		return E6Row{}, err
	}

	// Alice escrows a prize and opens an offer for a grantable token.
	t0 := typecoin.NewTx()
	if err := t0.Basis.DeclareFam(lf.This("solution"), lf.KProp{}); err != nil {
		return E6Row{}, err
	}
	if err := t0.Basis.DeclareFam(lf.This("prize"), lf.KProp{}); err != nil {
		return E6Row{}, err
	}
	mk := logic.Lolli(logic.One, logic.Atom(lf.This("solution")))
	if err := t0.Basis.DeclareProp(lf.This("mk"), mk); err != nil {
		return E6Row{}, err
	}
	prize := logic.Atom(lf.This("prize"))
	t0.Grant = prize
	const prizeSat = 30_000
	t0.Outputs = []typecoin.Output{{
		Type: prize, Amount: prizeSat, Owner: agents[0].Key(), Escrow: pool.Lock(),
	}}
	t0.Proof = grantProof(t0.Domain())
	carrier0, err := cl.Submit(t0)
	if err != nil {
		return E6Row{}, err
	}
	if err := env.Mine(1); err != nil {
		return E6Row{}, err
	}
	t0id := carrier0.TxHash()
	prizeOp := wire.OutPoint{Hash: t0id, Index: 0}
	prizeG := logic.Atom(lf.TxRef(t0id, "prize"))
	solG := logic.Atom(lf.TxRef(t0id, "solution"))

	const solSat = 10_000
	template := typecoin.NewTx()
	template.Inputs = []typecoin.Input{
		{Type: solG, Amount: solSat},
		{Source: prizeOp, Type: prizeG, Amount: prizeSat},
	}
	template.Outputs = []typecoin.Output{
		{Type: solG, Amount: solSat, Owner: aliceKey.PubKey()},
		{Type: prizeG, Amount: prizeSat},
	}
	template.Proof = tokenProofOnChain(template.Domain())
	open := &typecoin.OpenTx{Template: template, OpenInputs: []int{0}, OpenOwners: []int{1}}
	// Honest agents register; compromised ones never heard of the offer.
	for i := compromised; i < n; i++ {
		agents[i].Register(open)
	}
	// Reorder the pool so compromised agents are consulted first (worst
	// case).
	ordered := make([]*escrow.Agent, 0, n)
	ordered = append(ordered, agents[:compromised]...)
	ordered = append(ordered, agents[compromised:]...)
	pool2, err := escrow.NewPool(m, ordered...)
	if err != nil {
		return E6Row{}, err
	}

	// Bob produces the solution.
	t1 := typecoin.NewTx()
	t1.Outputs = []typecoin.Output{{Type: solG, Amount: solSat, Owner: bobKey.PubKey()}}
	t1.Proof = grantLessSolutionProof(t1.Domain(), t0id)
	carrier1, err := cl.Submit(t1)
	if err != nil {
		return E6Row{}, err
	}
	if err := env.Mine(1); err != nil {
		return E6Row{}, err
	}
	solOp := wire.OutPoint{Hash: carrier1.TxHash(), Index: 0}

	filled, err := open.Fill(map[int]wire.OutPoint{0: solOp},
		map[int]*bkey.PublicKey{1: bobKey.PubKey()})
	if err != nil {
		return E6Row{}, err
	}
	carrierOuts, err := typecoin.CarrierOutputs(filled)
	if err != nil {
		return E6Row{}, err
	}
	outputs := make([]wallet.Output, len(carrierOuts))
	for i, o := range carrierOuts {
		outputs[i] = wallet.Output{Value: o.Value, PkScript: o.PkScript}
	}
	claim, err := env.Wallet.Build(outputs, wallet.BuildOptions{
		Fee:            mempool.DefaultMinRelayFee,
		ExtraInputs:    []wire.OutPoint{solOp},
		ExternalInputs: []wallet.ExternalInput{{OutPoint: prizeOp, Value: prizeSat}},
	})
	if err != nil {
		return E6Row{}, err
	}

	start := time.Now()
	sigScript, err := pool2.CollectSignatures(filled, claim, 1)
	collect := time.Since(start)
	row := E6Row{M: m, N: n, Compromised: compromised, CollectTime: collect, Succeeded: err == nil}
	if err == nil {
		claim.TxIn[1].SignatureScript = sigScript
		if err := cl.SubmitPrebuilt(filled, claim); err != nil {
			return E6Row{}, fmt.Errorf("bench: signed claim rejected: %w", err)
		}
		if err := env.Mine(1); err != nil {
			return E6Row{}, err
		}
		if !cl.Ledger.Applied(claim.TxHash()) {
			return E6Row{}, fmt.Errorf("bench: signed claim not applied")
		}
	} else {
		env.Wallet.Unlock(claim)
	}
	return row, nil
}

// grantLessSolutionProof derives solution from the published mk rule.
func grantLessSolutionProof(domain logic.Prop, t0id chainhash.Hash) proof.Term {
	return proof.Lam{Name: "d", Ty: domain,
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.Apply(proof.Const{Ref: lf.TxRef(t0id, "mk")}, proof.Unit{})}}}
}
