package bench

import (
	"fmt"

	"typecoin/internal/batch"
	"typecoin/internal/bkey"
	"typecoin/internal/client"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
	"typecoin/internal/proof"
	"typecoin/internal/testutil"
	"typecoin/internal/typecoin"
	"typecoin/internal/wire"
)

// Experiment E2 (Section 3.2): "A Bitcoin transaction takes about an
// hour to be confirmed ... a typical transaction fee is 0.0005 bitcoin
// ... in any kind of automated application it would add up quickly. To
// resolve these problems, Typecoin can be operated in batch mode."
//
// We run k credential transfers first directly on chain (one carrier,
// one fee, one confirmation wait per transfer) and then through a batch
// server (zero on-chain transactions until a single withdrawal), and
// report the on-chain cost of each.

// E2Row is one row of the E2 table.
type E2Row struct {
	Transfers     int
	Mode          string
	OnChainTxs    int
	FeesSat       int64
	BlocksAwaited int
}

// String formats the row.
func (r E2Row) String() string {
	return fmt.Sprintf("k=%-5d %-6s onchain=%-5d fees=%dsat blocks=%d",
		r.Transfers, r.Mode, r.OnChainTxs, r.FeesSat, r.BlocksAwaited)
}

// tokenProofOnChain is the proof skeleton for passing a token through.
func tokenProofOnChain(domain logic.Prop) proof.Term {
	return proof.Lam{Name: "d", Ty: domain,
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.V("a")}}}
}

func grantProof(domain logic.Prop) proof.Term {
	return proof.Lam{Name: "d", Ty: domain,
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.V("c")}}}
}

// issueToken publishes a token basis and grants the token to owner.
func issueToken(env *Env, cl *client.Client, owner *bkey.PublicKey, amount int64) (wire.OutPoint, logic.Prop, error) {
	tx := typecoin.NewTx()
	if err := tx.Basis.DeclareFam(lf.This("tok"), lf.KProp{}); err != nil {
		return wire.OutPoint{}, nil, err
	}
	tok := logic.Atom(lf.This("tok"))
	tx.Grant = tok
	tx.Outputs = []typecoin.Output{{Type: tok, Amount: amount, Owner: owner}}
	tx.Proof = grantProof(tx.Domain())
	carrier, err := cl.Submit(tx)
	if err != nil {
		return wire.OutPoint{}, nil, err
	}
	if err := env.Mine(cl.Ledger.MinConf()); err != nil {
		return wire.OutPoint{}, nil, err
	}
	global := logic.SubstRefProp(tok, lf.TxRef(carrier.TxHash(), ""))
	return wire.OutPoint{Hash: carrier.TxHash(), Index: 0}, global, nil
}

// RunE2 produces direct-mode and batch-mode rows for each k.
func RunE2(ks []int) ([]E2Row, error) {
	var rows []E2Row
	for _, k := range ks {
		direct, err := runE2Direct(k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, direct)
		batched, err := runE2Batch(k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, batched)
	}
	return rows, nil
}

func runE2Direct(k int) (E2Row, error) {
	env, err := NewEnv(fmt.Sprintf("e2-direct-%d", k), 1)
	if err != nil {
		return E2Row{}, err
	}
	if err := env.Fund(); err != nil {
		return E2Row{}, err
	}
	cl := client.New(env.Chain, env.Pool, env.Wallet, env.Ledger)
	aliceKey, err := env.Wallet.Key(env.Payout)
	if err != nil {
		return E2Row{}, err
	}
	const amount = 10_000
	op, tokGlobal, err := issueToken(env, cl, aliceKey.PubKey(), amount)
	if err != nil {
		return E2Row{}, err
	}

	row := E2Row{Transfers: k, Mode: "direct", OnChainTxs: 1, FeesSat: client.Fee, BlocksAwaited: 1}
	for i := 0; i < k; i++ {
		tx := typecoin.NewTx()
		tx.Inputs = []typecoin.Input{{Source: op, Type: tokGlobal, Amount: amount}}
		tx.Outputs = []typecoin.Output{{Type: tokGlobal, Amount: amount, Owner: aliceKey.PubKey()}}
		tx.Proof = tokenProofOnChain(tx.Domain())
		carrier, err := cl.Submit(tx)
		if err != nil {
			return E2Row{}, fmt.Errorf("transfer %d: %w", i, err)
		}
		if err := env.Mine(1); err != nil {
			return E2Row{}, err
		}
		op = wire.OutPoint{Hash: carrier.TxHash(), Index: 0}
		row.OnChainTxs++
		row.FeesSat += client.Fee
		row.BlocksAwaited++
	}
	return row, nil
}

func runE2Batch(k int) (E2Row, error) {
	env, err := NewEnv(fmt.Sprintf("e2-batch-%d", k), 1)
	if err != nil {
		return E2Row{}, err
	}
	if err := env.Fund(); err != nil {
		return E2Row{}, err
	}
	cl := client.New(env.Chain, env.Pool, env.Wallet, env.Ledger)
	serverKey, err := bkey.NewPrivateKey(testutil.NewEntropy(fmt.Sprintf("e2-server-%d", k)))
	if err != nil {
		return E2Row{}, err
	}
	server := batch.NewServer(cl, serverKey)

	alice, err := env.Wallet.NewKey()
	if err != nil {
		return E2Row{}, err
	}
	aliceKey, err := env.Wallet.Key(alice)
	if err != nil {
		return E2Row{}, err
	}

	const amount = 10_000
	// Deposit: one on-chain transaction.
	op, tokGlobal, err := issueToken(env, cl, server.Key(), amount)
	if err != nil {
		return E2Row{}, err
	}
	if err := server.Deposit(op, alice); err != nil {
		return E2Row{}, err
	}
	row := E2Row{Transfers: k, Mode: "batch", OnChainTxs: 1, FeesSat: client.Fee, BlocksAwaited: 1}

	// k off-chain transfers (Alice to herself through the server): no
	// on-chain activity at all.
	cur := op
	for i := 0; i < k; i++ {
		tx := typecoin.NewTx()
		tx.Inputs = []typecoin.Input{{Source: cur, Type: tokGlobal, Amount: amount}}
		tx.Outputs = []typecoin.Output{{Type: tokGlobal, Amount: amount, Owner: aliceKey.PubKey()}}
		tx.Proof = proof.Lam{Name: "d", Ty: tx.DomainOffChain(),
			Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
				Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
					Body: proof.V("a")}}}
		if err := server.SubmitOffChain(tx, alice); err != nil {
			return E2Row{}, fmt.Errorf("off-chain transfer %d: %w", i, err)
		}
		cur = wire.OutPoint{Hash: tx.Hash(), Index: 0}
	}

	// One withdrawal flushes everything.
	if _, _, err := server.Withdraw(cur, aliceKey.PubKey()); err != nil {
		return E2Row{}, err
	}
	if err := env.Mine(1); err != nil {
		return E2Row{}, err
	}
	row.OnChainTxs++
	row.FeesSat += client.Fee
	row.BlocksAwaited++
	return row, nil
}
