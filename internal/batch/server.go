// Package batch implements the batch-mode credential server of Section
// 3.2: "a trusted third-party maintains a credential server that holds
// Typecoin resources on behalf of other principals. When principals wish
// to conduct a batch-mode transaction, they notify the server, which
// records the transaction but does not submit it to the network."
//
// A withdrawal flushes the recorded history on chain as one Batch
// transaction (one carrier, one fee, one confirmation wait), routing the
// withdrawn resource to its owner's key and the rest back to the server's
// key. This is what experiment E2 measures: k off-chain transfers cost
// zero on-chain transactions until the single withdrawal.
//
// "Note that batch mode does not compromise the trustlessness of the
// network. No one ever needs to use a batch-mode server; batch mode only
// exploits trust relationships that happen to exist already."
package batch

import (
	"errors"
	"fmt"
	"sync"

	"typecoin/internal/bkey"
	"typecoin/internal/client"
	"typecoin/internal/logic"
	"typecoin/internal/typecoin"
	"typecoin/internal/wire"
)

// Server errors.
var (
	ErrNotDeposited = errors.New("batch: outpoint is not a deposit held by this server")
	ErrNotOwner     = errors.New("batch: principal does not own this resource")
	ErrNotHeld      = errors.New("batch: resource not held by this server")
)

// resource is one typed resource the server accounts for, on-chain
// (deposit) or off-chain (created by a recorded transaction).
type resource struct {
	prop    logic.Prop
	amount  int64
	owner   bkey.Principal // beneficial owner
	onChain bool
}

// Server is a batch-mode credential server.
type Server struct {
	client *client.Client
	key    *bkey.PrivateKey // the server's on-chain key

	mu        sync.Mutex
	resources map[wire.OutPoint]resource
	// spentDeposits remembers the on-chain deposits the recorded history
	// consumed; they become the sources of the withdrawal batch.
	spentDeposits map[wire.OutPoint]resource
	recorded      []*typecoin.Tx // off-chain history in admission order
}

// NewServer creates a server whose on-chain holdings live at key. The
// key is registered with the client's wallet so withdrawals can be
// signed.
func NewServer(c *client.Client, key *bkey.PrivateKey) *Server {
	c.Wallet.ImportKey(key)
	return &Server{
		client:        c,
		key:           key,
		resources:     make(map[wire.OutPoint]resource),
		spentDeposits: make(map[wire.OutPoint]resource),
	}
}

// Key returns the server's public key; depositors route resources to it.
func (s *Server) Key() *bkey.PublicKey { return s.key.PubKey() }

// Deposit registers an on-chain typed output as held for beneficiary.
// The output must resolve in the ledger; its carrier output must pay the
// server's key, or the server could not spend it in a withdrawal.
func (s *Server) Deposit(op wire.OutPoint, beneficiary bkey.Principal) error {
	prop, ok := s.client.Ledger.ResolveOutput(op)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotDeposited, op)
	}
	tx, ok := s.client.Chain.TxByID(op.Hash)
	if !ok || int(op.Index) >= len(tx.TxOut) {
		return fmt.Errorf("%w: %v", ErrNotDeposited, op)
	}
	amount := tx.TxOut[op.Index].Value
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resources[op] = resource{prop: prop, amount: amount, owner: beneficiary, onChain: true}
	return nil
}

// Holdings lists the outpoints beneficially owned by p.
func (s *Server) Holdings(p bkey.Principal) []wire.OutPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []wire.OutPoint
	for op, r := range s.resources {
		if r.owner == p {
			out = append(out, op)
		}
	}
	return out
}

// Query answers a validity check "based on its own records, if it holds
// the resource, or on the blockchain if it does not."
func (s *Server) Query(op wire.OutPoint) (logic.Prop, bkey.Principal, bool) {
	s.mu.Lock()
	if r, ok := s.resources[op]; ok {
		s.mu.Unlock()
		return r.prop, r.owner, true
	}
	s.mu.Unlock()
	if prop, ok := s.client.Ledger.ResolveOutput(op); ok {
		return prop, bkey.Principal{}, true
	}
	return nil, bkey.Principal{}, false
}

// SubmitOffChain records a batch-mode transaction from submitter. Every
// input must be a resource the server holds for submitter; outputs become
// resources owned by their output keys' principals. The transaction is
// validated under the off-chain restrictions but NOT sent to the network.
func (s *Server) SubmitOffChain(tx *typecoin.Tx, submitter bkey.Principal) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, in := range tx.Inputs {
		r, ok := s.resources[in.Source]
		if !ok {
			return fmt.Errorf("%w: input %d (%v)", ErrNotHeld, i, in.Source)
		}
		if r.owner != submitter {
			return fmt.Errorf("%w: input %d owned by %s", ErrNotOwner, i, r.owner)
		}
	}
	state, err := s.replayLocked()
	if err != nil {
		return err
	}
	if err := state.CheckTxOffChain(tx); err != nil {
		return err
	}
	tch, err := state.ApplyOffChain(tx)
	if err != nil {
		return err
	}
	// Record and update the resource table.
	s.recorded = append(s.recorded, tx)
	for _, in := range tx.Inputs {
		if r, ok := s.resources[in.Source]; ok && r.onChain {
			s.spentDeposits[in.Source] = r
		}
		delete(s.resources, in.Source)
	}
	for i, out := range tx.Outputs {
		op := wire.OutPoint{Hash: tch, Index: uint32(i)}
		s.resources[op] = resource{
			prop:   out.Type,
			amount: out.Amount,
			owner:  out.OwnerPrincipal(),
		}
	}
	return nil
}

// replayLocked rebuilds the off-chain state from the consumed deposits
// plus the recorded history, against the ledger's current global basis.
func (s *Server) replayLocked() (*typecoin.State, error) {
	state := typecoin.NewStateForBatch(s.client.Ledger.GlobalBasis())
	for op, r := range s.resources {
		if r.onChain {
			state.SeedOutput(op, r.prop, r.amount, s.key.Principal())
		}
	}
	for op, r := range s.spentDeposits {
		state.SeedOutput(op, r.prop, r.amount, s.key.Principal())
	}
	for _, tx := range s.recorded {
		if err := state.CheckTxOffChain(tx); err != nil {
			return nil, fmt.Errorf("batch: recorded history replay: %w", err)
		}
		if _, err := state.ApplyOffChain(tx); err != nil {
			return nil, err
		}
	}
	return state, nil
}

// Withdraw flushes the recorded history on chain, routing the resource at
// leafOp to dest and everything else back to the server's key. It returns
// the carrier transaction and the batch; the caller mines/awaits
// confirmation, after which the ledger applies the batch.
func (s *Server) Withdraw(leafOp wire.OutPoint, dest *bkey.PublicKey) (*wire.MsgTx, *typecoin.Batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.resources[leafOp]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %v", ErrNotHeld, leafOp)
	}
	if r.onChain {
		return nil, nil, errors.New("batch: resource is already on chain; spend it directly")
	}
	if dest.Principal() != r.owner {
		return nil, nil, fmt.Errorf("%w: owned by %s", ErrNotOwner, r.owner)
	}
	if len(s.recorded) == 0 {
		return nil, nil, errors.New("batch: nothing recorded")
	}

	// The batch consumes every deposit the history touched; its leaves
	// are all live off-chain resources. Untouched on-chain deposits stay
	// where they are.
	b := &typecoin.Batch{Seq: s.recorded}
	for op, rec := range s.spentDeposits {
		b.Sources = append(b.Sources, typecoin.Input{Source: op, Type: rec.prop, Amount: rec.amount})
	}
	for op, rr := range s.resources {
		if rr.onChain {
			continue
		}
		leaf := typecoin.Output{Type: rr.prop, Amount: rr.amount}
		if op == leafOp {
			leaf.Owner = dest
		} else {
			leaf.Owner = s.key.PubKey()
		}
		b.Leaves = append(b.Leaves, leaf)
		b.LeafSources = append(b.LeafSources, op)
	}

	carrier, err := s.client.SubmitBatch(b)
	if err != nil {
		return nil, nil, err
	}
	// Optimistically update: the history is flushed; leaves become
	// on-chain deposits (beneficiaries preserved, except the withdrawn
	// one, which leaves the server entirely).
	carrierID := carrier.TxHash()
	s.spentDeposits = make(map[wire.OutPoint]resource)
	s.recorded = nil
	newResources := make(map[wire.OutPoint]resource)
	for op, rr := range s.resources {
		if rr.onChain {
			newResources[op] = rr
		}
	}
	for i, src := range b.LeafSources {
		if src == leafOp {
			continue // withdrawn: no longer held
		}
		rr := s.resources[src]
		rr.onChain = true
		newResources[wire.OutPoint{Hash: carrierID, Index: uint32(i)}] = rr
	}
	s.resources = newResources
	return carrier, b, nil
}

// RecordedCount reports how many off-chain transactions are pending
// flush (bench helper).
func (s *Server) RecordedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recorded)
}
