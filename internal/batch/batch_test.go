package batch_test

import (
	"errors"
	"testing"

	"typecoin/internal/batch"
	"typecoin/internal/bkey"
	"typecoin/internal/client"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
	"typecoin/internal/proof"
	"typecoin/internal/testutil"
	"typecoin/internal/typecoin"
	"typecoin/internal/wire"
)

type env struct {
	*testutil.Harness
	Client *client.Client
	Server *batch.Server
}

func newEnv(t *testing.T) *env {
	t.Helper()
	h := testutil.NewHarness(t, t.Name())
	h.Fund(t)
	ledger := typecoin.NewLedger(h.Chain, 1)
	c := client.New(h.Chain, h.Pool, h.Wallet, ledger)
	serverKey, err := bkey.NewPrivateKey(testutil.NewEntropy(t.Name() + "-server"))
	if err != nil {
		t.Fatal(err)
	}
	return &env{Harness: h, Client: c, Server: batch.NewServer(c, serverKey)}
}

// issueCoins publishes the coin basis and grants `n` coins to owner
// (routed to ownerKey), returning the outpoint, the global coin ref and
// the coin proposition.
func issueCoins(t *testing.T, e *env, n uint64, ownerKey *bkey.PublicKey) (wire.OutPoint, lf.Ref) {
	t.Helper()
	tx := typecoin.NewTx()
	if err := tx.Basis.DeclareFam(lf.This("coin"), lf.KArrow(lf.NatFam, lf.KProp{})); err != nil {
		t.Fatal(err)
	}
	// split/merge rules as in Section 6.
	coinP := func(m lf.Term) logic.Prop { return logic.Atom(lf.This("coin"), m) }
	split := logic.Forall("N", lf.NatFam, logic.Forall("M", lf.NatFam, logic.Forall("P", lf.NatFam,
		logic.Lolli(
			logic.Exists("x", lf.FamApp(lf.PlusFam, lf.Var(2, "N"), lf.Var(1, "M"), lf.Var(0, "P")), logic.One),
			coinP(lf.Var(0, "P")),
			logic.Tensor(coinP(lf.Var(2, "N")), coinP(lf.Var(1, "M"))),
		))))
	if err := tx.Basis.DeclareProp(lf.This("split"), split); err != nil {
		t.Fatal(err)
	}
	merge := logic.Forall("N", lf.NatFam, logic.Forall("M", lf.NatFam, logic.Forall("P", lf.NatFam,
		logic.Lolli(
			logic.Exists("x", lf.FamApp(lf.PlusFam, lf.Var(2, "N"), lf.Var(1, "M"), lf.Var(0, "P")), logic.One),
			logic.Tensor(coinP(lf.Var(2, "N")), coinP(lf.Var(1, "M"))),
			coinP(lf.Var(0, "P")),
		))))
	if err := tx.Basis.DeclareProp(lf.This("merge"), merge); err != nil {
		t.Fatal(err)
	}
	tx.Grant = coinP(lf.Nat(n))
	tx.Outputs = []typecoin.Output{{Type: coinP(lf.Nat(n)), Amount: 10_000, Owner: ownerKey}}
	tx.Proof = proof.Lam{Name: "d", Ty: tx.Domain(),
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.V("c")}}}
	carrier, err := e.Client.Submit(tx)
	if err != nil {
		t.Fatalf("issue: %v", err)
	}
	e.MineBlocks(t, 1)
	if !e.Client.Ledger.Applied(carrier.TxHash()) {
		t.Fatal("issue tx not applied")
	}
	return wire.OutPoint{Hash: carrier.TxHash(), Index: 0}, lf.TxRef(carrier.TxHash(), "coin")
}

// offChainTransfer builds the off-chain transaction moving a coin P
// resource wholesale from one holding to a new owner.
func offChainTransfer(src wire.OutPoint, prop logic.Prop, amount int64, to *bkey.PublicKey) *typecoin.Tx {
	tx := typecoin.NewTx()
	tx.Inputs = []typecoin.Input{{Source: src, Type: prop, Amount: amount}}
	tx.Outputs = []typecoin.Output{{Type: prop, Amount: amount, Owner: to}}
	tx.Proof = proof.Lam{Name: "d", Ty: tx.DomainOffChain(),
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.V("a")}}}
	return tx
}

func TestBatchLifecycle(t *testing.T) {
	e := newEnv(t)
	// Alice deposits 100 coins at the server.
	aliceP, alicePub, err := e.Client.NewPrincipal()
	if err != nil {
		t.Fatal(err)
	}
	_, bobPub, err := e.Client.NewPrincipal()
	if err != nil {
		t.Fatal(err)
	}
	bobP := bobPub.Principal()

	// Issue coins directly to the server key (Alice "sends it to the
	// server's public key").
	depositOp, coinRef := issueCoins(t, e, 100, e.Server.Key())
	coin100 := logic.Atom(coinRef, lf.Nat(100))
	if err := e.Server.Deposit(depositOp, aliceP); err != nil {
		t.Fatalf("deposit: %v", err)
	}

	// Query: server answers from its records.
	prop, owner, ok := e.Server.Query(depositOp)
	if !ok || owner != aliceP {
		t.Fatalf("query: ok=%v owner=%s", ok, owner)
	}
	if eq, _ := logic.PropEqual(prop, coin100); !eq {
		t.Fatalf("query type %s", prop)
	}

	// Alice transfers the whole resource to Bob off-chain: no on-chain
	// transaction occurs.
	poolBefore := e.Pool.Size()
	transfer := offChainTransfer(depositOp, coin100, 10_000, bobPub)
	if err := e.Server.SubmitOffChain(transfer, aliceP); err != nil {
		t.Fatalf("off-chain transfer: %v", err)
	}
	if e.Pool.Size() != poolBefore {
		t.Error("off-chain transfer touched the mempool")
	}
	if e.Server.RecordedCount() != 1 {
		t.Errorf("recorded = %d", e.Server.RecordedCount())
	}
	// Bob now owns it; Alice cannot spend it again.
	virtual := wire.OutPoint{Hash: transfer.Hash(), Index: 0}
	if _, owner, ok := e.Server.Query(virtual); !ok || owner != bobP {
		t.Fatalf("virtual holding: ok=%v owner=%s", ok, owner)
	}
	again := offChainTransfer(depositOp, coin100, 10_000, alicePub)
	if err := e.Server.SubmitOffChain(again, aliceP); !errors.Is(err, batch.ErrNotHeld) {
		t.Errorf("double off-chain spend: %v", err)
	}
	// Bob chains a second off-chain transfer back to Alice.
	back := offChainTransfer(virtual, coin100, 10_000, alicePub)
	if err := e.Server.SubmitOffChain(back, bobP); err != nil {
		t.Fatalf("second transfer: %v", err)
	}
	virtual2 := wire.OutPoint{Hash: back.Hash(), Index: 0}

	// Alice withdraws: one carrier hits the chain.
	carrier, b, err := e.Server.Withdraw(virtual2, alicePub)
	if err != nil {
		t.Fatalf("withdraw: %v", err)
	}
	if len(b.Seq) != 2 || len(b.Sources) != 1 || len(b.Leaves) != 1 {
		t.Fatalf("batch shape: seq=%d sources=%d leaves=%d", len(b.Seq), len(b.Sources), len(b.Leaves))
	}
	e.MineBlocks(t, 1)
	if !e.Client.Ledger.Applied(carrier.TxHash()) {
		t.Fatal("batch not applied by ledger")
	}
	// The withdrawn resource is on chain, owned by Alice, with the coin
	// type.
	newOp := wire.OutPoint{Hash: carrier.TxHash(), Index: 0}
	got, ok := e.Client.Ledger.ResolveOutput(newOp)
	if !ok {
		t.Fatal("withdrawn output unknown")
	}
	if eq, _ := logic.PropEqual(got, coin100); !eq {
		t.Fatalf("withdrawn type %s", got)
	}
	// Trust-free verification of the withdrawn output, batch included.
	if err := e.Client.VerifyClaim(newOp, coin100); err != nil {
		t.Fatalf("verify withdrawn claim: %v", err)
	}
	// The server no longer holds anything.
	if len(e.Server.Holdings(aliceP))+len(e.Server.Holdings(bobP)) != 0 {
		t.Error("server still holds resources after withdrawal")
	}
	if e.Server.RecordedCount() != 0 {
		t.Error("recorded history not flushed")
	}
}

func TestOffChainRestrictions(t *testing.T) {
	e := newEnv(t)
	aliceP, _, err := e.Client.NewPrincipal()
	if err != nil {
		t.Fatal(err)
	}
	_, bobPub, err := e.Client.NewPrincipal()
	if err != nil {
		t.Fatal(err)
	}
	depositOp, coinRef := issueCoins(t, e, 42, e.Server.Key())
	coin42 := logic.Atom(coinRef, lf.Nat(42))
	if err := e.Server.Deposit(depositOp, aliceP); err != nil {
		t.Fatal(err)
	}

	// A basis declaration is rejected off-chain.
	tx := offChainTransfer(depositOp, coin42, 10_000, bobPub)
	if err := tx.Basis.DeclareFam(lf.This("x"), lf.KProp{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Server.SubmitOffChain(tx, aliceP); !errors.Is(err, typecoin.ErrOffChainBasis) {
		t.Errorf("basis: %v", err)
	}

	// A grant is rejected off-chain.
	tx2 := offChainTransfer(depositOp, coin42, 10_000, bobPub)
	tx2.Grant = coin42
	if err := e.Server.SubmitOffChain(tx2, aliceP); !errors.Is(err, typecoin.ErrOffChainGrant) {
		t.Errorf("grant: %v", err)
	}

	// A non-trivial condition is rejected off-chain (write-through rule).
	tx3 := offChainTransfer(depositOp, coin42, 10_000, bobPub)
	tx3.Proof = proof.Lam{Name: "d", Ty: tx3.DomainOffChain(),
		Body: proof.LetPair{LName: "ca", RName: "r", Of: proof.V("d"),
			Body: proof.LetPair{LName: "c", RName: "a", Of: proof.V("ca"),
				Body: proof.IfReturn{Cond: logic.Before(1 << 40), Of: proof.V("a")}}}}
	if err := e.Server.SubmitOffChain(tx3, aliceP); !errors.Is(err, typecoin.ErrOffChainCond) {
		t.Errorf("condition: %v", err)
	}

	// Submitting someone else's resource is rejected.
	tx4 := offChainTransfer(depositOp, coin42, 10_000, bobPub)
	if err := e.Server.SubmitOffChain(tx4, bobPub.Principal()); !errors.Is(err, batch.ErrNotOwner) {
		t.Errorf("ownership: %v", err)
	}
}

func TestWithdrawErrors(t *testing.T) {
	e := newEnv(t)
	aliceP, alicePub, err := e.Client.NewPrincipal()
	if err != nil {
		t.Fatal(err)
	}
	_, bobPub, err := e.Client.NewPrincipal()
	if err != nil {
		t.Fatal(err)
	}
	depositOp, coinRef := issueCoins(t, e, 7, e.Server.Key())
	coin7 := logic.Atom(coinRef, lf.Nat(7))
	if err := e.Server.Deposit(depositOp, aliceP); err != nil {
		t.Fatal(err)
	}
	// Withdrawing an on-chain deposit is refused (spend it directly).
	if _, _, err := e.Server.Withdraw(depositOp, alicePub); err == nil {
		t.Error("withdrew an on-chain deposit")
	}
	// Unknown outpoint.
	if _, _, err := e.Server.Withdraw(wire.OutPoint{Index: 9}, alicePub); !errors.Is(err, batch.ErrNotHeld) {
		t.Errorf("unknown: %v", err)
	}
	// Wrong destination owner.
	transfer := offChainTransfer(depositOp, coin7, 10_000, bobPub)
	if err := e.Server.SubmitOffChain(transfer, aliceP); err != nil {
		t.Fatal(err)
	}
	virtual := wire.OutPoint{Hash: transfer.Hash(), Index: 0}
	if _, _, err := e.Server.Withdraw(virtual, alicePub); !errors.Is(err, batch.ErrNotOwner) {
		t.Errorf("wrong dest: %v", err)
	}
}

// TestWithdrawPreservesOthers: flushing the history routes the withdrawn
// resource to its owner and everything else back to the server's key —
// other principals' holdings survive on-chain and stay credited.
func TestWithdrawPreservesOthers(t *testing.T) {
	e := newEnv(t)
	aliceP, alicePub, err := e.Client.NewPrincipal()
	if err != nil {
		t.Fatal(err)
	}
	bobP, _, err := e.Client.NewPrincipal()
	if err != nil {
		t.Fatal(err)
	}
	// Two separate deposits: one for Alice, one for Bob.
	opA, coinRefA := issueCoins(t, e, 10, e.Server.Key())
	coinA := logic.Atom(coinRefA, lf.Nat(10))
	if err := e.Server.Deposit(opA, aliceP); err != nil {
		t.Fatal(err)
	}
	opB, coinRefB := issueCoins(t, e, 20, e.Server.Key())
	coinB := logic.Atom(coinRefB, lf.Nat(20))
	if err := e.Server.Deposit(opB, bobP); err != nil {
		t.Fatal(err)
	}
	// Both go off-chain (self-transfers create virtual holdings).
	ta := offChainTransfer(opA, coinA, 10_000, alicePub)
	if err := e.Server.SubmitOffChain(ta, aliceP); err != nil {
		t.Fatal(err)
	}
	bobKeyHolder, err := e.Wallet.Key(bobP)
	if err != nil {
		t.Fatal(err)
	}
	tb := offChainTransfer(opB, coinB, 10_000, bobKeyHolder.PubKey())
	if err := e.Server.SubmitOffChain(tb, bobP); err != nil {
		t.Fatal(err)
	}
	va := wire.OutPoint{Hash: ta.Hash(), Index: 0}
	vb := wire.OutPoint{Hash: tb.Hash(), Index: 0}

	// Alice withdraws; Bob's resource must survive.
	carrier, b, err := e.Server.Withdraw(va, alicePub)
	if err != nil {
		t.Fatalf("withdraw: %v", err)
	}
	if len(b.Leaves) != 2 {
		t.Fatalf("leaves = %d, want 2 (withdrawn + preserved)", len(b.Leaves))
	}
	e.MineBlocks(t, 1)
	if !e.Client.Ledger.Applied(carrier.TxHash()) {
		t.Fatal("batch not applied")
	}
	// Bob's holding is re-deposited on chain at the server key and still
	// credited to Bob.
	holdings := e.Server.Holdings(bobP)
	if len(holdings) != 1 {
		t.Fatalf("bob holdings = %d, want 1", len(holdings))
	}
	prop, owner, ok := e.Server.Query(holdings[0])
	if !ok || owner != bobP {
		t.Fatalf("query bob holding: ok=%v owner=%s", ok, owner)
	}
	if eq, _ := logic.PropEqual(prop, coinB); !eq {
		t.Errorf("bob holding type %s", prop)
	}
	// And the on-chain leaf resolves in the ledger with Bob's coin type.
	got, ok := e.Client.Ledger.ResolveOutput(holdings[0])
	if !ok {
		t.Fatal("preserved leaf not on chain")
	}
	if eq, _ := logic.PropEqual(got, coinB); !eq {
		t.Errorf("preserved leaf type %s", got)
	}
	_ = vb
}
