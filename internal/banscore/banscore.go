// Package banscore tracks peer misbehavior: a decaying score per
// network address, a timed ban once the score crosses a threshold, and
// persistence of the ban table through the store seam so bans survive
// restarts.
//
// The paper's commitment guarantees assume the underlying Bitcoin
// network stays live against adversarial participants; scoring plus
// banning is the standard mechanism (cf. bitcoind's banman) by which an
// honest node stops spending resources on a peer that keeps sending
// invalid or unsolicited data. Scores decay exponentially so honest
// peers that occasionally trip a penalty (a corrupted frame on a lossy
// link, a block that lost a race) drift back to zero instead of
// accumulating toward a ban.
package banscore

import (
	"encoding/binary"
	"math"
	"sync"
	"time"

	"typecoin/internal/clock"
	"typecoin/internal/store"
)

// banKeyPrefix namespaces the persisted ban table in the node's store:
// "nb" + address -> little-endian uint64 UnixNano expiry. The prefix is
// disjoint from every chain/wallet/ledger/mempool prefix.
const banKeyPrefix = "nb"

// Config tunes the keeper. Zero values select the defaults.
type Config struct {
	// Threshold is the score at which an address is banned.
	Threshold int32
	// BanDuration is how long a triggered ban lasts.
	BanDuration time.Duration
	// HalfLife is the score decay half-life.
	HalfLife time.Duration
}

// Defaults used for zero Config fields.
const (
	DefaultThreshold   = 100
	DefaultBanDuration = time.Hour
	DefaultHalfLife    = 10 * time.Minute
)

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	if c.BanDuration <= 0 {
		c.BanDuration = DefaultBanDuration
	}
	if c.HalfLife <= 0 {
		c.HalfLife = DefaultHalfLife
	}
	return c
}

// decayScore is a score observed at a moment; the effective value at
// any later time is value * 0.5^(elapsed/halfLife).
type decayScore struct {
	value float64
	last  time.Time
}

// Keeper maintains misbehavior scores and the ban table. All methods
// are safe for concurrent use. Time comes from the injected clock, so
// under the simulator decay and ban expiry run on virtual time.
type Keeper struct {
	mu  sync.Mutex
	clk clock.Clock
	cfg Config

	scores map[string]*decayScore
	bans   map[string]time.Time // addr -> expiry
	st     store.Store          // optional ban persistence
}

// New creates a keeper on the given clock.
func New(clk clock.Clock, cfg Config) *Keeper {
	return &Keeper{
		clk:    clk,
		cfg:    cfg.withDefaults(),
		scores: make(map[string]*decayScore),
		bans:   make(map[string]time.Time),
	}
}

// AttachStore loads the persisted ban table from st (pruning entries
// that expired while the node was down) and persists subsequent ban
// changes to it.
func (k *Keeper) AttachStore(st store.Store) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	now := k.clk.Now()
	expired := store.NewBatch()
	err := st.Iterate([]byte(banKeyPrefix), func(key, value []byte) error {
		addr := string(key[len(banKeyPrefix):])
		if len(value) != 8 {
			expired.Delete(key)
			return nil
		}
		until := time.Unix(0, int64(binary.LittleEndian.Uint64(value)))
		if !until.After(now) {
			expired.Delete(key)
			return nil
		}
		k.bans[addr] = until
		return nil
	})
	if err != nil {
		return err
	}
	if expired.Len() > 0 {
		if err := st.Apply(expired); err != nil {
			return err
		}
	}
	k.st = st
	return nil
}

// persistBanLocked writes or clears one ban row; best-effort (a store
// error must not take down the network layer — the in-memory ban still
// holds for this process).
func (k *Keeper) persistBanLocked(addr string, until time.Time, delete bool) {
	if k.st == nil {
		return
	}
	b := store.NewBatch()
	key := append([]byte(banKeyPrefix), addr...)
	if delete {
		b.Delete(key)
	} else {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], uint64(until.UnixNano()))
		b.Put(key, v[:])
	}
	_ = k.st.Apply(b)
}

// decayedLocked returns addr's current effective score.
func (k *Keeper) decayedLocked(addr string, now time.Time) float64 {
	s, ok := k.scores[addr]
	if !ok {
		return 0
	}
	elapsed := now.Sub(s.last)
	if elapsed <= 0 {
		return s.value
	}
	v := s.value * math.Pow(0.5, float64(elapsed)/float64(k.cfg.HalfLife))
	if v < 0.5 {
		delete(k.scores, addr)
		return 0
	}
	s.value, s.last = v, now
	return v
}

// Penalize adds points to addr's decayed score. When the score reaches
// the threshold the address is banned for the configured duration, the
// score resets, and banned=true is returned alongside the score that
// triggered it.
func (k *Keeper) Penalize(addr string, points int32) (score int32, banned bool) {
	if points <= 0 {
		return k.Score(addr), false
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	now := k.clk.Now()
	v := k.decayedLocked(addr, now) + float64(points)
	if v >= float64(k.cfg.Threshold) {
		delete(k.scores, addr)
		until := now.Add(k.cfg.BanDuration)
		k.bans[addr] = until
		k.persistBanLocked(addr, until, false)
		return int32(v), true
	}
	k.scores[addr] = &decayScore{value: v, last: now}
	return int32(v), false
}

// Score returns addr's current effective score.
func (k *Keeper) Score(addr string) int32 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return int32(k.decayedLocked(addr, k.clk.Now()))
}

// Ban bans addr for d (the configured duration when d <= 0),
// independent of its score.
func (k *Keeper) Ban(addr string, d time.Duration) {
	if d <= 0 {
		d = k.cfg.BanDuration
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	until := k.clk.Now().Add(d)
	k.bans[addr] = until
	delete(k.scores, addr)
	k.persistBanLocked(addr, until, false)
}

// Unban lifts any ban on addr.
func (k *Keeper) Unban(addr string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.bans[addr]; ok {
		delete(k.bans, addr)
		k.persistBanLocked(addr, time.Time{}, true)
	}
}

// IsBanned reports whether addr is currently banned. An expired ban is
// cleared (including its persisted row) as a side effect.
func (k *Keeper) IsBanned(addr string) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	until, ok := k.bans[addr]
	if !ok {
		return false
	}
	if !until.After(k.clk.Now()) {
		delete(k.bans, addr)
		k.persistBanLocked(addr, time.Time{}, true)
		return false
	}
	return true
}

// BannedUntil returns the ban expiry for addr, if banned.
func (k *Keeper) BannedUntil(addr string) (time.Time, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	until, ok := k.bans[addr]
	if !ok || !until.After(k.clk.Now()) {
		return time.Time{}, false
	}
	return until, true
}

// Banned returns the currently banned addresses.
func (k *Keeper) Banned() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	now := k.clk.Now()
	out := make([]string, 0, len(k.bans))
	for addr, until := range k.bans {
		if until.After(now) {
			out = append(out, addr)
		}
	}
	return out
}
