package banscore

import (
	"testing"
	"time"

	"typecoin/internal/clock"
	"typecoin/internal/store"
)

func newTestKeeper(cfg Config) (*Keeper, *clock.Simulated) {
	clk := clock.NewSimulated(time.Unix(1_700_000_000, 0))
	return New(clk, cfg), clk
}

func TestPenalizeAccumulatesAndBans(t *testing.T) {
	k, _ := newTestKeeper(Config{Threshold: 100, BanDuration: time.Hour})
	if score, banned := k.Penalize("peer", 40); banned || score != 40 {
		t.Fatalf("first penalty: score=%d banned=%v", score, banned)
	}
	if score, banned := k.Penalize("peer", 40); banned || score != 80 {
		t.Fatalf("second penalty: score=%d banned=%v", score, banned)
	}
	if _, banned := k.Penalize("peer", 40); !banned {
		t.Fatal("third penalty should cross threshold and ban")
	}
	if !k.IsBanned("peer") {
		t.Fatal("peer should be banned")
	}
	if k.Score("peer") != 0 {
		t.Fatalf("score should reset on ban, got %d", k.Score("peer"))
	}
	if k.IsBanned("other") {
		t.Fatal("unrelated address banned")
	}
}

func TestScoreDecay(t *testing.T) {
	k, clk := newTestKeeper(Config{Threshold: 100, HalfLife: 10 * time.Minute})
	k.Penalize("peer", 80)
	clk.Advance(10 * time.Minute)
	if got := k.Score("peer"); got != 40 {
		t.Fatalf("after one half-life: score = %d, want 40", got)
	}
	clk.Advance(10 * time.Minute)
	if got := k.Score("peer"); got != 20 {
		t.Fatalf("after two half-lives: score = %d, want 20", got)
	}
	// Decayed scores should not ban when fresh points stay below the
	// threshold.
	if _, banned := k.Penalize("peer", 50); banned {
		t.Fatal("decayed 20 + 50 should not ban at threshold 100")
	}
	// Tiny residues vanish entirely.
	clk.Advance(24 * time.Hour)
	if got := k.Score("peer"); got != 0 {
		t.Fatalf("score should fully decay, got %d", got)
	}
}

func TestBanExpiry(t *testing.T) {
	k, clk := newTestKeeper(Config{Threshold: 10, BanDuration: time.Hour})
	k.Penalize("peer", 10)
	if !k.IsBanned("peer") {
		t.Fatal("should be banned")
	}
	until, ok := k.BannedUntil("peer")
	if !ok || until.Sub(clk.Now()) != time.Hour {
		t.Fatalf("BannedUntil = %v, %v", until, ok)
	}
	clk.Advance(time.Hour + time.Second)
	if k.IsBanned("peer") {
		t.Fatal("ban should have expired")
	}
	if _, ok := k.BannedUntil("peer"); ok {
		t.Fatal("BannedUntil after expiry")
	}
}

func TestManualBanAndUnban(t *testing.T) {
	k, _ := newTestKeeper(Config{})
	k.Ban("peer", 30*time.Minute)
	if !k.IsBanned("peer") {
		t.Fatal("manual ban missing")
	}
	if got := k.Banned(); len(got) != 1 || got[0] != "peer" {
		t.Fatalf("Banned() = %v", got)
	}
	k.Unban("peer")
	if k.IsBanned("peer") {
		t.Fatal("unban did not lift ban")
	}
}

func TestBanPersistence(t *testing.T) {
	st := store.NewMem()
	clk := clock.NewSimulated(time.Unix(1_700_000_000, 0))

	k := New(clk, Config{Threshold: 10, BanDuration: time.Hour})
	if err := k.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	k.Penalize("evil", 10)
	k.Ban("worse", 2*time.Hour)
	k.Ban("brief", time.Minute)

	// A fresh keeper over the same store sees the surviving bans.
	clk.Advance(30 * time.Minute) // "brief" expires while "down"
	k2 := New(clk, Config{})
	if err := k2.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if !k2.IsBanned("evil") || !k2.IsBanned("worse") {
		t.Fatal("persisted bans not reloaded")
	}
	if k2.IsBanned("brief") {
		t.Fatal("expired ban survived reload")
	}
	// Expired rows are pruned from the store during reload.
	if ok, _ := st.Has([]byte("nbbrief")); ok {
		t.Fatal("expired ban row not pruned")
	}

	// Unban clears the persisted row too.
	k2.Unban("evil")
	k3 := New(clk, Config{})
	if err := k3.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if k3.IsBanned("evil") {
		t.Fatal("unban did not clear persisted row")
	}
	if !k3.IsBanned("worse") {
		t.Fatal("unrelated persisted ban lost")
	}
}

func TestBucket(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	b := NewBucket(10, 5) // 10 tokens/s, burst 5

	// Burst drains.
	for i := 0; i < 5; i++ {
		if !b.Take(now, 1) {
			t.Fatalf("take %d within burst failed", i)
		}
	}
	if b.Take(now, 1) {
		t.Fatal("take beyond burst succeeded")
	}

	// Refill at rate.
	now = now.Add(200 * time.Millisecond) // +2 tokens
	if !b.Take(now, 2) {
		t.Fatal("refilled tokens missing")
	}
	if b.Take(now, 1) {
		t.Fatal("over-refill")
	}

	// Level caps at burst.
	now = now.Add(time.Hour)
	if !b.Take(now, 5) {
		t.Fatal("full burst after long idle")
	}
	if b.Take(now, 1) {
		t.Fatal("burst cap exceeded")
	}

	// Disabled bucket always admits.
	d := NewBucket(0, 0)
	for i := 0; i < 1000; i++ {
		if !d.Take(now, 100) {
			t.Fatal("disabled bucket refused")
		}
	}
}
