package banscore

import "time"

// Bucket is a token bucket for per-peer rate limiting: capacity burst,
// refilled at rate tokens per second. It is not self-locking — each
// peer owns its buckets and takes from them on its own read loop, so
// callers needing cross-goroutine access must wrap it.
//
// Refill is driven by the caller-supplied now, which under the
// simulator is virtual time: a scenario that advances the clock slowly
// while pumping frames exhausts the burst and starts reporting
// violations, exactly the resource-bound behavior the adversarial
// tests assert.
type Bucket struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	level float64
	last  time.Time
}

// NewBucket returns a full bucket. A non-positive rate or burst
// disables limiting: Take always succeeds.
func NewBucket(rate, burst float64) *Bucket {
	return &Bucket{rate: rate, burst: burst, level: burst}
}

// Take refills for the elapsed time and consumes n tokens, reporting
// whether the bucket held them. On failure nothing is consumed.
func (b *Bucket) Take(now time.Time, n float64) bool {
	if b.rate <= 0 || b.burst <= 0 {
		return true
	}
	if b.last.IsZero() {
		b.last = now
	}
	if elapsed := now.Sub(b.last); elapsed > 0 {
		b.level += elapsed.Seconds() * b.rate
		if b.level > b.burst {
			b.level = b.burst
		}
	}
	b.last = now
	if b.level < n {
		return false
	}
	b.level -= n
	return true
}
