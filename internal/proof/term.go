// Package proof implements the proof terms of the Typecoin logic and the
// proof-term typing judgement T; Sigma; Psi; Gamma; Delta |- M : A
// (paper, Appendix A): the standard terms of dual intuitionistic affine
// logic plus the affirmation monad (sayreturn/saybind, assert/assert!)
// and the conditional monad (ifreturn/ifbind/ifweaken/if-say).
//
// The checker enforces affinity by usage tracking: every affine
// hypothesis may be consumed at most once, and weakening is free. It also
// verifies the digital signatures carried by assert and assert!: an
// affine assert signs the enclosing transaction (so it cannot be lifted
// out of it — replay protection), while a persistent assert! signs only
// the proposition.
package proof

import (
	"typecoin/internal/bkey"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
)

// Term is a proof term.
type Term interface {
	isTerm()
	String() string
}

// Var references a hypothesis (affine or persistent) by name.
type Var struct{ Name string }

// Const references a persistent proof constant declared in a basis (for
// example the newcoin merge/split rules).
type Const struct{ Ref lf.Ref }

// Lam is lolli introduction: \x:A. M.
type Lam struct {
	Name string
	Ty   logic.Prop
	Body Term
}

// App is lolli elimination.
type App struct{ Fn, Arg Term }

// Pair is tensor introduction: M (x) N.
type Pair struct{ L, R Term }

// LetPair is tensor elimination: let x (x) y = M in N.
type LetPair struct {
	LName, RName string
	Of           Term
	Body         Term
}

// Unit is the introduction of 1.
type Unit struct{}

// LetUnit is the elimination of 1: let * = M in N.
type LetUnit struct{ Of, Body Term }

// WithPair is alternative-conjunction introduction: <M, N>. Both
// components may consume the same resources, since only one will be
// used.
type WithPair struct{ L, R Term }

// Fst projects the first component of A & B.
type Fst struct{ Of Term }

// Snd projects the second component of A & B.
type Snd struct{ Of Term }

// Inl injects into A (+) B; As is the full sum proposition.
type Inl struct {
	Of Term
	As logic.Prop
}

// Inr injects into A (+) B; As is the full sum proposition.
type Inr struct {
	Of Term
	As logic.Prop
}

// Case eliminates A (+) B.
type Case struct {
	Of           Term
	LName, RName string
	L, R         Term
}

// Abort eliminates 0; As is the resulting proposition.
type Abort struct {
	Of Term
	As logic.Prop
}

// BangI is exponential introduction: !M. The body may use no affine
// resources.
type BangI struct{ Of Term }

// LetBang is exponential elimination: let !x = M in N; x becomes a
// persistent hypothesis.
type LetBang struct {
	Name string
	Of   Term
	Body Term
}

// TLam is universal introduction: /\u:tau. M.
type TLam struct {
	Hint string
	Ty   lf.Family
	Body Term
}

// TApp is universal elimination: M [m].
type TApp struct {
	Fn  Term
	Arg lf.Term
}

// Pack is existential introduction: pack(m, M) as some u:tau. A.
type Pack struct {
	Witness lf.Term
	Of      Term
	As      logic.Prop
}

// Unpack is existential elimination: let (u, x) = M in N.
type Unpack struct {
	Hint string // LF variable name
	Name string // proof variable name
	Of   Term
	Body Term
}

// SayReturn is the affirmation monad unit: sayreturn_m(M), proving <m>A
// from A — "every principal affirms everything provable".
type SayReturn struct {
	Prin lf.Term
	Of   Term
}

// SayBind is the affirmation monad bind: saybind x <- M in N, proving
// <m>B from <m>A when N proves <m>B under x:A.
type SayBind struct {
	Name string
	Of   Term
	Body Term
}

// Assert is a primitive affirmation <K>A backed by a digital signature.
// When Persistent is false (assert), the signature covers the proposition
// and the enclosing transaction minus its proof term, so the affirmation
// cannot be replayed in another transaction. When Persistent is true
// (assert!), the signature covers only the proposition, so the
// affirmation is portable.
type Assert struct {
	Key        *bkey.PublicKey
	Prop       logic.Prop
	Sig        *bkey.Signature
	Persistent bool
}

// IfReturn is the conditional monad unit: ifreturn_phi(M), weakening A to
// if(phi, A).
type IfReturn struct {
	Cond logic.Cond
	Of   Term
}

// IfBind is the conditional monad bind: ifbind x <- M in N, combining
// if(phi,A) with x:A |- N : if(phi,B).
type IfBind struct {
	Name string
	Of   Term
	Body Term
}

// IfWeaken converts if(phi',A) to if(phi,A) provided phi entails phi'.
type IfWeaken struct {
	Cond logic.Cond
	Of   Term
}

// IfSay commutes the two monads: <m>if(phi,A) to if(phi,<m>A). "The
// opposite direction is semantically dubious and we do not include it."
type IfSay struct{ Of Term }

func (Var) isTerm()       {}
func (Const) isTerm()     {}
func (Lam) isTerm()       {}
func (App) isTerm()       {}
func (Pair) isTerm()      {}
func (LetPair) isTerm()   {}
func (Unit) isTerm()      {}
func (LetUnit) isTerm()   {}
func (WithPair) isTerm()  {}
func (Fst) isTerm()       {}
func (Snd) isTerm()       {}
func (Inl) isTerm()       {}
func (Inr) isTerm()       {}
func (Case) isTerm()      {}
func (Abort) isTerm()     {}
func (BangI) isTerm()     {}
func (LetBang) isTerm()   {}
func (TLam) isTerm()      {}
func (TApp) isTerm()      {}
func (Pack) isTerm()      {}
func (Unpack) isTerm()    {}
func (SayReturn) isTerm() {}
func (SayBind) isTerm()   {}
func (Assert) isTerm()    {}
func (IfReturn) isTerm()  {}
func (IfBind) isTerm()    {}
func (IfWeaken) isTerm()  {}
func (IfSay) isTerm()     {}

// V is shorthand for a variable reference.
func V(name string) Term { return Var{Name: name} }

// Apply builds left-nested applications.
func Apply(fn Term, args ...Term) Term {
	for _, a := range args {
		fn = App{Fn: fn, Arg: a}
	}
	return fn
}

// TApply builds left-nested index-term applications M [m1] [m2] ...
func TApply(fn Term, args ...lf.Term) Term {
	for _, a := range args {
		fn = TApp{Fn: fn, Arg: a}
	}
	return fn
}

// Let is the derived form let x = M in N, implemented as (\x:A. N) M.
// The type annotation is required for checking.
func Let(name string, ty logic.Prop, of, body Term) Term {
	return App{Fn: Lam{Name: name, Ty: ty, Body: body}, Arg: of}
}

// Tensor builds a left-nested chain of tensor pairs matching
// logic.Tensor: Tensor(a, b, c) pairs ((a, b), c). An empty call is Unit.
func TensorIntro(terms ...Term) Term {
	if len(terms) == 0 {
		return Unit{}
	}
	out := terms[0]
	for _, t := range terms[1:] {
		out = Pair{L: out, R: t}
	}
	return out
}

// CollectRefs calls fn for every constant reference in the proof term,
// including those inside embedded propositions and index terms.
func CollectRefs(m Term, fn func(lf.Ref)) {
	switch m := m.(type) {
	case Var, Unit:
	case Const:
		fn(m.Ref)
	case Lam:
		logic.CollectPropRefs(m.Ty, fn)
		CollectRefs(m.Body, fn)
	case App:
		CollectRefs(m.Fn, fn)
		CollectRefs(m.Arg, fn)
	case Pair:
		CollectRefs(m.L, fn)
		CollectRefs(m.R, fn)
	case LetPair:
		CollectRefs(m.Of, fn)
		CollectRefs(m.Body, fn)
	case LetUnit:
		CollectRefs(m.Of, fn)
		CollectRefs(m.Body, fn)
	case WithPair:
		CollectRefs(m.L, fn)
		CollectRefs(m.R, fn)
	case Fst:
		CollectRefs(m.Of, fn)
	case Snd:
		CollectRefs(m.Of, fn)
	case Inl:
		logic.CollectPropRefs(m.As, fn)
		CollectRefs(m.Of, fn)
	case Inr:
		logic.CollectPropRefs(m.As, fn)
		CollectRefs(m.Of, fn)
	case Case:
		CollectRefs(m.Of, fn)
		CollectRefs(m.L, fn)
		CollectRefs(m.R, fn)
	case Abort:
		logic.CollectPropRefs(m.As, fn)
		CollectRefs(m.Of, fn)
	case BangI:
		CollectRefs(m.Of, fn)
	case LetBang:
		CollectRefs(m.Of, fn)
		CollectRefs(m.Body, fn)
	case TLam:
		lf.CollectFamilyRefs(m.Ty, fn)
		CollectRefs(m.Body, fn)
	case TApp:
		CollectRefs(m.Fn, fn)
		lf.CollectRefs(m.Arg, fn)
	case Pack:
		lf.CollectRefs(m.Witness, fn)
		logic.CollectPropRefs(m.As, fn)
		CollectRefs(m.Of, fn)
	case Unpack:
		CollectRefs(m.Of, fn)
		CollectRefs(m.Body, fn)
	case SayReturn:
		lf.CollectRefs(m.Prin, fn)
		CollectRefs(m.Of, fn)
	case SayBind:
		CollectRefs(m.Of, fn)
		CollectRefs(m.Body, fn)
	case Assert:
		logic.CollectPropRefs(m.Prop, fn)
	case IfReturn:
		logic.CollectCondRefs(m.Cond, fn)
		CollectRefs(m.Of, fn)
	case IfBind:
		CollectRefs(m.Of, fn)
		CollectRefs(m.Body, fn)
	case IfWeaken:
		logic.CollectCondRefs(m.Cond, fn)
		CollectRefs(m.Of, fn)
	case IfSay:
		CollectRefs(m.Of, fn)
	default:
		panic("proof: unknown term")
	}
}
