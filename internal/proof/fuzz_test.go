package proof

import (
	"bytes"
	"testing"

	"typecoin/internal/lf"
	"typecoin/internal/logic"
)

// FuzzProofDecode feeds arbitrary bytes to the proof-term decoder. It
// must never panic or recurse without bound, and any input that decodes
// must re-encode canonically (the encoding is the identity of a proof).
func FuzzProofDecode(f *testing.F) {
	a := logic.Atom(lf.This("a"))
	ex := logic.Exists("n", lf.NatFam, logic.One)
	seeds := []Term{
		Unit{},
		V("x"),
		Const{Ref: lf.This("merge")},
		Lam{Name: "x", Ty: a, Body: V("x")},
		App{Fn: V("f"), Arg: V("x")},
		LetPair{LName: "c", RName: "r", Of: V("d"), Body: V("r")},
		Case{Of: V("s"), LName: "l", L: V("l"), RName: "r", R: V("r")},
		TLam{Hint: "n", Ty: lf.NatFam, Body: Unit{}},
		TApp{Fn: V("f"), Arg: lf.Nat(7)},
		Pack{Witness: lf.Nat(3), Of: Unit{}, As: ex},
		BangI{Of: Unit{}},
		IfWeaken{Cond: logic.Before(9), Of: Unit{}},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			f.Fatalf("seed encode %s: %v", m, err)
		}
		f.Add(buf.Bytes())
	}
	// Depth bomb: a projection chain nested past the decoder cap. The
	// encoder (plain recursion on an in-memory term) handles it; the
	// decoder must reject it rather than recurse toward stack overflow.
	deep := Term(Unit{})
	for i := 0; i < lf.MaxDecodeDepth+64; i++ {
		deep = Fst{Of: deep}
	}
	var bomb bytes.Buffer
	if err := Encode(&bomb, deep); err != nil {
		f.Fatalf("encode depth bomb: %v", err)
	}
	f.Add(bomb.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Encode(&out, m); err != nil {
			t.Fatalf("decoded term fails to encode: %v", err)
		}
		back, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		var out2 bytes.Buffer
		if err := Encode(&out2, back); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("encoding is not a fixed point after one round trip")
		}
	})
}
