package proof

import (
	"testing"

	"typecoin/internal/lf"
	"typecoin/internal/logic"
)

// Tests reproducing the paper's smaller in-text examples.

// TestHamSandwich: "bread (x) ham -o ham_sandwich models the state change
// that takes place when bread and ham are combined" (Section 1) — and
// after the change, the bread and ham are gone.
func TestHamSandwich(t *testing.T) {
	b := logic.NewBasis(nil)
	for _, name := range []string{"bread", "ham", "sandwich"} {
		if err := b.DeclareFam(lf.This(name), lf.KProp{}); err != nil {
			t.Fatal(err)
		}
	}
	bread := logic.Atom(lf.This("bread"))
	ham := logic.Atom(lf.This("ham"))
	sandwich := logic.Atom(lf.This("sandwich"))
	rule := logic.Lolli(logic.Tensor(bread, ham), sandwich)
	if err := b.DeclareProp(lf.This("make"), rule); err != nil {
		t.Fatal(err)
	}

	// With bread and ham, one sandwich.
	hyps := []Hyp{{Name: "br", Prop: bread}, {Name: "hm", Prop: ham}}
	consumed, err := CheckWithHyps(b, nil, hyps,
		Apply(Const{Ref: lf.This("make")}, Pair{L: V("br"), R: V("hm")}),
		sandwich)
	if err != nil {
		t.Fatalf("sandwich: %v", err)
	}
	if len(consumed) != 2 {
		t.Errorf("consumed %v, want both ingredients", consumed)
	}

	// The ingredients are gone: sandwich AND leftover bread is not
	// derivable from one bread and one ham.
	m := Pair{
		L: Apply(Const{Ref: lf.This("make")}, Pair{L: V("br"), R: V("hm")}),
		R: V("br"),
	}
	if _, err := CheckWithHyps(b, nil, hyps, m, logic.Tensor(sandwich, bread)); err == nil {
		t.Error("ate the sandwich and kept the bread")
	}
}

// TestCounter: "forall i. counter(i) -o counter(i+1) models the state
// change that takes place when a counter is incremented" (Section 1).
func TestCounter(t *testing.T) {
	b := logic.NewBasis(nil)
	if err := b.DeclareFam(lf.This("counter"), lf.KArrow(lf.NatFam, lf.KProp{})); err != nil {
		t.Fatal(err)
	}
	counter := func(m lf.Term) logic.Prop { return logic.Atom(lf.This("counter"), m) }
	inc := logic.Forall("i", lf.NatFam,
		logic.Lolli(counter(lf.Var(0, "i")), counter(lf.Add(lf.Var(0, "i"), lf.Nat(1)))))
	if err := b.DeclareProp(lf.This("inc"), inc); err != nil {
		t.Fatal(err)
	}
	// counter 5 -o counter 7 by two increments — note the definitional
	// equality add(add(5,1),1) = 7 doing the arithmetic.
	m := Lam{Name: "c", Ty: counter(lf.Nat(5)),
		Body: Apply(TApply(Const{Ref: lf.This("inc")}, lf.Nat(6)),
			Apply(TApply(Const{Ref: lf.This("inc")}, lf.Nat(5)), V("c")))}
	if err := Check(b, nil, m, logic.Lolli(counter(lf.Nat(5)), counter(lf.Nat(7)))); err != nil {
		t.Fatalf("double increment: %v", err)
	}
	// After incrementing, the old state is unavailable.
	m2 := Lam{Name: "c", Ty: counter(lf.Nat(5)),
		Body: Pair{
			L: Apply(TApply(Const{Ref: lf.This("inc")}, lf.Nat(5)), V("c")),
			R: V("c")}}
	if err := Check(b, nil, m2,
		logic.Lolli(counter(lf.Nat(5)), logic.Tensor(counter(lf.Nat(6)), counter(lf.Nat(5))))); err == nil {
		t.Error("incremented the counter and kept the old value")
	}
}

// TestTransferableResource: "<ACM> forall K. may-read(K, TOPLAS) ... can
// be used by anyone, by filling in the principal K" (Section 2).
func TestTransferableResource(t *testing.T) {
	b := logic.NewBasis(nil)
	acm := newKey(t, "acm")
	bob := newKey(t, "bob")
	if err := b.DeclareFam(lf.This("may-read"),
		lf.KArrow(lf.PrincipalFam, lf.KProp{})); err != nil {
		t.Fatal(err)
	}
	mayRead := func(k lf.Term) logic.Prop { return logic.Atom(lf.This("may-read"), k) }
	anyReader := logic.Forall("K", lf.PrincipalFam, mayRead(lf.Var(0, "K")))
	// The holder instantiates K with himself...
	hyps := []Hyp{{Name: "cred", Prop: logic.Says(lf.Principal(acm.Principal()), anyReader)}}
	exercise := SayBind{Name: "f", Of: V("cred"),
		Body: SayReturn{Prin: lf.Principal(acm.Principal()),
			Of: TApp{Fn: V("f"), Arg: lf.Principal(bob.Principal())}}}
	if _, err := CheckWithHyps(b, nil, hyps, exercise,
		logic.Says(lf.Principal(acm.Principal()), mayRead(lf.Principal(bob.Principal())))); err != nil {
		t.Fatalf("instantiate for Bob: %v", err)
	}
	// ...but being affine, cannot do so twice.
	double := Pair{L: exercise, R: exercise}
	want := logic.Tensor(
		logic.Says(lf.Principal(acm.Principal()), mayRead(lf.Principal(bob.Principal()))),
		logic.Says(lf.Principal(acm.Principal()), mayRead(lf.Principal(bob.Principal()))))
	if _, err := CheckWithHyps(b, nil, hyps, double, want); err == nil {
		t.Error("used a transferable credential twice")
	}
}

// TestExternalChoice: "<ACM> forall K. (may-read(K, TOPLAS) &
// may-read(K, TOCL)) — external choice allows the resource's holder to
// choose between multiple options" (Section 2).
func TestExternalChoice(t *testing.T) {
	b := logic.NewBasis(nil)
	acm := newKey(t, "acm")
	bob := newKey(t, "bob")
	for _, j := range []string{"toplas", "tocl"} {
		if err := b.DeclareFam(lf.This(j), lf.KArrow(lf.PrincipalFam, lf.KProp{})); err != nil {
			t.Fatal(err)
		}
	}
	toplas := func(k lf.Term) logic.Prop { return logic.Atom(lf.This("toplas"), k) }
	tocl := func(k lf.Term) logic.Prop { return logic.Atom(lf.This("tocl"), k) }
	offer := logic.Forall("K", lf.PrincipalFam,
		logic.With(toplas(lf.Var(0, "K")), tocl(lf.Var(0, "K"))))
	hyps := []Hyp{{Name: "cred", Prop: logic.Says(lf.Principal(acm.Principal()), offer)}}

	// Pick TOPLAS.
	pickLeft := SayBind{Name: "f", Of: V("cred"),
		Body: SayReturn{Prin: lf.Principal(acm.Principal()),
			Of: Fst{Of: TApp{Fn: V("f"), Arg: lf.Principal(bob.Principal())}}}}
	if _, err := CheckWithHyps(b, nil, hyps, pickLeft,
		logic.Says(lf.Principal(acm.Principal()), toplas(lf.Principal(bob.Principal())))); err != nil {
		t.Fatalf("choose TOPLAS: %v", err)
	}
	// Or pick TOCL.
	pickRight := SayBind{Name: "f", Of: V("cred"),
		Body: SayReturn{Prin: lf.Principal(acm.Principal()),
			Of: Snd{Of: TApp{Fn: V("f"), Arg: lf.Principal(bob.Principal())}}}}
	if _, err := CheckWithHyps(b, nil, hyps, pickRight,
		logic.Says(lf.Principal(acm.Principal()), tocl(lf.Principal(bob.Principal())))); err != nil {
		t.Fatalf("choose TOCL: %v", err)
	}
	// But not both: & is external choice, not tensor.
	both := SayBind{Name: "f", Of: V("cred"),
		Body: SayReturn{Prin: lf.Principal(acm.Principal()),
			Of: Pair{
				L: Fst{Of: TApp{Fn: V("f"), Arg: lf.Principal(bob.Principal())}},
				R: Snd{Of: TApp{Fn: V("f"), Arg: lf.Principal(bob.Principal())}}}}}
	want := logic.Says(lf.Principal(acm.Principal()),
		logic.Tensor(toplas(lf.Principal(bob.Principal())), tocl(lf.Principal(bob.Principal()))))
	if _, err := CheckWithHyps(b, nil, hyps, both, want); err == nil {
		t.Error("took both journals from an external choice")
	}
}

// TestCouponReceipt: the Section 4 receipts example — ACM recovers the
// coupon rather than destroying it:
//
//	!<ACM>(coupon (x) receipt(coupon ->> ACM) -o all K. may-read K)
func TestCouponReceipt(t *testing.T) {
	b := logic.NewBasis(nil)
	acm := newKey(t, "acm")
	bob := newKey(t, "bob")
	if err := b.DeclareFam(lf.This("coupon"), lf.KProp{}); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareFam(lf.This("may-read"),
		lf.KArrow(lf.PrincipalFam, lf.KProp{})); err != nil {
		t.Fatal(err)
	}
	coupon := logic.Atom(lf.This("coupon"))
	mayRead := func(k lf.Term) logic.Prop { return logic.Atom(lf.This("may-read"), k) }
	acmPrin := lf.Principal(acm.Principal())
	offer := logic.Bang(logic.Says(acmPrin,
		logic.Lolli(
			logic.Tensor(coupon, logic.Receipt(coupon, 0, acmPrin)),
			logic.Forall("K", lf.PrincipalFam, mayRead(lf.Var(0, "K"))))))

	// With a coupon AND a receipt showing it was sent to ACM, the access
	// right follows.
	hyps := []Hyp{
		{Name: "offer", Prop: offer, Persistent: true},
		{Name: "c", Prop: coupon},
		{Name: "rcpt", Prop: logic.Receipt(coupon, 0, acmPrin)},
	}
	m := LetBang{Name: "o", Of: V("offer"),
		Body: SayBind{Name: "f", Of: V("o"),
			Body: SayReturn{Prin: acmPrin,
				Of: TApp{
					Fn:  Apply(V("f"), Pair{L: V("c"), R: V("rcpt")}),
					Arg: lf.Principal(bob.Principal())}}}}
	if _, err := CheckWithHyps(b, nil, hyps, m,
		logic.Says(acmPrin, mayRead(lf.Principal(bob.Principal())))); err != nil {
		t.Fatalf("coupon exchange: %v", err)
	}
	// Without the receipt, no access: the offer demands the payment.
	noReceipt := []Hyp{
		{Name: "offer", Prop: offer, Persistent: true},
		{Name: "c", Prop: coupon},
	}
	if _, err := CheckWithHyps(b, nil, noReceipt, m,
		logic.Says(acmPrin, mayRead(lf.Principal(bob.Principal())))); err == nil {
		t.Error("read TOPLAS without paying the coupon to ACM")
	}
}
