package proof

import (
	"errors"
	"fmt"
	"io"

	"typecoin/internal/bkey"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
	"typecoin/internal/wire"
)

// Canonical binary encoding of proof terms. The Typecoin transaction
// hash covers the proof term ("the full Typecoin transaction, including
// inputs, outputs, a proof term, and other material, is cryptographically
// hashed"), and transactions travel between parties and batch servers in
// this encoding.
//
// Variable names ARE encoded (unlike LF binder hints): proof terms refer
// to hypotheses by name, so names are semantically significant.

const (
	tagVar       byte = 0x70
	tagConst     byte = 0x71
	tagLam       byte = 0x72
	tagApp       byte = 0x73
	tagPair      byte = 0x74
	tagLetPair   byte = 0x75
	tagUnit      byte = 0x76
	tagLetUnit   byte = 0x77
	tagWithPair  byte = 0x78
	tagFst       byte = 0x79
	tagSnd       byte = 0x7a
	tagInl       byte = 0x7b
	tagInr       byte = 0x7c
	tagCase      byte = 0x7d
	tagAbort     byte = 0x7e
	tagBangI     byte = 0x7f
	tagLetBang   byte = 0x80
	tagTLam      byte = 0x81
	tagTApp      byte = 0x82
	tagPack      byte = 0x83
	tagUnpack    byte = 0x84
	tagSayReturn byte = 0x85
	tagSayBind   byte = 0x86
	tagAssert    byte = 0x87
	tagIfReturn  byte = 0x88
	tagIfBind    byte = 0x89
	tagIfWeaken  byte = 0x8a
	tagIfSay     byte = 0x8b
)

// ErrBadEncoding reports a malformed proof-term encoding.
var ErrBadEncoding = errors.New("proof: malformed encoding")

// errTooDeep bounds proof-term recursion, mirroring the lf decoder cap.
var errTooDeep = fmt.Errorf("%w: nesting deeper than %d", ErrBadEncoding, lf.MaxDecodeDepth)

func writeByte(w io.Writer, b byte) error {
	_, err := w.Write([]byte{b})
	return err
}

func readByte(r io.Reader) (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

func writeName(w io.Writer, s string) error {
	return wire.WriteVarBytes(w, []byte(s))
}

func readName(r io.Reader) (string, error) {
	b, err := wire.ReadVarBytes(r, "name")
	if err != nil {
		return "", err
	}
	if len(b) > 256 {
		return "", fmt.Errorf("%w: name too long", ErrBadEncoding)
	}
	return string(b), nil
}

// Encode writes a proof term.
func Encode(w io.Writer, m Term) error {
	switch m := m.(type) {
	case Var:
		if err := writeByte(w, tagVar); err != nil {
			return err
		}
		return writeName(w, m.Name)
	case Const:
		if err := writeByte(w, tagConst); err != nil {
			return err
		}
		return lf.EncodeRef(w, m.Ref)
	case Lam:
		if err := writeByte(w, tagLam); err != nil {
			return err
		}
		if err := writeName(w, m.Name); err != nil {
			return err
		}
		if err := logic.EncodeProp(w, m.Ty); err != nil {
			return err
		}
		return Encode(w, m.Body)
	case App:
		return encode2(w, tagApp, m.Fn, m.Arg)
	case Pair:
		return encode2(w, tagPair, m.L, m.R)
	case LetPair:
		if err := writeByte(w, tagLetPair); err != nil {
			return err
		}
		if err := writeName(w, m.LName); err != nil {
			return err
		}
		if err := writeName(w, m.RName); err != nil {
			return err
		}
		if err := Encode(w, m.Of); err != nil {
			return err
		}
		return Encode(w, m.Body)
	case Unit:
		return writeByte(w, tagUnit)
	case LetUnit:
		return encode2(w, tagLetUnit, m.Of, m.Body)
	case WithPair:
		return encode2(w, tagWithPair, m.L, m.R)
	case Fst:
		return encode1(w, tagFst, m.Of)
	case Snd:
		return encode1(w, tagSnd, m.Of)
	case Inl:
		if err := writeByte(w, tagInl); err != nil {
			return err
		}
		if err := logic.EncodeProp(w, m.As); err != nil {
			return err
		}
		return Encode(w, m.Of)
	case Inr:
		if err := writeByte(w, tagInr); err != nil {
			return err
		}
		if err := logic.EncodeProp(w, m.As); err != nil {
			return err
		}
		return Encode(w, m.Of)
	case Case:
		if err := writeByte(w, tagCase); err != nil {
			return err
		}
		if err := Encode(w, m.Of); err != nil {
			return err
		}
		if err := writeName(w, m.LName); err != nil {
			return err
		}
		if err := Encode(w, m.L); err != nil {
			return err
		}
		if err := writeName(w, m.RName); err != nil {
			return err
		}
		return Encode(w, m.R)
	case Abort:
		if err := writeByte(w, tagAbort); err != nil {
			return err
		}
		if err := logic.EncodeProp(w, m.As); err != nil {
			return err
		}
		return Encode(w, m.Of)
	case BangI:
		return encode1(w, tagBangI, m.Of)
	case LetBang:
		if err := writeByte(w, tagLetBang); err != nil {
			return err
		}
		if err := writeName(w, m.Name); err != nil {
			return err
		}
		if err := Encode(w, m.Of); err != nil {
			return err
		}
		return Encode(w, m.Body)
	case TLam:
		if err := writeByte(w, tagTLam); err != nil {
			return err
		}
		if err := lf.EncodeFamily(w, m.Ty); err != nil {
			return err
		}
		return Encode(w, m.Body)
	case TApp:
		if err := writeByte(w, tagTApp); err != nil {
			return err
		}
		if err := Encode(w, m.Fn); err != nil {
			return err
		}
		return lf.EncodeTerm(w, m.Arg)
	case Pack:
		if err := writeByte(w, tagPack); err != nil {
			return err
		}
		if err := lf.EncodeTerm(w, m.Witness); err != nil {
			return err
		}
		if err := logic.EncodeProp(w, m.As); err != nil {
			return err
		}
		return Encode(w, m.Of)
	case Unpack:
		if err := writeByte(w, tagUnpack); err != nil {
			return err
		}
		if err := writeName(w, m.Name); err != nil {
			return err
		}
		if err := Encode(w, m.Of); err != nil {
			return err
		}
		return Encode(w, m.Body)
	case SayReturn:
		if err := writeByte(w, tagSayReturn); err != nil {
			return err
		}
		if err := lf.EncodeTerm(w, m.Prin); err != nil {
			return err
		}
		return Encode(w, m.Of)
	case SayBind:
		if err := writeByte(w, tagSayBind); err != nil {
			return err
		}
		if err := writeName(w, m.Name); err != nil {
			return err
		}
		if err := Encode(w, m.Of); err != nil {
			return err
		}
		return Encode(w, m.Body)
	case Assert:
		if err := writeByte(w, tagAssert); err != nil {
			return err
		}
		persistent := byte(0)
		if m.Persistent {
			persistent = 1
		}
		if err := writeByte(w, persistent); err != nil {
			return err
		}
		if m.Key == nil || m.Sig == nil {
			return errors.New("proof: encoding assert without key or signature")
		}
		if _, err := w.Write(m.Key.Serialize()); err != nil {
			return err
		}
		if err := wire.WriteVarBytes(w, m.Sig.Serialize()); err != nil {
			return err
		}
		return logic.EncodeProp(w, m.Prop)
	case IfReturn:
		if err := writeByte(w, tagIfReturn); err != nil {
			return err
		}
		if err := logic.EncodeCond(w, m.Cond); err != nil {
			return err
		}
		return Encode(w, m.Of)
	case IfBind:
		if err := writeByte(w, tagIfBind); err != nil {
			return err
		}
		if err := writeName(w, m.Name); err != nil {
			return err
		}
		if err := Encode(w, m.Of); err != nil {
			return err
		}
		return Encode(w, m.Body)
	case IfWeaken:
		if err := writeByte(w, tagIfWeaken); err != nil {
			return err
		}
		if err := logic.EncodeCond(w, m.Cond); err != nil {
			return err
		}
		return Encode(w, m.Of)
	case IfSay:
		return encode1(w, tagIfSay, m.Of)
	default:
		return fmt.Errorf("proof: unknown term %T", m)
	}
}

func encode1(w io.Writer, tag byte, a Term) error {
	if err := writeByte(w, tag); err != nil {
		return err
	}
	return Encode(w, a)
}

func encode2(w io.Writer, tag byte, a, b Term) error {
	if err := writeByte(w, tag); err != nil {
		return err
	}
	if err := Encode(w, a); err != nil {
		return err
	}
	return Encode(w, b)
}

// Decode reads a proof term.
func Decode(r io.Reader) (Term, error) { return decode(r, 0) }

func decode(r io.Reader, depth int) (Term, error) {
	if depth > lf.MaxDecodeDepth {
		return nil, errTooDeep
	}
	tag, err := readByte(r)
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagVar:
		name, err := readName(r)
		if err != nil {
			return nil, err
		}
		return Var{Name: name}, nil
	case tagConst:
		ref, err := lf.DecodeRef(r)
		if err != nil {
			return nil, err
		}
		return Const{Ref: ref}, nil
	case tagLam:
		name, err := readName(r)
		if err != nil {
			return nil, err
		}
		ty, err := logic.DecodeProp(r)
		if err != nil {
			return nil, err
		}
		body, err := decode(r, depth+1)
		if err != nil {
			return nil, err
		}
		return Lam{Name: name, Ty: ty, Body: body}, nil
	case tagApp:
		a, b, err := decode2(r, depth)
		return App{Fn: a, Arg: b}, err
	case tagPair:
		a, b, err := decode2(r, depth)
		return Pair{L: a, R: b}, err
	case tagLetPair:
		lname, err := readName(r)
		if err != nil {
			return nil, err
		}
		rname, err := readName(r)
		if err != nil {
			return nil, err
		}
		of, body, err := decode2(r, depth)
		return LetPair{LName: lname, RName: rname, Of: of, Body: body}, err
	case tagUnit:
		return Unit{}, nil
	case tagLetUnit:
		a, b, err := decode2(r, depth)
		return LetUnit{Of: a, Body: b}, err
	case tagWithPair:
		a, b, err := decode2(r, depth)
		return WithPair{L: a, R: b}, err
	case tagFst:
		a, err := decode(r, depth+1)
		return Fst{Of: a}, err
	case tagSnd:
		a, err := decode(r, depth+1)
		return Snd{Of: a}, err
	case tagInl:
		as, err := logic.DecodeProp(r)
		if err != nil {
			return nil, err
		}
		of, err := decode(r, depth+1)
		return Inl{As: as, Of: of}, err
	case tagInr:
		as, err := logic.DecodeProp(r)
		if err != nil {
			return nil, err
		}
		of, err := decode(r, depth+1)
		return Inr{As: as, Of: of}, err
	case tagCase:
		of, err := decode(r, depth+1)
		if err != nil {
			return nil, err
		}
		lname, err := readName(r)
		if err != nil {
			return nil, err
		}
		l, err := decode(r, depth+1)
		if err != nil {
			return nil, err
		}
		rname, err := readName(r)
		if err != nil {
			return nil, err
		}
		rr, err := decode(r, depth+1)
		return Case{Of: of, LName: lname, L: l, RName: rname, R: rr}, err
	case tagAbort:
		as, err := logic.DecodeProp(r)
		if err != nil {
			return nil, err
		}
		of, err := decode(r, depth+1)
		return Abort{As: as, Of: of}, err
	case tagBangI:
		a, err := decode(r, depth+1)
		return BangI{Of: a}, err
	case tagLetBang:
		name, err := readName(r)
		if err != nil {
			return nil, err
		}
		of, body, err := decode2(r, depth)
		return LetBang{Name: name, Of: of, Body: body}, err
	case tagTLam:
		ty, err := lf.DecodeFamily(r)
		if err != nil {
			return nil, err
		}
		body, err := decode(r, depth+1)
		return TLam{Hint: "u", Ty: ty, Body: body}, err
	case tagTApp:
		fn, err := decode(r, depth+1)
		if err != nil {
			return nil, err
		}
		arg, err := lf.DecodeTerm(r)
		return TApp{Fn: fn, Arg: arg}, err
	case tagPack:
		witness, err := lf.DecodeTerm(r)
		if err != nil {
			return nil, err
		}
		as, err := logic.DecodeProp(r)
		if err != nil {
			return nil, err
		}
		of, err := decode(r, depth+1)
		return Pack{Witness: witness, As: as, Of: of}, err
	case tagUnpack:
		name, err := readName(r)
		if err != nil {
			return nil, err
		}
		of, body, err := decode2(r, depth)
		return Unpack{Hint: "u", Name: name, Of: of, Body: body}, err
	case tagSayReturn:
		prin, err := lf.DecodeTerm(r)
		if err != nil {
			return nil, err
		}
		of, err := decode(r, depth+1)
		return SayReturn{Prin: prin, Of: of}, err
	case tagSayBind:
		name, err := readName(r)
		if err != nil {
			return nil, err
		}
		of, body, err := decode2(r, depth)
		return SayBind{Name: name, Of: of, Body: body}, err
	case tagAssert:
		persistent, err := readByte(r)
		if err != nil {
			return nil, err
		}
		if persistent > 1 {
			return nil, fmt.Errorf("%w: assert flag %d", ErrBadEncoding, persistent)
		}
		keyBytes := make([]byte, bkey.SerializedPubKeySize)
		if _, err := io.ReadFull(r, keyBytes); err != nil {
			return nil, err
		}
		key, err := bkey.ParsePubKey(keyBytes)
		if err != nil {
			return nil, err
		}
		sigBytes, err := wire.ReadVarBytes(r, "assert signature")
		if err != nil {
			return nil, err
		}
		sig, err := bkey.ParseSignature(sigBytes)
		if err != nil {
			return nil, err
		}
		p, err := logic.DecodeProp(r)
		if err != nil {
			return nil, err
		}
		return Assert{Key: key, Prop: p, Sig: sig, Persistent: persistent == 1}, nil
	case tagIfReturn:
		cond, err := logic.DecodeCond(r)
		if err != nil {
			return nil, err
		}
		of, err := decode(r, depth+1)
		return IfReturn{Cond: cond, Of: of}, err
	case tagIfBind:
		name, err := readName(r)
		if err != nil {
			return nil, err
		}
		of, body, err := decode2(r, depth)
		return IfBind{Name: name, Of: of, Body: body}, err
	case tagIfWeaken:
		cond, err := logic.DecodeCond(r)
		if err != nil {
			return nil, err
		}
		of, err := decode(r, depth+1)
		return IfWeaken{Cond: cond, Of: of}, err
	case tagIfSay:
		of, err := decode(r, depth+1)
		return IfSay{Of: of}, err
	default:
		return nil, fmt.Errorf("%w: term tag %#02x", ErrBadEncoding, tag)
	}
}

func decode2(r io.Reader, depth int) (Term, Term, error) {
	a, err := decode(r, depth+1)
	if err != nil {
		return nil, nil, err
	}
	b, err := decode(r, depth+1)
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}
