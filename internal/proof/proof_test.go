package proof

import (
	"crypto/sha256"
	"strings"
	"testing"

	"typecoin/internal/bkey"
	"typecoin/internal/chainhash"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
	"typecoin/internal/wire"
)

type detEntropy struct{ state [32]byte }

func (d *detEntropy) Read(p []byte) (int, error) {
	for i := range p {
		if i%32 == 0 {
			d.state = sha256.Sum256(d.state[:])
		}
		p[i] = d.state[i%32]
	}
	return len(p), nil
}

func newKey(t testing.TB, seed string) *bkey.PrivateKey {
	t.Helper()
	k, err := bkey.NewPrivateKey(&detEntropy{state: sha256.Sum256([]byte(seed))})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// testBasis declares atoms a, b, c : prop and coin : nat -> prop, plus
// the newcoin merge rule.
func testBasis(t testing.TB) *logic.Basis {
	t.Helper()
	b := logic.NewBasis(nil)
	for _, name := range []string{"a", "b", "c"} {
		if err := b.DeclareFam(lf.This(name), lf.KProp{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.DeclareFam(lf.This("coin"), lf.KArrow(lf.NatFam, lf.KProp{})); err != nil {
		t.Fatal(err)
	}
	coinP := func(m lf.Term) logic.Prop { return logic.Atom(lf.This("coin"), m) }
	merge := logic.Forall("N", lf.NatFam, logic.Forall("M", lf.NatFam, logic.Forall("P", lf.NatFam,
		logic.Lolli(
			logic.Exists("x", lf.FamApp(lf.PlusFam, lf.Var(2, "N"), lf.Var(1, "M"), lf.Var(0, "P")), logic.One),
			logic.Tensor(coinP(lf.Var(2, "N")), coinP(lf.Var(1, "M"))),
			coinP(lf.Var(0, "P")),
		))))
	if err := b.DeclareProp(lf.This("merge"), merge); err != nil {
		t.Fatal(err)
	}
	return b
}

func atomA() logic.Prop { return logic.Atom(lf.This("a")) }
func atomB() logic.Prop { return logic.Atom(lf.This("b")) }
func coin(n uint64) logic.Prop {
	return logic.Atom(lf.This("coin"), lf.Nat(n))
}

func mustCheck(t *testing.T, b *logic.Basis, m Term, want logic.Prop) {
	t.Helper()
	if err := Check(b, nil, m, want); err != nil {
		t.Fatalf("Check(%s : %s): %v", m, want, err)
	}
}

func mustFail(t *testing.T, b *logic.Basis, m Term, want logic.Prop, why string) {
	t.Helper()
	if err := Check(b, nil, m, want); err == nil {
		t.Fatalf("Check(%s : %s) succeeded; want failure (%s)", m, want, why)
	}
}

func TestIdentity(t *testing.T) {
	b := testBasis(t)
	mustCheck(t, b, Lam{Name: "x", Ty: atomA(), Body: V("x")}, logic.Lolli(atomA(), atomA()))
}

func TestAffineWeakening(t *testing.T) {
	b := testBasis(t)
	// \x:a. * : a -o 1 — discarding a resource is legal in affine logic.
	mustCheck(t, b, Lam{Name: "x", Ty: atomA(), Body: Unit{}}, logic.Lolli(atomA(), logic.One))
}

func TestContractionRejected(t *testing.T) {
	b := testBasis(t)
	// \x:a. x (x) x must fail: the affine resource is consumed twice.
	m := Lam{Name: "x", Ty: atomA(), Body: Pair{L: V("x"), R: V("x")}}
	err := Check(b, nil, m, logic.Lolli(atomA(), logic.Tensor(atomA(), atomA())))
	if err == nil {
		t.Fatal("contraction accepted")
	}
	if !strings.Contains(err.Error(), "twice") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestTensorCommute(t *testing.T) {
	b := testBasis(t)
	// \p:a*b. let x (x) y = p in y (x) x : a*b -o b*a
	m := Lam{Name: "p", Ty: logic.Tensor(atomA(), atomB()),
		Body: LetPair{LName: "x", RName: "y", Of: V("p"),
			Body: Pair{L: V("y"), R: V("x")}}}
	mustCheck(t, b, m, logic.Lolli(logic.Tensor(atomA(), atomB()), logic.Tensor(atomB(), atomA())))
}

func TestUnitElim(t *testing.T) {
	b := testBasis(t)
	m := Lam{Name: "u", Ty: logic.One, Body: LetUnit{Of: V("u"), Body: Unit{}}}
	mustCheck(t, b, m, logic.Lolli(logic.One, logic.One))
}

func TestWithSharesResources(t *testing.T) {
	b := testBasis(t)
	// \x:a. <x, x> : a -o a & a — legal: only one alternative is used.
	m := Lam{Name: "x", Ty: atomA(), Body: WithPair{L: V("x"), R: V("x")}}
	mustCheck(t, b, m, logic.Lolli(atomA(), logic.With(atomA(), atomA())))
	// Projections.
	m2 := Lam{Name: "p", Ty: logic.With(atomA(), atomB()), Body: Fst{Of: V("p")}}
	mustCheck(t, b, m2, logic.Lolli(logic.With(atomA(), atomB()), atomA()))
	m3 := Lam{Name: "p", Ty: logic.With(atomA(), atomB()), Body: Snd{Of: V("p")}}
	mustCheck(t, b, m3, logic.Lolli(logic.With(atomA(), atomB()), atomB()))
}

func TestWithConsumptionPropagates(t *testing.T) {
	b := testBasis(t)
	// \x:a. <x,x> (x) x must fail: x is consumed by the with-pair (in
	// the sense that it is no longer available outside).
	m := Lam{Name: "x", Ty: atomA(),
		Body: Pair{L: WithPair{L: V("x"), R: V("x")}, R: V("x")}}
	mustFail(t, b, m,
		logic.Lolli(atomA(), logic.Tensor(logic.With(atomA(), atomA()), atomA())),
		"resource shared between with-pair and tensor")
}

func TestSumIntroCase(t *testing.T) {
	b := testBasis(t)
	sum := logic.Plus(atomA(), atomB()).(logic.PPlus)
	// inl
	m := Lam{Name: "x", Ty: atomA(), Body: Inl{Of: V("x"), As: sum}}
	mustCheck(t, b, m, logic.Lolli(atomA(), sum))
	// case analysis: a+a -o a
	aa := logic.Plus(atomA(), atomA())
	m2 := Lam{Name: "s", Ty: aa,
		Body: Case{Of: V("s"), LName: "x", L: V("x"), RName: "y", R: V("y")}}
	mustCheck(t, b, m2, logic.Lolli(aa, atomA()))
	// Branches of different types fail.
	m3 := Lam{Name: "s", Ty: sum,
		Body: Case{Of: V("s"), LName: "x", L: V("x"), RName: "y", R: V("y")}}
	mustFail(t, b, m3, logic.Lolli(sum, atomA()), "mismatched branches")
	// inl with wrong component.
	m4 := Lam{Name: "x", Ty: atomB(), Body: Inl{Of: V("x"), As: sum}}
	mustFail(t, b, m4, logic.Lolli(atomB(), sum), "inl of wrong side")
}

func TestCaseBranchesMayConsumeDifferently(t *testing.T) {
	b := testBasis(t)
	// \y:a. \s:a+a. case s of inl x => x | inr _ => y
	// The right branch consumes y, the left does not: affine-legal.
	m := Lam{Name: "y", Ty: atomA(), Body: Lam{Name: "s", Ty: logic.Plus(atomA(), atomA()),
		Body: Case{Of: V("s"), LName: "x", L: V("x"), RName: "z", R: V("y")}}}
	mustCheck(t, b, m, logic.Lolli(atomA(), logic.Plus(atomA(), atomA()), atomA()))
}

func TestAbort(t *testing.T) {
	b := testBasis(t)
	m := Lam{Name: "z", Ty: logic.Zero, Body: Abort{Of: V("z"), As: atomA()}}
	mustCheck(t, b, m, logic.Lolli(logic.Zero, atomA()))
}

func TestBangRequiresEmptyDelta(t *testing.T) {
	b := testBasis(t)
	// !* : !1 is fine.
	mustCheck(t, b, BangI{Of: Unit{}}, logic.Bang(logic.One))
	// \x:a. !x must fail: the bang body consumes an affine resource.
	m := Lam{Name: "x", Ty: atomA(), Body: BangI{Of: V("x")}}
	mustFail(t, b, m, logic.Lolli(atomA(), logic.Bang(atomA())), "affine in bang")
	// Persistent resources are allowed inside bangs:
	// \u:!a. let !x = u in !(x (x) x ...) — x is persistent, so even
	// duplication inside the bang is fine.
	m2 := Lam{Name: "u", Ty: logic.Bang(atomA()),
		Body: LetBang{Name: "x", Of: V("u"), Body: BangI{Of: Pair{L: V("x"), R: V("x")}}}}
	mustCheck(t, b, m2, logic.Lolli(logic.Bang(atomA()), logic.Bang(logic.Tensor(atomA(), atomA()))))
}

func TestLetBangDuplication(t *testing.T) {
	b := testBasis(t)
	// !a -o a (x) a via let-bang: the exponential licenses contraction.
	m := Lam{Name: "u", Ty: logic.Bang(atomA()),
		Body: LetBang{Name: "x", Of: V("u"), Body: Pair{L: V("x"), R: V("x")}}}
	mustCheck(t, b, m, logic.Lolli(logic.Bang(atomA()), logic.Tensor(atomA(), atomA())))
}

func TestForallInstantiation(t *testing.T) {
	b := testBasis(t)
	// /\n:nat. \x:coin n. x : all n:nat. coin n -o coin n
	coinN := logic.Atom(lf.This("coin"), lf.Var(0, "n"))
	m := TLam{Hint: "n", Ty: lf.NatFam, Body: Lam{Name: "x", Ty: coinN, Body: V("x")}}
	all := logic.Forall("n", lf.NatFam, logic.Lolli(coinN, coinN))
	mustCheck(t, b, m, all)
	// Instantiate at 7.
	inst := Lam{Name: "f", Ty: all, Body: TApp{Fn: V("f"), Arg: lf.Nat(7)}}
	mustCheck(t, b, inst, logic.Lolli(all, logic.Lolli(coin(7), coin(7))))
	// Instantiating with a principal fails.
	var k bkey.Principal
	bad := Lam{Name: "f", Ty: all, Body: TApp{Fn: V("f"), Arg: lf.Principal(k)}}
	mustFail(t, b, bad, logic.Lolli(all, logic.Lolli(coin(7), coin(7))), "wrong index sort")
}

func TestExistsPackUnpack(t *testing.T) {
	b := testBasis(t)
	ex := logic.Exists("n", lf.NatFam, coin(0)) // some n:nat. coin 0 — body ignores n
	// pack(3, x) where x : coin 0.
	m := Lam{Name: "x", Ty: coin(0), Body: Pack{Witness: lf.Nat(3), Of: V("x"), As: ex}}
	mustCheck(t, b, m, logic.Lolli(coin(0), ex))
	// unpack
	m2 := Lam{Name: "e", Ty: ex,
		Body: Unpack{Hint: "n", Name: "x", Of: V("e"), Body: V("x")}}
	mustCheck(t, b, m2, logic.Lolli(ex, coin(0)))
}

func TestExistsDependentPack(t *testing.T) {
	b := testBasis(t)
	// some n:nat. coin n, packed at 5 with a coin 5.
	ex := logic.Exists("n", lf.NatFam, logic.Atom(lf.This("coin"), lf.Var(0, "n")))
	m := Lam{Name: "x", Ty: coin(5), Body: Pack{Witness: lf.Nat(5), Of: V("x"), As: ex}}
	mustCheck(t, b, m, logic.Lolli(coin(5), ex))
	// Packing a coin 6 at witness 5 fails.
	m2 := Lam{Name: "x", Ty: coin(6), Body: Pack{Witness: lf.Nat(5), Of: V("x"), As: ex}}
	mustFail(t, b, m2, logic.Lolli(coin(6), ex), "witness/body mismatch")
}

func TestUnpackEscape(t *testing.T) {
	b := testBasis(t)
	// Unpacking must not let the witness variable escape into the result
	// type. Result coin n with n opened locally is rejected.
	ex := logic.Exists("n", lf.NatFam, logic.Atom(lf.This("coin"), lf.Var(0, "n")))
	m := Lam{Name: "e", Ty: ex,
		Body: Unpack{Hint: "n", Name: "x", Of: V("e"), Body: V("x")}}
	if err := Check(b, nil, m, logic.Lolli(ex, coin(5))); err == nil {
		t.Fatal("escaping unpack accepted")
	}
}

func TestPlusGuardIdiom(t *testing.T) {
	// The paper's (some x:plus N M P. 1) side-condition idiom: it is
	// inhabited exactly when N+M=P.
	b := testBasis(t)
	guard := logic.Exists("x", lf.FamApp(lf.PlusFam, lf.Nat(2), lf.Nat(3), lf.Nat(5)), logic.One)
	m := Pack{Witness: lf.App(lf.PlusIntro, lf.Nat(2), lf.Nat(3)), Of: Unit{}, As: guard}
	mustCheck(t, b, m, guard)
	// The wrong sum is uninhabitable by plus_intro.
	bad := logic.Exists("x", lf.FamApp(lf.PlusFam, lf.Nat(2), lf.Nat(3), lf.Nat(6)), logic.One)
	m2 := Pack{Witness: lf.App(lf.PlusIntro, lf.Nat(2), lf.Nat(3)), Of: Unit{}, As: bad}
	mustFail(t, b, m2, bad, "2+3 != 6")
}

func TestMergeCoins(t *testing.T) {
	// coin 2 (x) coin 3 -o coin 5 using the merge rule: the heart of the
	// Section 6 newcoin example.
	b := testBasis(t)
	guard := Pack{
		Witness: lf.App(lf.PlusIntro, lf.Nat(2), lf.Nat(3)),
		Of:      Unit{},
		As:      logic.Exists("x", lf.FamApp(lf.PlusFam, lf.Nat(2), lf.Nat(3), lf.Nat(5)), logic.One),
	}
	m := Lam{Name: "p", Ty: logic.Tensor(coin(2), coin(3)),
		Body: Apply(
			TApply(Const{Ref: lf.This("merge")}, lf.Nat(2), lf.Nat(3), lf.Nat(5)),
			guard,
			V("p"),
		)}
	mustCheck(t, b, m, logic.Lolli(logic.Tensor(coin(2), coin(3)), coin(5)))

	// Claiming coin 6 from coin 2 and coin 3 must fail.
	badGuard := Pack{
		Witness: lf.App(lf.PlusIntro, lf.Nat(2), lf.Nat(3)),
		Of:      Unit{},
		As:      logic.Exists("x", lf.FamApp(lf.PlusFam, lf.Nat(2), lf.Nat(3), lf.Nat(6)), logic.One),
	}
	m2 := Lam{Name: "p", Ty: logic.Tensor(coin(2), coin(3)),
		Body: Apply(
			TApply(Const{Ref: lf.This("merge")}, lf.Nat(2), lf.Nat(3), lf.Nat(6)),
			badGuard,
			V("p"),
		)}
	mustFail(t, b, m2, logic.Lolli(logic.Tensor(coin(2), coin(3)), coin(6)), "2+3 != 6")
}

func TestSayMonad(t *testing.T) {
	b := testBasis(t)
	k := newKey(t, "alice")
	alice := lf.Principal(k.Principal())
	// sayreturn: a -o <alice>a.
	m := Lam{Name: "x", Ty: atomA(), Body: SayReturn{Prin: alice, Of: V("x")}}
	mustCheck(t, b, m, logic.Lolli(atomA(), logic.Says(alice, atomA())))
	// saybind: <alice>a -o <alice>(a*1)
	m2 := Lam{Name: "s", Ty: logic.Says(alice, atomA()),
		Body: SayBind{Name: "x", Of: V("s"),
			Body: SayReturn{Prin: alice, Of: Pair{L: V("x"), R: Unit{}}}}}
	mustCheck(t, b, m2, logic.Lolli(logic.Says(alice, atomA()),
		logic.Says(alice, logic.Tensor(atomA(), logic.One))))
	// The bind may not cross principals.
	k2 := newKey(t, "bob")
	bob := lf.Principal(k2.Principal())
	m3 := Lam{Name: "s", Ty: logic.Says(alice, atomA()),
		Body: SayBind{Name: "x", Of: V("s"),
			Body: SayReturn{Prin: bob, Of: V("x")}}}
	mustFail(t, b, m3, logic.Lolli(logic.Says(alice, atomA()), logic.Says(bob, atomA())),
		"saybind crossed principals")
	// And <alice>a gives no bare a: there is no escape from the monad.
	m4 := Lam{Name: "s", Ty: logic.Says(alice, atomA()),
		Body: SayBind{Name: "x", Of: V("s"), Body: V("x")}}
	mustFail(t, b, m4, logic.Lolli(logic.Says(alice, atomA()), atomA()), "escaped the say monad")
}

func TestAssertAffine(t *testing.T) {
	b := testBasis(t)
	k := newKey(t, "alice")
	payload := []byte("the transaction minus its proof term")
	sig, err := SignAffine(k, atomA(), payload)
	if err != nil {
		t.Fatal(err)
	}
	m := Assert{Key: k.PubKey(), Prop: atomA(), Sig: sig}
	want := logic.Says(lf.Principal(k.Principal()), atomA())
	if err := Check(b, payload, m, want); err != nil {
		t.Fatalf("valid assert rejected: %v", err)
	}
	// Replay in a different transaction: the same assert under a
	// different payload must fail. "Signing the transaction prevents an
	// attacker from replaying the affine resource as part of a different
	// transaction." (Section 2).
	if err := Check(b, []byte("another transaction"), m, want); err == nil {
		t.Fatal("affine assert replayed across transactions")
	}
	// Wrong proposition fails.
	m2 := Assert{Key: k.PubKey(), Prop: atomB(), Sig: sig}
	if err := Check(b, payload, m2,
		logic.Says(lf.Principal(k.Principal()), atomB())); err == nil {
		t.Fatal("assert accepted for unsigned proposition")
	}
}

func TestAssertPersistent(t *testing.T) {
	b := testBasis(t)
	k := newKey(t, "acm")
	sig, err := SignPersistent(k, atomA())
	if err != nil {
		t.Fatal(err)
	}
	m := Assert{Key: k.PubKey(), Prop: atomA(), Sig: sig, Persistent: true}
	want := logic.Says(lf.Principal(k.Principal()), atomA())
	// Portable: verifies under any transaction payload.
	for _, payload := range [][]byte{nil, []byte("tx1"), []byte("tx2")} {
		if err := Check(b, payload, m, want); err != nil {
			t.Fatalf("persistent assert under payload %q: %v", payload, err)
		}
	}
	// A persistent signature does not validate an affine assert and vice
	// versa (different signing domains).
	mAffine := Assert{Key: k.PubKey(), Prop: atomA(), Sig: sig, Persistent: false}
	if err := Check(b, nil, mAffine, want); err == nil {
		t.Fatal("persistent signature accepted for affine assert")
	}
}

func TestIfMonad(t *testing.T) {
	b := testBasis(t)
	phi := logic.Before(1000)
	// ifreturn: a -o if(phi, a).
	m := Lam{Name: "x", Ty: atomA(), Body: IfReturn{Cond: phi, Of: V("x")}}
	mustCheck(t, b, m, logic.Lolli(atomA(), logic.If(phi, atomA())))
	// ifbind within the same condition.
	m2 := Lam{Name: "s", Ty: logic.If(phi, atomA()),
		Body: IfBind{Name: "x", Of: V("s"),
			Body: IfReturn{Cond: phi, Of: Pair{L: V("x"), R: Unit{}}}}}
	mustCheck(t, b, m2, logic.Lolli(logic.If(phi, atomA()),
		logic.If(phi, logic.Tensor(atomA(), logic.One))))
	// Crossing conditions fails.
	psi := logic.Before(2000)
	m3 := Lam{Name: "s", Ty: logic.If(phi, atomA()),
		Body: IfBind{Name: "x", Of: V("s"), Body: IfReturn{Cond: psi, Of: V("x")}}}
	mustFail(t, b, m3, logic.Lolli(logic.If(phi, atomA()), logic.If(psi, atomA())),
		"ifbind crossed conditions")
	// No discharge: if(phi,a) -o a has no proof term. The obvious
	// attempts fail.
	m4 := Lam{Name: "s", Ty: logic.If(phi, atomA()),
		Body: IfBind{Name: "x", Of: V("s"), Body: V("x")}}
	mustFail(t, b, m4, logic.Lolli(logic.If(phi, atomA()), atomA()), "escaped the if monad")
}

func TestIfWeaken(t *testing.T) {
	b := testBasis(t)
	op := wire.OutPoint{Hash: chainhash.HashB([]byte("R"))}
	// if(before(1000), a) weakens to if(~spent(R) /\ before(500), a):
	// the stronger condition entails the weaker (500 <= 1000).
	weak := logic.If(logic.Before(1000), atomA())
	strong := logic.And(logic.Unspent(op), logic.Before(500))
	m := Lam{Name: "s", Ty: weak, Body: IfWeaken{Cond: strong, Of: V("s")}}
	mustCheck(t, b, m, logic.Lolli(weak, logic.If(strong, atomA())))
	// The reverse direction fails: before(1500) does not entail
	// before(1000).
	m2 := Lam{Name: "s", Ty: weak, Body: IfWeaken{Cond: logic.Before(1500), Of: V("s")}}
	mustFail(t, b, m2, logic.Lolli(weak, logic.If(logic.Before(1500), atomA())),
		"entailment fails")
}

func TestIfSayCommute(t *testing.T) {
	b := testBasis(t)
	k := newKey(t, "banker")
	banker := lf.Principal(k.Principal())
	phi := logic.Before(700)
	// <banker>if(phi,a) -o if(phi,<banker>a).
	in := logic.Says(banker, logic.If(phi, atomA()))
	out := logic.If(phi, logic.Says(banker, atomA()))
	m := Lam{Name: "s", Ty: in, Body: IfSay{Of: V("s")}}
	mustCheck(t, b, m, logic.Lolli(in, out))
	// The reverse (say/if) is not a term former; applying IfSay to the
	// commuted form fails.
	m2 := Lam{Name: "s", Ty: out, Body: IfSay{Of: V("s")}}
	mustFail(t, b, m2, logic.Lolli(out, in), "say/if direction")
}

func TestLetDerivedForm(t *testing.T) {
	b := testBasis(t)
	m := Lam{Name: "x", Ty: atomA(),
		Body: Let("y", atomA(), V("x"), V("y"))}
	mustCheck(t, b, m, logic.Lolli(atomA(), atomA()))
}

func TestCheckWithHyps(t *testing.T) {
	b := testBasis(t)
	hyps := []Hyp{
		{Name: "x", Prop: atomA()},
		{Name: "y", Prop: atomB()},
		{Name: "p", Prop: logic.Bang(atomA()), Persistent: true},
	}
	consumed, err := CheckWithHyps(b, nil, hyps, V("x"), atomA())
	if err != nil {
		t.Fatal(err)
	}
	if len(consumed) != 1 || consumed[0] != "x" {
		t.Errorf("consumed = %v, want [x]", consumed)
	}
	// Unused hypotheses are fine (affine).
	if _, err := CheckWithHyps(b, nil, hyps, Unit{}, logic.One); err != nil {
		t.Errorf("weakening with hyps: %v", err)
	}
	// Persistent hypotheses may be used repeatedly.
	if _, err := CheckWithHyps(b, nil, hyps, Pair{L: V("p"), R: V("p")},
		logic.Tensor(logic.Bang(atomA()), logic.Bang(atomA()))); err != nil {
		t.Errorf("persistent reuse: %v", err)
	}
}

func TestUnboundAndUnknown(t *testing.T) {
	b := testBasis(t)
	if err := Check(b, nil, V("ghost"), atomA()); err == nil {
		t.Error("unbound variable accepted")
	}
	if err := Check(b, nil, Const{Ref: lf.This("nonesuch")}, atomA()); err == nil {
		t.Error("unknown constant accepted")
	}
}

func TestShadowing(t *testing.T) {
	b := testBasis(t)
	// \x:a. \x:b. x : a -o b -o b — inner binding shadows.
	m := Lam{Name: "x", Ty: atomA(), Body: Lam{Name: "x", Ty: atomB(), Body: V("x")}}
	mustCheck(t, b, m, logic.Lolli(atomA(), atomB(), atomB()))
}

func TestQuantifiedHypothesisShift(t *testing.T) {
	// A hypothesis bound outside an index binder must keep meaning the
	// same proposition inside it (de Bruijn shifting of the environment).
	b := testBasis(t)
	coinN := logic.Atom(lf.This("coin"), lf.Var(0, "n"))
	// \x:coin 5. /\n:nat. \y:coin n. x (x) y
	m := Lam{Name: "x", Ty: coin(5),
		Body: TLam{Hint: "n", Ty: lf.NatFam,
			Body: Lam{Name: "y", Ty: coinN,
				Body: Pair{L: V("x"), R: V("y")}}}}
	want := logic.Lolli(coin(5),
		logic.Forall("n", lf.NatFam,
			logic.Lolli(coinN, logic.Tensor(logic.ShiftProp(coin(5), 1, 0), coinN))))
	mustCheck(t, b, m, want)
}
