package proof

import (
	"fmt"

	"typecoin/internal/bkey"
	"typecoin/internal/chainhash"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
)

// Signature digests. An affine assert signs the proposition together with
// the enclosing transaction minus its proof term ("sig signs essentially
// the entire transaction in which it appears"); a persistent assert!
// signs the proposition alone.

// AffineAssertDigest is the digest an assert signature must cover.
func AffineAssertDigest(p logic.Prop, txPayload []byte) chainhash.Hash {
	body := append(logic.PropBytes(p), txPayload...)
	return chainhash.TaggedHash("typecoin/assert", body)
}

// PersistentAssertDigest is the digest an assert! signature must cover.
func PersistentAssertDigest(p logic.Prop) chainhash.Hash {
	return chainhash.TaggedHash("typecoin/assert!", logic.PropBytes(p))
}

// SignAffine produces an assert signature bound to a transaction payload.
func SignAffine(key *bkey.PrivateKey, p logic.Prop, txPayload []byte) (*bkey.Signature, error) {
	d := AffineAssertDigest(p, txPayload)
	return key.Sign(d[:])
}

// SignPersistent produces an assert! signature.
func SignPersistent(key *bkey.PrivateKey, p logic.Prop) (*bkey.Signature, error) {
	d := PersistentAssertDigest(p)
	return key.Sign(d[:])
}

// checker state and the panic/recover error idiom (matching lf).

type proofError struct{ err error }

func pfail(format string, args ...interface{}) {
	panic(&proofError{fmt.Errorf("proof: "+format, args...)})
}

func pcatch(err *error) {
	if r := recover(); r != nil {
		pe, ok := r.(*proofError)
		if !ok {
			panic(r)
		}
		*err = pe.err
	}
}

// hyp is one hypothesis. Propositions are stored with the LF depth at
// which they were bound; lookups shift them into the current LF context.
type hyp struct {
	id         int
	prop       logic.Prop
	depth      int // LF context depth at binding time
	persistent bool
}

// used tracks which affine hypothesis ids a subterm consumed.
type used map[int]bool

func (u used) clone() used {
	out := make(used, len(u))
	for k := range u {
		out[k] = true
	}
	return out
}

// disjointUnion merges consumption sets, failing if a resource is
// consumed by both subterms: the affine context splits, it does not
// duplicate.
func disjointUnion(a, b used, what string) used {
	out := a.clone()
	for k := range b {
		if out[k] {
			pfail("affine resource consumed twice in %s", what)
		}
		out[k] = true
	}
	return out
}

// union merges consumption sets where sharing is allowed (& introduction
// and case branches: only one alternative will run, but a resource
// consumed by either is no longer available outside).
func union(a, b used) used {
	out := a.clone()
	for k := range b {
		out[k] = true
	}
	return out
}

type checker struct {
	basis     *logic.Basis
	txPayload []byte // transaction-minus-proof bytes for affine asserts
	nextID    int
}

// env is the lexical environment: proof variables and the LF context.
type env struct {
	vars  map[string]hyp
	lfCtx lf.Ctx
}

func (e env) bind(c *checker, name string, p logic.Prop, persistent bool) (env, int) {
	id := c.nextID
	c.nextID++
	vars := make(map[string]hyp, len(e.vars)+1)
	for k, v := range e.vars {
		vars[k] = v
	}
	vars[name] = hyp{id: id, prop: p, depth: len(e.lfCtx), persistent: persistent}
	return env{vars: vars, lfCtx: e.lfCtx}, id
}

func (e env) pushLF(ty lf.Family) env {
	return env{vars: e.vars, lfCtx: e.lfCtx.Push(ty)}
}

// lookup returns the hypothesis shifted into the current LF depth.
func (e env) lookup(name string) (hyp, logic.Prop, bool) {
	h, ok := e.vars[name]
	if !ok {
		return hyp{}, nil, false
	}
	p := h.prop
	if d := len(e.lfCtx) - h.depth; d > 0 {
		p = logic.ShiftProp(p, d, 0)
	}
	return h, p, true
}

// mustEqual asserts definitional equality of propositions.
func mustEqual(got, want logic.Prop, what string) {
	eq, err := logic.PropEqual(got, want)
	if err != nil {
		pfail("%s: comparing types: %v", what, err)
	}
	if !eq {
		pfail("%s: has type %s, want %s", what, got, want)
	}
}

// infer computes the type of M and the set of affine hypotheses it
// consumed. All proof terms carry enough annotations to be inferable.
func (c *checker) infer(e env, m Term) (logic.Prop, used) {
	switch m := m.(type) {
	case Var:
		h, p, ok := e.lookup(m.Name)
		if !ok {
			pfail("unbound variable %s", m.Name)
		}
		if h.persistent {
			return p, used{}
		}
		return p, used{h.id: true}

	case Const:
		p, ok := c.basis.LookupProp(m.Ref)
		if !ok {
			pfail("unknown proof constant %s", m.Ref)
		}
		return p, used{}

	case Lam:
		if err := logic.CheckProp(c.basis, e.lfCtx, m.Ty); err != nil {
			pfail("lambda annotation: %v", err)
		}
		e2, id := e.bind(c, m.Name, m.Ty, false)
		body, u := c.infer(e2, m.Body)
		delete(u, id) // affine: the bound variable need not be used
		return logic.PLolli{A: m.Ty, B: body}, u

	case App:
		fnTy, u1 := c.infer(e, m.Fn)
		lolli, ok := fnTy.(logic.PLolli)
		if !ok {
			pfail("application head has type %s, not a lolli", fnTy)
		}
		argTy, u2 := c.infer(e, m.Arg)
		mustEqual(argTy, lolli.A, "application argument")
		return lolli.B, disjointUnion(u1, u2, "application")

	case Pair:
		a, u1 := c.infer(e, m.L)
		b, u2 := c.infer(e, m.R)
		return logic.PTensor{A: a, B: b}, disjointUnion(u1, u2, "tensor pair")

	case LetPair:
		ofTy, u1 := c.infer(e, m.Of)
		ten, ok := ofTy.(logic.PTensor)
		if !ok {
			pfail("let-pair scrutinee has type %s, not a tensor", ofTy)
		}
		e2, idL := e.bind(c, m.LName, ten.A, false)
		e3, idR := e2.bind(c, m.RName, ten.B, false)
		body, u2 := c.infer(e3, m.Body)
		delete(u2, idL)
		delete(u2, idR)
		return body, disjointUnion(u1, u2, "let-pair")

	case Unit:
		return logic.POne{}, used{}

	case LetUnit:
		ofTy, u1 := c.infer(e, m.Of)
		if _, ok := ofTy.(logic.POne); !ok {
			pfail("let-unit scrutinee has type %s, not 1", ofTy)
		}
		body, u2 := c.infer(e, m.Body)
		return body, disjointUnion(u1, u2, "let-unit")

	case WithPair:
		a, u1 := c.infer(e, m.L)
		b, u2 := c.infer(e, m.R)
		// Alternatives share the context: union without disjointness.
		return logic.PWith{A: a, B: b}, union(u1, u2)

	case Fst:
		ofTy, u := c.infer(e, m.Of)
		w, ok := ofTy.(logic.PWith)
		if !ok {
			pfail("fst of type %s, not a with", ofTy)
		}
		return w.A, u

	case Snd:
		ofTy, u := c.infer(e, m.Of)
		w, ok := ofTy.(logic.PWith)
		if !ok {
			pfail("snd of type %s, not a with", ofTy)
		}
		return w.B, u

	case Inl:
		sum, ok := m.As.(logic.PPlus)
		if !ok {
			pfail("inl annotation %s is not a sum", m.As)
		}
		if err := logic.CheckProp(c.basis, e.lfCtx, m.As); err != nil {
			pfail("inl annotation: %v", err)
		}
		got, u := c.infer(e, m.Of)
		mustEqual(got, sum.A, "inl body")
		return m.As, u

	case Inr:
		sum, ok := m.As.(logic.PPlus)
		if !ok {
			pfail("inr annotation %s is not a sum", m.As)
		}
		if err := logic.CheckProp(c.basis, e.lfCtx, m.As); err != nil {
			pfail("inr annotation: %v", err)
		}
		got, u := c.infer(e, m.Of)
		mustEqual(got, sum.B, "inr body")
		return m.As, u

	case Case:
		ofTy, u1 := c.infer(e, m.Of)
		sum, ok := ofTy.(logic.PPlus)
		if !ok {
			pfail("case scrutinee has type %s, not a sum", ofTy)
		}
		eL, idL := e.bind(c, m.LName, sum.A, false)
		lTy, uL := c.infer(eL, m.L)
		delete(uL, idL)
		eR, idR := e.bind(c, m.RName, sum.B, false)
		rTy, uR := c.infer(eR, m.R)
		delete(uR, idR)
		mustEqual(rTy, lTy, "case branches")
		return lTy, disjointUnion(u1, union(uL, uR), "case")

	case Abort:
		ofTy, u := c.infer(e, m.Of)
		if _, ok := ofTy.(logic.PZero); !ok {
			pfail("abort of type %s, not 0", ofTy)
		}
		if err := logic.CheckProp(c.basis, e.lfCtx, m.As); err != nil {
			pfail("abort annotation: %v", err)
		}
		return m.As, u

	case BangI:
		// !I: the body must not touch the affine context. We check it in
		// an environment whose affine hypotheses are hidden.
		e2 := env{vars: make(map[string]hyp, len(e.vars)), lfCtx: e.lfCtx}
		for k, v := range e.vars {
			if v.persistent {
				e2.vars[k] = v
			}
		}
		body, u := c.infer(e2, m.Of)
		if len(u) != 0 {
			pfail("bang body consumed affine resources")
		}
		return logic.PBang{A: body}, used{}

	case LetBang:
		ofTy, u1 := c.infer(e, m.Of)
		bang, ok := ofTy.(logic.PBang)
		if !ok {
			pfail("let-bang scrutinee has type %s, not a bang", ofTy)
		}
		e2, _ := e.bind(c, m.Name, bang.A, true)
		body, u2 := c.infer(e2, m.Body)
		return body, disjointUnion(u1, u2, "let-bang")

	case TLam:
		if err := lf.CheckFamilyIsType(c.basis, e.lfCtx, m.Ty); err != nil {
			pfail("index abstraction domain: %v", err)
		}
		body, u := c.infer(e.pushLF(m.Ty), m.Body)
		return logic.PForall{Hint: m.Hint, Ty: m.Ty, Body: body}, u

	case TApp:
		fnTy, u := c.infer(e, m.Fn)
		all, ok := fnTy.(logic.PForall)
		if !ok {
			pfail("index application head has type %s, not a forall", fnTy)
		}
		if err := lf.CheckTerm(c.basis, e.lfCtx, m.Arg, all.Ty); err != nil {
			pfail("index argument: %v", err)
		}
		return logic.SubstProp(all.Body, 0, m.Arg), u

	case Pack:
		ex, ok := m.As.(logic.PExists)
		if !ok {
			pfail("pack annotation %s is not an existential", m.As)
		}
		if err := logic.CheckProp(c.basis, e.lfCtx, m.As); err != nil {
			pfail("pack annotation: %v", err)
		}
		if err := lf.CheckTerm(c.basis, e.lfCtx, m.Witness, ex.Ty); err != nil {
			pfail("pack witness: %v", err)
		}
		got, u := c.infer(e, m.Of)
		mustEqual(got, logic.SubstProp(ex.Body, 0, m.Witness), "pack body")
		return m.As, u

	case Unpack:
		ofTy, u1 := c.infer(e, m.Of)
		ex, ok := ofTy.(logic.PExists)
		if !ok {
			pfail("unpack scrutinee has type %s, not an existential", ofTy)
		}
		e2 := e.pushLF(ex.Ty)
		// The body proposition is already valid in the extended context.
		e3, id := e2.bindAtCurrentDepth(c, m.Name, ex.Body, false)
		body, u2 := c.infer(e3, m.Body)
		delete(u2, id)
		// The result may not mention the opened index variable; shifting
		// down by -1 after checking no occurrence.
		if propUsesVarZero(body) {
			pfail("unpack result %s mentions the opened index variable", body)
		}
		return logic.ShiftProp(body, -1, 1), disjointUnion(u1, u2, "unpack")

	case SayReturn:
		if err := lf.CheckTerm(c.basis, e.lfCtx, m.Prin, lf.PrincipalFam); err != nil {
			pfail("sayreturn principal: %v", err)
		}
		body, u := c.infer(e, m.Of)
		return logic.PSays{Prin: m.Prin, Body: body}, u

	case SayBind:
		ofTy, u1 := c.infer(e, m.Of)
		says, ok := ofTy.(logic.PSays)
		if !ok {
			pfail("saybind scrutinee has type %s, not an affirmation", ofTy)
		}
		e2, id := e.bind(c, m.Name, says.Body, false)
		bodyTy, u2 := c.infer(e2, m.Body)
		delete(u2, id)
		says2, ok := bodyTy.(logic.PSays)
		if !ok {
			pfail("saybind body has type %s, not an affirmation", bodyTy)
		}
		eq, err := lf.TermEqual(says.Prin, says2.Prin)
		if err != nil {
			pfail("saybind principals: %v", err)
		}
		if !eq {
			pfail("saybind crosses principals: %s vs %s", says.Prin, says2.Prin)
		}
		return bodyTy, disjointUnion(u1, u2, "saybind")

	case Assert:
		if m.Key == nil || m.Sig == nil {
			pfail("assert missing key or signature")
		}
		if err := logic.CheckProp(c.basis, e.lfCtx, m.Prop); err != nil {
			pfail("assert proposition: %v", err)
		}
		var digest chainhash.Hash
		if m.Persistent {
			digest = PersistentAssertDigest(m.Prop)
		} else {
			digest = AffineAssertDigest(m.Prop, c.txPayload)
		}
		if !m.Key.Verify(digest[:], m.Sig) {
			pfail("assert signature invalid for principal %s", m.Key.Principal())
		}
		return logic.PSays{Prin: lf.Principal(m.Key.Principal()), Body: m.Prop}, used{}

	case IfReturn:
		if err := logic.CheckCond(c.basis, e.lfCtx, m.Cond); err != nil {
			pfail("ifreturn condition: %v", err)
		}
		body, u := c.infer(e, m.Of)
		return logic.PIf{Cond: m.Cond, Body: body}, u

	case IfBind:
		ofTy, u1 := c.infer(e, m.Of)
		ifp, ok := ofTy.(logic.PIf)
		if !ok {
			pfail("ifbind scrutinee has type %s, not a conditional", ofTy)
		}
		e2, id := e.bind(c, m.Name, ifp.Body, false)
		bodyTy, u2 := c.infer(e2, m.Body)
		delete(u2, id)
		ifp2, ok := bodyTy.(logic.PIf)
		if !ok {
			pfail("ifbind body has type %s, not a conditional", bodyTy)
		}
		eq, err := logic.CondEqual(ifp.Cond, ifp2.Cond)
		if err != nil {
			pfail("ifbind conditions: %v", err)
		}
		if !eq {
			pfail("ifbind crosses conditions: %s vs %s", ifp.Cond, ifp2.Cond)
		}
		return bodyTy, disjointUnion(u1, u2, "ifbind")

	case IfWeaken:
		if err := logic.CheckCond(c.basis, e.lfCtx, m.Cond); err != nil {
			pfail("ifweaken condition: %v", err)
		}
		ofTy, u := c.infer(e, m.Of)
		ifp, ok := ofTy.(logic.PIf)
		if !ok {
			pfail("ifweaken of type %s, not a conditional", ofTy)
		}
		if !logic.EntailsCond(m.Cond, ifp.Cond) {
			pfail("ifweaken: %s does not entail %s", m.Cond, ifp.Cond)
		}
		return logic.PIf{Cond: m.Cond, Body: ifp.Body}, u

	case IfSay:
		ofTy, u := c.infer(e, m.Of)
		says, ok := ofTy.(logic.PSays)
		if !ok {
			pfail("if/say of type %s, not an affirmation", ofTy)
		}
		ifp, ok := says.Body.(logic.PIf)
		if !ok {
			pfail("if/say affirmation body %s is not a conditional", says.Body)
		}
		return logic.PIf{Cond: ifp.Cond, Body: logic.PSays{Prin: says.Prin, Body: ifp.Body}}, u

	default:
		pfail("unknown proof term %T", m)
		return nil, nil
	}
}

// bindAtCurrentDepth binds a hypothesis whose proposition is already
// expressed at the current LF depth (used by Unpack, whose body
// proposition mentions the just-opened variable).
func (e env) bindAtCurrentDepth(c *checker, name string, p logic.Prop, persistent bool) (env, int) {
	return e.bind(c, name, p, persistent)
}

// propUsesVarZero reports whether LF variable 0 occurs free in p.
func propUsesVarZero(p logic.Prop) bool {
	return logic.PropUsesVar(p, 0)
}

// Infer computes the type of a closed proof term (empty Gamma and Delta)
// in the given basis. txPayload is the canonical encoding of the
// enclosing transaction minus its proof term; affine asserts are checked
// against it.
func Infer(b *logic.Basis, txPayload []byte, m Term) (p logic.Prop, err error) {
	defer pcatch(&err)
	c := &checker{basis: b, txPayload: txPayload}
	p, _ = c.infer(env{vars: map[string]hyp{}}, m)
	return p, nil
}

// Check validates a closed proof term against an expected proposition.
func Check(b *logic.Basis, txPayload []byte, m Term, want logic.Prop) (err error) {
	defer pcatch(&err)
	c := &checker{basis: b, txPayload: txPayload}
	got, _ := c.infer(env{vars: map[string]hyp{}}, m)
	mustEqual(got, want, "proof term")
	return nil
}

// Hyp declares an initial hypothesis for CheckWithHyps.
type Hyp struct {
	Name       string
	Prop       logic.Prop
	Persistent bool
}

// CheckWithHyps validates a proof term under initial hypotheses; affine
// hypotheses may be consumed at most once, persistent ones freely. It
// returns the names of affine hypotheses the proof consumed.
func CheckWithHyps(b *logic.Basis, txPayload []byte, hyps []Hyp, m Term, want logic.Prop) (consumed []string, err error) {
	defer pcatch(&err)
	c := &checker{basis: b, txPayload: txPayload}
	e := env{vars: map[string]hyp{}}
	ids := make(map[int]string, len(hyps))
	for _, h := range hyps {
		var id int
		e, id = e.bind(c, h.Name, h.Prop, h.Persistent)
		if !h.Persistent {
			ids[id] = h.Name
		}
	}
	got, u := c.infer(e, m)
	mustEqual(got, want, "proof term")
	for id, name := range ids {
		if u[id] {
			consumed = append(consumed, name)
		}
	}
	return consumed, nil
}
