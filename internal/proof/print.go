package proof

import "fmt"

// Compact, paper-flavored rendering of proof terms for error messages and
// debugging.

func (t Var) String() string   { return t.Name }
func (t Const) String() string { return t.Ref.String() }

func (t Lam) String() string {
	return fmt.Sprintf("\\%s:%s. %s", t.Name, t.Ty, t.Body)
}

func (t App) String() string { return fmt.Sprintf("(%s %s)", t.Fn, t.Arg) }

func (t Pair) String() string { return fmt.Sprintf("(%s (x) %s)", t.L, t.R) }

func (t LetPair) String() string {
	return fmt.Sprintf("let %s (x) %s = %s in %s", t.LName, t.RName, t.Of, t.Body)
}

func (t Unit) String() string { return "*" }

func (t LetUnit) String() string { return fmt.Sprintf("let * = %s in %s", t.Of, t.Body) }

func (t WithPair) String() string { return fmt.Sprintf("<%s, %s>", t.L, t.R) }

func (t Fst) String() string { return fmt.Sprintf("fst(%s)", t.Of) }
func (t Snd) String() string { return fmt.Sprintf("snd(%s)", t.Of) }

func (t Inl) String() string { return fmt.Sprintf("inl(%s)", t.Of) }
func (t Inr) String() string { return fmt.Sprintf("inr(%s)", t.Of) }

func (t Case) String() string {
	return fmt.Sprintf("case %s of inl %s => %s | inr %s => %s", t.Of, t.LName, t.L, t.RName, t.R)
}

func (t Abort) String() string { return fmt.Sprintf("abort(%s)", t.Of) }

func (t BangI) String() string { return fmt.Sprintf("!%s", t.Of) }

func (t LetBang) String() string {
	return fmt.Sprintf("let !%s = %s in %s", t.Name, t.Of, t.Body)
}

func (t TLam) String() string {
	return fmt.Sprintf("/\\%s:%s. %s", t.Hint, t.Ty, t.Body)
}

func (t TApp) String() string { return fmt.Sprintf("%s [%s]", t.Fn, t.Arg) }

func (t Pack) String() string {
	return fmt.Sprintf("pack(%s, %s)", t.Witness, t.Of)
}

func (t Unpack) String() string {
	return fmt.Sprintf("let (%s, %s) = unpack %s in %s", t.Hint, t.Name, t.Of, t.Body)
}

func (t SayReturn) String() string {
	return fmt.Sprintf("sayreturn_%s(%s)", t.Prin, t.Of)
}

func (t SayBind) String() string {
	return fmt.Sprintf("saybind %s <- %s in %s", t.Name, t.Of, t.Body)
}

func (t Assert) String() string {
	name := "assert"
	if t.Persistent {
		name = "assert!"
	}
	prin := "?"
	if t.Key != nil {
		prin = "K" + t.Key.Principal().String()[:8]
	}
	return fmt.Sprintf("%s(%s, %s, <sig>)", name, prin, t.Prop)
}

func (t IfReturn) String() string {
	return fmt.Sprintf("ifreturn_%s(%s)", t.Cond, t.Of)
}

func (t IfBind) String() string {
	return fmt.Sprintf("ifbind %s <- %s in %s", t.Name, t.Of, t.Body)
}

func (t IfWeaken) String() string {
	return fmt.Sprintf("ifweaken_%s(%s)", t.Cond, t.Of)
}

func (t IfSay) String() string { return fmt.Sprintf("if/say(%s)", t.Of) }
