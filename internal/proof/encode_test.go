package proof

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"typecoin/internal/bkey"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
)

// roundTrip encodes and decodes m, failing on any mismatch. Equality is
// by re-encoding (the encoding is canonical).
func roundTrip(t *testing.T, m Term) {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatalf("Encode(%s): %v", m, err)
	}
	encoded := append([]byte(nil), buf.Bytes()...)
	back, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode(%s): %v", m, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("trailing bytes after %s", m)
	}
	var buf2 bytes.Buffer
	if err := Encode(&buf2, back); err != nil {
		t.Fatalf("re-Encode(%s): %v", back, err)
	}
	if !bytes.Equal(encoded, buf2.Bytes()) {
		t.Fatalf("round trip changed encoding of %s", m)
	}
}

// TestEncodeDecodeAllForms covers every proof-term constructor.
func TestEncodeDecodeAllForms(t *testing.T) {
	a := logic.Atom(lf.This("a"))
	b := logic.Atom(lf.This("b"))
	sum := logic.Plus(a, b)
	ex := logic.Exists("n", lf.NatFam, logic.One)
	key, err := bkey.NewPrivateKey(&detEntropy{state: sha256.Sum256([]byte("enc"))})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := SignPersistent(key, a)
	if err != nil {
		t.Fatal(err)
	}

	terms := []Term{
		V("x"),
		Const{Ref: lf.This("merge")},
		Lam{Name: "x", Ty: a, Body: V("x")},
		App{Fn: V("f"), Arg: V("x")},
		Pair{L: V("x"), R: V("y")},
		LetPair{LName: "x", RName: "y", Of: V("p"), Body: V("x")},
		Unit{},
		LetUnit{Of: V("u"), Body: Unit{}},
		WithPair{L: V("x"), R: V("y")},
		Fst{Of: V("p")},
		Snd{Of: V("p")},
		Inl{Of: V("x"), As: sum},
		Inr{Of: V("y"), As: sum},
		Case{Of: V("s"), LName: "x", L: V("x"), RName: "y", R: V("y")},
		Abort{Of: V("z"), As: a},
		BangI{Of: Unit{}},
		LetBang{Name: "x", Of: V("u"), Body: V("x")},
		TLam{Hint: "n", Ty: lf.NatFam, Body: Unit{}},
		TApp{Fn: V("f"), Arg: lf.Nat(7)},
		Pack{Witness: lf.Nat(3), Of: Unit{}, As: ex},
		Unpack{Hint: "n", Name: "x", Of: V("e"), Body: V("x")},
		SayReturn{Prin: lf.Principal(key.Principal()), Of: Unit{}},
		SayBind{Name: "x", Of: V("s"), Body: V("x")},
		Assert{Key: key.PubKey(), Prop: a, Sig: sig, Persistent: true},
		Assert{Key: key.PubKey(), Prop: a, Sig: sig, Persistent: false},
		IfReturn{Cond: logic.Before(10), Of: Unit{}},
		IfBind{Name: "x", Of: V("s"), Body: V("x")},
		IfWeaken{Cond: logic.True, Of: V("s")},
		IfSay{Of: V("s")},
	}
	for _, m := range terms {
		roundTrip(t, m)
	}
	// A deep composite: the Figure 3 skeleton.
	fig3 := Lam{Name: "d", Ty: logic.One,
		Body: LetPair{LName: "ca", RName: "r", Of: V("d"),
			Body: IfBind{Name: "z",
				Of: IfWeaken{Cond: logic.Before(100), Of: IfSay{Of: SayBind{Name: "f",
					Of:   Assert{Key: key.PubKey(), Prop: a, Sig: sig, Persistent: true},
					Body: SayReturn{Prin: lf.Principal(key.Principal()), Of: App{Fn: V("f"), Arg: V("r")}}}}},
				Body: IfReturn{Cond: logic.Before(100), Of: V("z")}}}}
	roundTrip(t, fig3)
}

// TestDecodedProofStillChecks: checking survives serialization —
// including the signature inside an Assert.
func TestDecodedProofStillChecks(t *testing.T) {
	b := testBasis(t)
	key := newKey(t, "roundtrip")
	payload := []byte("the payload")
	sig, err := SignAffine(key, atomA(), payload)
	if err != nil {
		t.Fatal(err)
	}
	m := Lam{Name: "x", Ty: logic.One,
		Body: Pair{L: V("x"),
			R: Assert{Key: key.PubKey(), Prop: atomA(), Sig: sig}}}
	want := logic.Lolli(logic.One,
		logic.Tensor(logic.One, logic.Says(lf.Principal(key.Principal()), atomA())))
	if err := Check(b, payload, m, want); err != nil {
		t.Fatalf("original: %v", err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(b, payload, back, want); err != nil {
		t.Fatalf("decoded proof rejected: %v", err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	bad := [][]byte{
		{},           // empty
		{0xff},       // unknown tag
		{0x70},       // var without name
		{0x72, 0x01}, // lam with truncated name
	}
	for _, raw := range bad {
		if _, err := Decode(bytes.NewReader(raw)); err == nil {
			t.Errorf("malformed encoding % x decoded", raw)
		}
	}
}
