package index

// The subscription hub fans chain and mempool events out to long-lived
// API clients. Publishing never blocks: each subscriber owns a buffered
// channel, and a subscriber that cannot keep up loses events (counted,
// and reported to it as a gap marker) rather than stalling block
// processing. Subscribers are registered with an interest set so a
// wallet watching two addresses is not woken for every block.

import (
	"sync"

	"typecoin/internal/bkey"
	"typecoin/internal/chainhash"
)

// BlockEvent announces a main-chain change.
type BlockEvent struct {
	Hash      chainhash.Hash
	Height    int
	Connected bool
	TxCount   int
}

// TxEvent announces an unconfirmed transaction accepted to the mempool.
type TxEvent struct {
	TxID chainhash.Hash
}

// AddrEvent announces confirmed activity on one address: one
// transaction's aggregate effect, as stored in the history row.
// Connected is false when the activity is being rolled back by a reorg.
type AddrEvent struct {
	Principal bkey.Principal
	TxID      chainhash.Hash
	Height    int
	TxIndex   int
	Flags     byte
	Funded    int64
	Spent     int64
	Connected bool
}

// Event is the tagged union delivered to subscribers.
type Event struct {
	Block *BlockEvent
	Tx    *TxEvent
	Addr  *AddrEvent
	// Dropped reports how many events this subscriber lost since the
	// previous delivery; clients treat it as a resync hint.
	Dropped int
}

// subscriberBuffer is each subscriber's channel depth. Deep enough to
// absorb a burst of address activity from one large block; a subscriber
// further behind than this is losing events anyway.
const subscriberBuffer = 256

// subscriber is one registered event consumer.
type subscriber struct {
	ch         chan Event
	wantBlocks bool
	wantTxs    bool
	addrs      map[bkey.Principal]bool // nil with wantAddrs=false means none

	mu      sync.Mutex
	dropped int // events lost since the last successful delivery
}

type hub struct {
	mu   sync.Mutex
	subs map[*subscriber]bool
}

func newHub() *hub {
	return &hub{subs: make(map[*subscriber]bool)}
}

// subscribe registers a consumer. addrs may be empty.
func (h *hub) subscribe(wantBlocks, wantTxs bool, addrs []bkey.Principal) *subscriber {
	s := &subscriber{
		ch:         make(chan Event, subscriberBuffer),
		wantBlocks: wantBlocks,
		wantTxs:    wantTxs,
	}
	if len(addrs) > 0 {
		s.addrs = make(map[bkey.Principal]bool, len(addrs))
		for _, a := range addrs {
			s.addrs[a] = true
		}
	}
	h.mu.Lock()
	h.subs[s] = true
	h.mu.Unlock()
	return s
}

// unsubscribe removes a consumer. Its channel is not closed — the
// serving goroutine exits via its request context, and an unclosed
// buffered channel is simply collected.
func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
}

// active returns the live subscriber count.
func (h *hub) active() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// snapshot copies the subscriber set so delivery runs without the hub
// lock (a slow subscriber must not block subscribe/unsubscribe).
func (h *hub) snapshot() []*subscriber {
	h.mu.Lock()
	out := make([]*subscriber, 0, len(h.subs))
	for s := range h.subs {
		out = append(out, s)
	}
	h.mu.Unlock()
	return out
}

// deliver offers ev to s without blocking; returns 1 if it was dropped.
func (s *subscriber) deliver(ev Event) int {
	s.mu.Lock()
	ev.Dropped = s.dropped
	select {
	case s.ch <- ev:
		s.dropped = 0
		s.mu.Unlock()
		return 0
	default:
		s.dropped++
		s.mu.Unlock()
		return 1
	}
}

func (h *hub) publishBlock(ev BlockEvent) int {
	dropped := 0
	for _, s := range h.snapshot() {
		if s.wantBlocks {
			dropped += s.deliver(Event{Block: &ev})
		}
	}
	return dropped
}

func (h *hub) publishTx(ev TxEvent) int {
	dropped := 0
	for _, s := range h.snapshot() {
		if s.wantTxs {
			dropped += s.deliver(Event{Tx: &ev})
		}
	}
	return dropped
}

func (h *hub) publishAddr(ev AddrEvent) int {
	dropped := 0
	for _, s := range h.snapshot() {
		if s.addrs[ev.Principal] {
			dropped += s.deliver(Event{Addr: &ev})
		}
	}
	return dropped
}
