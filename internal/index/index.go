package index

// Package index maintains Blockbook-style query indexes over the main
// chain: address -> transaction history, outpoint -> spending
// transaction, and principal -> Typecoin announcement/receipt activity.
//
// The indexer is a persist subscriber: its rows ride in the SAME atomic
// store batch as each chain connect/disconnect, so a crash can never
// commit a block without its index rows or vice versa. On open it
// catches up by bulk-replaying the main chain from its recorded tip
// (or from genesis when the stored tip no longer lies on the main
// chain), registered and snapshotted under one chain lock acquisition
// so no block falls between the scan and the event stream.
//
// Queries are served straight from the store, paginated by cursor; the
// hub (hub.go) pushes new-block/new-tx/address-activity events to
// long-lived subscribers after each commit.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"typecoin/internal/bkey"
	"typecoin/internal/chain"
	"typecoin/internal/chainhash"
	"typecoin/internal/script"
	"typecoin/internal/store"
	"typecoin/internal/telemetry"
	"typecoin/internal/typecoin"
	"typecoin/internal/wire"
)

// rebuildBatchBlocks bounds how many blocks a catch-up replay folds
// into one store batch. Each batch also rewrites the index tip, so an
// interrupted rebuild resumes from the last applied batch.
const rebuildBatchBlocks = 256

// Indexer maintains the index column families over one chain.
type Indexer struct {
	c  *chain.Chain
	st store.Store

	// tipHeight mirrors the committed index tip for gauges and the
	// status endpoint without a store read; updated post-commit.
	tipHeight atomic.Int64

	// pending carries per-block address activity from contribute (under
	// the chain lock, pre-commit) to onChainChange (post-commit), where
	// it is published to subscribers.
	pendingMu sync.Mutex
	pending   map[pendKey][]AddrEvent

	// catchupBlocks is how many blocks the opening replay indexed,
	// surfaced by telemetry.
	catchupBlocks int

	hub *hub
	tel indexTelemetry
}

// pendKey identifies one direction of one block's commit.
type pendKey struct {
	hash      chainhash.Hash
	connected bool
}

// Open attaches an indexer to c, persisting into the chain's own store.
// It must be called before block processing starts (like wallet and
// ledger attachment): registration and the catch-up bound are taken
// under one chain lock acquisition, so every block committed afterwards
// reaches the indexer exactly once.
func Open(c *chain.Chain) (*Indexer, error) {
	ix := &Indexer{
		c:       c,
		st:      c.Store(),
		pending: make(map[pendKey][]AddrEvent),
		hub:     newHub(),
	}
	ix.tipHeight.Store(-1)
	c.Subscribe(ix.onChainChange)
	snap := c.SubscribePersistWithTip(ix.contribute)
	if err := ix.catchUp(snap); err != nil {
		return nil, err
	}
	return ix, nil
}

// Chain returns the chain this indexer serves.
func (ix *Indexer) Chain() *chain.Chain { return ix.c }

// TipHeight returns the committed index tip height (-1 before open
// completes — never observable by callers of Open).
func (ix *Indexer) TipHeight() int { return int(ix.tipHeight.Load()) }

// Tip reads the committed index tip row.
func (ix *Indexer) Tip() (chainhash.Hash, int, error) {
	raw, err := ix.st.Get(keyTip)
	if err != nil {
		return chainhash.Hash{}, 0, err
	}
	return decodeTip(raw)
}

// catchUp brings the stored index to snap, the chain tip at
// registration time. Three cases: fresh store (build from genesis),
// stored tip on the main chain (incremental replay above it), stored
// tip elsewhere — a fork abandoned while the indexer was not attached,
// or a torn rebuild — (wipe and rebuild). The replay maintains its own
// outpoint table, deliberately independent of the chain's undo journal,
// so rebuild-vs-incremental comparisons exercise two genuinely
// different code paths.
func (ix *Indexer) catchUp(snap chain.Snapshot) error {
	from := 0
	if has, err := ix.st.Has(keyTip); err != nil {
		return err
	} else if has {
		raw, err := ix.st.Get(keyTip)
		if err != nil {
			return err
		}
		tipHash, tipHeight, err := decodeTip(raw)
		if err == nil && tipHeight <= snap.Height {
			if blk, ok := ix.c.BlockAtHeight(tipHeight); ok && blk.BlockHash() == tipHash {
				from = tipHeight + 1
			}
		}
		if from == 0 {
			// Stored tip is corrupt or off the main chain: the rows
			// under it cannot be trusted row-by-row, so start clean.
			if err := ix.wipe(); err != nil {
				return err
			}
		}
	}
	n, err := ix.replayInto(ix.st, snap.Height, from)
	if err != nil {
		return err
	}
	ix.catchupBlocks = n
	ix.tipHeight.Store(int64(snap.Height))
	return nil
}

// wipe deletes every index row ('i' prefix) in bounded batches.
func (ix *Indexer) wipe() error {
	var keys [][]byte
	err := ix.st.Iterate([]byte("i"), func(k, v []byte) error {
		keys = append(keys, append([]byte(nil), k...))
		return nil
	})
	if err != nil {
		return err
	}
	b := store.NewBatch()
	for _, k := range keys {
		b.Delete(k)
		if b.Len() >= 4096 {
			if err := ix.st.Apply(b); err != nil {
				return err
			}
			b = store.NewBatch()
		}
	}
	if b.Len() > 0 {
		return ix.st.Apply(b)
	}
	return nil
}

// replayInto replays main-chain blocks [0, upTo] against dst,
// maintaining its own outpoint->entry table for input attribution, and
// writes rows only for heights >= writeFrom (earlier blocks feed the
// table without emitting rows). Rows land in batches of
// rebuildBatchBlocks blocks, each batch carrying the index tip, so an
// interrupted bulk sync resumes instead of restarting. Returns the
// number of blocks whose rows were written.
func (ix *Indexer) replayInto(dst store.Store, upTo, writeFrom int) (int, error) {
	utxo := make(map[wire.OutPoint]*chain.UtxoEntry)
	b := store.NewBatch()
	written := 0
	var lastHash chainhash.Hash
	flush := func(height int) error {
		b.Put(keyTip, encodeTip(lastHash, height))
		if err := dst.Apply(b); err != nil {
			return err
		}
		b = store.NewBatch()
		return nil
	}
	for h := 0; h <= upTo; h++ {
		blk, ok := ix.c.BlockAtHeight(h)
		if !ok {
			return written, fmt.Errorf("index: main chain missing block at height %d", h)
		}
		spent := make([]chain.SpentOutput, 0, 8)
		for ti, tx := range blk.Transactions {
			if ti > 0 {
				for _, in := range tx.TxIn {
					op := in.PreviousOutPoint
					e, ok := utxo[op]
					if !ok {
						return written, fmt.Errorf("index: replay at height %d spends unknown output %v", h, op)
					}
					spent = append(spent, chain.SpentOutput{OutPoint: op, Entry: e})
					delete(utxo, op)
				}
			}
			txid := tx.TxHash()
			for i, out := range tx.TxOut {
				utxo[wire.OutPoint{Hash: txid, Index: uint32(i)}] = &chain.UtxoEntry{
					Out: *out, Height: h, IsCoinBase: ti == 0,
				}
			}
		}
		if h >= writeFrom {
			br := computeBlockRows(blk, h, spent)
			for _, r := range br.rows {
				b.Put(r.key, r.val)
			}
			written++
		}
		lastHash = blk.BlockHash()
		if h >= writeFrom && (h-writeFrom+1)%rebuildBatchBlocks == 0 {
			if err := flush(h); err != nil {
				return written, err
			}
		}
	}
	// Always stamp the tip, even when no rows were written (fresh chain
	// of empty blocks, or nothing above writeFrom).
	if err := flush(upTo); err != nil {
		return written, err
	}
	return written, nil
}

// rowOp is one computed index row.
type rowOp struct {
	key []byte
	val []byte
}

// blockRows is everything one block contributes to the index: the rows
// themselves plus the per-address activity the hub publishes after the
// commit lands.
type blockRows struct {
	rows     []rowOp
	activity []AddrEvent
}

// addrDelta aggregates what one transaction does to one address.
type addrDelta struct {
	flags  byte
	funded int64
	spent  int64
}

// computeBlockRows derives every index row for one block. spent lists
// the UTXO entries the block consumed in spend order (transaction
// order, then input order), exactly as chain.PersistEvent delivers
// them; the coinbase consumes none. The same function serves connect
// (Put rows), disconnect (Delete the same keys) and bulk rebuild, which
// is what makes "incremental index == from-genesis rebuild" a testable
// bit-equality rather than an approximation.
func computeBlockRows(blk *wire.MsgBlock, height int, spent []chain.SpentOutput) blockRows {
	var br blockRows
	cursor := 0
	for ti, tx := range blk.Transactions {
		txid := tx.TxHash()
		deltas := make(map[bkey.Principal]*addrDelta)
		touch := func(p bkey.Principal) *addrDelta {
			d := deltas[p]
			if d == nil {
				d = &addrDelta{}
				deltas[p] = d
			}
			return d
		}
		if ti > 0 {
			for vin, in := range tx.TxIn {
				if cursor >= len(spent) {
					break // defensively tolerate a short journal
				}
				so := spent[cursor]
				cursor++
				br.rows = append(br.rows, rowOp{
					key: spendKey(in.PreviousOutPoint),
					val: encodeSpend(txid, uint32(vin), height),
				})
				if so.Entry == nil {
					continue
				}
				if p, ok := script.ExtractPubKeyHash(so.Entry.Out.PkScript); ok {
					d := touch(p)
					d.flags |= RoleSpent
					d.spent += so.Entry.Out.Value
				}
			}
		}
		for _, out := range tx.TxOut {
			if p, ok := script.ExtractPubKeyHash(out.PkScript); ok {
				d := touch(p)
				d.flags |= RoleFunded
				d.funded += out.Value
			}
		}
		// Typecoin activity: a carrier's commitment hash is indexed for
		// every principal the carrier touches — receipt role for funded
		// principals, announce role for spending principals.
		meta, hasMeta := typecoin.ExtractMetaHash(tx)
		for p, d := range deltas {
			br.rows = append(br.rows, rowOp{
				key: histKey(p, uint32(height), uint32(ti)),
				val: encodeHist(txid, d.flags, d.funded, d.spent),
			})
			if hasMeta {
				br.rows = append(br.rows, rowOp{
					key: prinKey(p, uint32(height), uint32(ti)),
					val: encodePrin(txid, meta, d.flags),
				})
			}
			br.activity = append(br.activity, AddrEvent{
				Principal: p,
				TxID:      txid,
				Height:    height,
				TxIndex:   ti,
				Flags:     d.flags,
				Funded:    d.funded,
				Spent:     d.spent,
			})
		}
	}
	return br
}

// contribute is the chain persist subscriber: it adds this block's
// index rows to the commit batch. It runs under the chain lock with the
// batch open, so the rows and the chain mutation are atomic.
func (ix *Indexer) contribute(ev chain.PersistEvent, b *store.Batch) {
	br := computeBlockRows(ev.Block, ev.Height, ev.Spent)
	blkHash := ev.Block.BlockHash()
	if ev.Connected {
		for _, r := range br.rows {
			b.Put(r.key, r.val)
		}
		b.Put(keyTip, encodeTip(blkHash, ev.Height))
		ix.tel.rowsWritten.Add(uint64(len(br.rows)))
	} else {
		for _, r := range br.rows {
			b.Delete(r.key)
		}
		b.Put(keyTip, encodeTip(ev.Block.Header.PrevBlock, ev.Height-1))
		ix.tel.rowsDeleted.Add(uint64(len(br.rows)))
	}
	ix.pendingMu.Lock()
	ix.pending[pendKey{hash: blkHash, connected: ev.Connected}] = br.activity
	ix.pendingMu.Unlock()
}

// onChainChange runs after a main-chain commit has landed: it publishes
// the block and the queued address activity to subscribers. Events for
// a block the indexer never contributed to (committed before Open)
// simply find no queued activity.
func (ix *Indexer) onChainChange(n chain.Notification) {
	blkHash := n.Block.BlockHash()
	if n.Connected {
		ix.tipHeight.Store(int64(n.Height))
		// Index visibility: the rows committed with this block are now
		// queryable. Observe-only, so catch-up replay of historical
		// blocks does not fabricate spans.
		if sp := ix.tel.spans; sp != nil {
			sp.Observe(telemetry.SpanBlock, blkHash, telemetry.StageIndexed)
			for i, tx := range n.Block.Transactions {
				if i == 0 {
					continue
				}
				sp.Observe(telemetry.SpanTx, tx.TxHash(), telemetry.StageIndexed)
			}
		}
	} else {
		ix.tipHeight.Store(int64(n.Height - 1))
	}
	ix.pendingMu.Lock()
	k := pendKey{hash: blkHash, connected: n.Connected}
	activity := ix.pending[k]
	delete(ix.pending, k)
	ix.pendingMu.Unlock()

	dropped := ix.hub.publishBlock(BlockEvent{
		Hash:      blkHash,
		Height:    n.Height,
		Connected: n.Connected,
		TxCount:   len(n.Block.Transactions),
	})
	for _, ev := range activity {
		ev.Connected = n.Connected
		dropped += ix.hub.publishAddr(ev)
	}
	if dropped > 0 {
		ix.tel.eventsDropped.Add(uint64(dropped))
	}
}

// PublishTx pushes an unconfirmed-transaction event to subscribers; the
// daemon wires it to the mempool's acceptance hook.
func (ix *Indexer) PublishTx(tx *wire.MsgTx) {
	if n := ix.hub.publishTx(TxEvent{TxID: tx.TxHash()}); n > 0 {
		ix.tel.eventsDropped.Add(uint64(n))
	}
}

// HistEntry is one address-history row, decoded.
type HistEntry struct {
	TxID    chainhash.Hash
	Height  int
	TxIndex int
	Flags   byte
	Funded  int64
	Spent   int64
}

// Cursor addresses a position in an address's history: strictly after
// (Height, TxIndex). The zero cursor starts at the beginning.
type Cursor struct {
	Height  uint32
	TxIndex uint32
	Set     bool
}

// AddressHistory returns up to limit history rows for p in chain order,
// starting after cur. A non-nil next cursor means more rows exist.
func (ix *Indexer) AddressHistory(p bkey.Principal, cur Cursor, limit int) ([]HistEntry, *Cursor, error) {
	return ix.scanAddr('h', p, cur, limit, func(height, txIdx uint32, v []byte) (HistEntry, error) {
		txid, flags, funded, spent, err := decodeHist(v)
		return HistEntry{
			TxID: txid, Height: int(height), TxIndex: int(txIdx),
			Flags: flags, Funded: funded, Spent: spent,
		}, err
	})
}

// PrinEntry is one principal-activity row: a Typecoin carrier touching
// the principal and the commitment hash it carries.
type PrinEntry struct {
	TxID       chainhash.Hash
	Commitment chainhash.Hash
	Height     int
	TxIndex    int
	Flags      byte
}

// PrincipalActivity returns up to limit Typecoin activity rows for p in
// chain order, starting after cur.
func (ix *Indexer) PrincipalActivity(p bkey.Principal, cur Cursor, limit int) ([]PrinEntry, *Cursor, error) {
	var out []PrinEntry
	_, next, err := ix.scanAddr('p', p, cur, limit, func(height, txIdx uint32, v []byte) (HistEntry, error) {
		carrier, commitment, flags, err := decodePrin(v)
		if err != nil {
			return HistEntry{}, err
		}
		out = append(out, PrinEntry{
			TxID: carrier, Commitment: commitment,
			Height: int(height), TxIndex: int(txIdx), Flags: flags,
		})
		return HistEntry{}, nil
	})
	return out, next, err
}

// scanAddr walks one address-keyed family from a cursor, decoding each
// row with decode. It reads limit rows plus one probe: the probe's
// existence (not its content) decides whether a next cursor is
// returned, so pagination never returns a dangling cursor.
func (ix *Indexer) scanAddr(kind byte, p bkey.Principal, cur Cursor, limit int,
	decode func(height, txIdx uint32, v []byte) (HistEntry, error)) ([]HistEntry, *Cursor, error) {
	if limit <= 0 {
		limit = DefaultPageLimit
	}
	prefix := addrPrefix(kind, p)
	start := prefix
	if cur.Set {
		// Strictly after the cursor position: +1 on the tx index never
		// overflows into the next height because the key is
		// fixed-width.
		if cur.TxIndex == ^uint32(0) {
			start = appendAddrKey(nil, kind, p, cur.Height+1, 0)
		} else {
			start = appendAddrKey(nil, kind, p, cur.Height, cur.TxIndex+1)
		}
	}
	var (
		out          []HistEntry
		next         *Cursor
		lastH, lastT uint32
		errS         error
	)
	stop := fmt.Errorf("index: scan done")
	err := store.IterateFrom(ix.st, prefix, start, func(k, v []byte) error {
		height, txIdx, err := decodeAddrKey(k)
		if err != nil {
			errS = err
			return stop
		}
		if len(out) >= limit {
			// Probe row: the page is full and a successor exists, so
			// hand back a cursor at the last returned row (the scan
			// resumes strictly after it).
			next = &Cursor{Height: lastH, TxIndex: lastT, Set: true}
			return stop
		}
		e, err := decode(height, txIdx, v)
		if err != nil {
			errS = err
			return stop
		}
		out = append(out, e)
		lastH, lastT = height, txIdx
		return nil
	})
	if err != nil && err != stop {
		return nil, nil, err
	}
	if errS != nil {
		return nil, nil, errS
	}
	return out, next, nil
}

// SpendInfo reports which transaction consumed an outpoint.
type SpendInfo struct {
	Spender chainhash.Hash
	Vin     uint32
	Height  int
}

// Outspend looks up the main-chain spend of op, if any.
func (ix *Indexer) Outspend(op wire.OutPoint) (SpendInfo, bool, error) {
	k := spendKey(op)
	has, err := ix.st.Has(k)
	if err != nil || !has {
		return SpendInfo{}, false, err
	}
	v, err := ix.st.Get(k)
	if err != nil {
		return SpendInfo{}, false, err
	}
	spender, vin, height, err := decodeSpend(v)
	if err != nil {
		return SpendInfo{}, false, err
	}
	return SpendInfo{Spender: spender, Vin: vin, Height: height}, true, nil
}

// DefaultPageLimit bounds query pages when the client does not say.
const DefaultPageLimit = 100

// MaxPageLimit is the hard ceiling on one page.
const MaxPageLimit = 1000

// AuditRebuild replays the main chain from genesis into a fresh
// in-memory store using the same row computation as live indexing, then
// requires the live index rows to be bit-for-bit identical. This is the
// reorg-consistency oracle: an incremental index that drifted from the
// canonical from-genesis answer (a stale row surviving a disconnect, a
// missed spend) fails the comparison.
func (ix *Indexer) AuditRebuild() error {
	mem := store.NewMem()
	snap := ix.c.BestSnapshot()
	if _, err := ix.replayInto(mem, snap.Height, 0); err != nil {
		return fmt.Errorf("index audit: rebuild failed: %w", err)
	}
	want, err := dumpIndexRows(mem)
	if err != nil {
		return err
	}
	got, err := dumpIndexRows(ix.st)
	if err != nil {
		return err
	}
	if len(got) != len(want) {
		return fmt.Errorf("index audit: live index has %d rows, rebuild produced %d", len(got), len(want))
	}
	for k, v := range want {
		gv, ok := got[k]
		if !ok {
			return fmt.Errorf("index audit: live index missing row %x", k)
		}
		if gv != v {
			return fmt.Errorf("index audit: row %x differs: live %x, rebuild %x", k, gv, v)
		}
	}
	return nil
}

// dumpIndexRows snapshots every 'i'-prefixed row as string->string.
func dumpIndexRows(st store.Store) (map[string]string, error) {
	out := make(map[string]string)
	err := st.Iterate([]byte("i"), func(k, v []byte) error {
		out[string(k)] = string(v)
		return nil
	})
	return out, err
}
