package index

// Indexer tests: basic row correctness over a live chain, catch-up in
// its three flavors (fresh build, incremental, wipe-and-rebuild after a
// poisoned tip), and the reorg-consistency property test — seeded
// random fork histories after each of which the incremental index must
// be bit-for-bit identical to a from-genesis rebuild. Scenarios run
// across a fixed seed list; replay one failing seed with INDEX_SEED=<n>.

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"typecoin/internal/bkey"
	"typecoin/internal/chain"
	"typecoin/internal/chainhash"
	"typecoin/internal/clock"
	"typecoin/internal/mempool"
	"typecoin/internal/miner"
	"typecoin/internal/script"
	"typecoin/internal/store"
	"typecoin/internal/testutil"
	"typecoin/internal/wallet"
	"typecoin/internal/wire"
)

// indexSeeds returns the property-test seed list, or the single seed
// from INDEX_SEED for replaying a failure.
func indexSeeds(t *testing.T) []int64 {
	t.Helper()
	if env := os.Getenv("INDEX_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("INDEX_SEED=%q: %v", env, err)
		}
		return []int64{seed}
	}
	return []int64{1, 7, 23, 42, 1337}
}

// harness is a single-node stack with an attached indexer.
type harness struct {
	params  *chain.Params
	clk     *clock.Simulated
	chain   *chain.Chain
	ix      *Indexer
	pool    *mempool.Pool
	miner   *miner.Miner
	wallet  *wallet.Wallet
	payout  bkey.Principal
	forkTag byte
}

// newHarness builds a regtest node over st (nil = fresh in-memory
// store) with the indexer attached before any block processing.
func newHarness(t testing.TB, seed string, st store.Store) *harness {
	t.Helper()
	params := chain.RegTestParams()
	clk := clock.NewSimulated(params.GenesisBlock.Header.Timestamp.Add(time.Minute))
	c, err := chain.Open(chain.Config{Params: params, Clock: clk, Store: st})
	if err != nil {
		t.Fatalf("open chain: %v", err)
	}
	ix, err := Open(c)
	if err != nil {
		t.Fatalf("open index: %v", err)
	}
	pool := mempool.New(c, -1)
	w, err := wallet.Open(c, testutil.NewEntropy(seed))
	if err != nil {
		t.Fatalf("open wallet: %v", err)
	}
	payout, err := w.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		params: params, clk: clk, chain: c, ix: ix,
		pool: pool, miner: miner.New(c, pool, clk),
		wallet: w, payout: payout,
	}
}

func (h *harness) mine(t testing.TB) *wire.MsgBlock {
	t.Helper()
	h.clk.Advance(time.Minute)
	blk, _, err := h.miner.Mine(h.payout)
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	return blk
}

func (h *harness) fund(t testing.TB) {
	t.Helper()
	for i := 0; i < h.params.CoinbaseMaturity+1; i++ {
		h.mine(t)
	}
	if h.wallet.Balance() == 0 {
		t.Fatal("wallet unfunded after maturity blocks")
	}
}

// pay builds, accepts and returns a wallet payment to dest; nil when
// the build or acceptance fails (funds ran out, or the build conflicts
// with a transaction a reorg recycled into the pool) — acceptable
// mid-scenario, the index only cares about what actually confirms.
func (h *harness) pay(t testing.TB, dest bkey.Principal, amount int64) *wire.MsgTx {
	t.Helper()
	tx, err := h.wallet.Build([]wallet.Output{
		{Value: amount, PkScript: script.PayToPubKeyHash(dest)},
	}, wallet.BuildOptions{})
	if err != nil {
		return nil
	}
	if _, err := h.pool.Accept(tx); err != nil {
		h.wallet.Unlock(tx)
		return nil
	}
	return tx
}

// mineEmptyOn builds and solves a coinbase-only block on top of prev,
// used to assemble competing fork branches the miner will not build.
func (h *harness) mineEmptyOn(t testing.TB, prev chainhash.Hash, height int, ts time.Time) *wire.MsgBlock {
	t.Helper()
	h.forkTag++
	coinbase := wire.NewMsgTx(wire.TxVersion)
	coinbase.AddTxIn(&wire.TxIn{
		PreviousOutPoint: wire.OutPoint{Hash: chainhash.ZeroHash, Index: 0xffffffff},
		SignatureScript:  []byte{byte(height), byte(height >> 8), h.forkTag},
		Sequence:         wire.MaxTxInSequenceNum,
	})
	coinbase.AddTxOut(&wire.TxOut{
		Value:    h.params.CalcBlockSubsidy(height),
		PkScript: []byte{0x51}, // OP_1: anyone-can-spend
	})
	blk := &wire.MsgBlock{
		Header: wire.BlockHeader{
			Version:    1,
			PrevBlock:  prev,
			MerkleRoot: wire.ComputeMerkleRoot([]*wire.MsgTx{coinbase}),
			Timestamp:  ts,
			Bits:       h.params.PowLimitBits,
		},
		Transactions: []*wire.MsgTx{coinbase},
	}
	if err := miner.SolveBlock(blk); err != nil {
		t.Fatalf("solve fork block: %v", err)
	}
	return blk
}

// fork mines depth+1 empty blocks on a branch rooted depth blocks below
// the tip, forcing a reorganization of depth blocks.
func (h *harness) fork(t testing.TB, depth int) {
	t.Helper()
	best := h.chain.BestHeight()
	forkFrom := best - depth
	base, ok := h.chain.BlockAtHeight(forkFrom)
	if !ok {
		t.Fatalf("no block at fork height %d", forkFrom)
	}
	prev := base.BlockHash()
	for i := 0; i < depth+1; i++ {
		ts := h.clk.Advance(time.Minute)
		blk := h.mineEmptyOn(t, prev, forkFrom+1+i, ts)
		if _, err := h.chain.ProcessBlock(blk); err != nil {
			t.Fatalf("fork block: %v", err)
		}
		prev = blk.BlockHash()
	}
	if h.chain.BestHash() != prev {
		t.Fatal("fork branch did not become the best chain")
	}
}

func TestIndexBasicRows(t *testing.T) {
	h := newHarness(t, "index/basic", nil)
	h.fund(t)

	dest, err := h.wallet.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	tx := h.pay(t, dest, 2_000_000)
	if tx == nil {
		t.Fatal("payment build failed")
	}
	blk := h.mine(t)
	txid := tx.TxHash()

	// Index tip tracks the chain tip.
	tipHash, tipHeight, err := h.ix.Tip()
	if err != nil {
		t.Fatal(err)
	}
	if tipHash != h.chain.BestHash() || tipHeight != h.chain.BestHeight() {
		t.Fatalf("index tip %s@%d, chain %s@%d", tipHash, tipHeight, h.chain.BestHash(), h.chain.BestHeight())
	}
	if got := h.ix.TipHeight(); got != h.chain.BestHeight() {
		t.Fatalf("TipHeight = %d, want %d", got, h.chain.BestHeight())
	}

	// The destination's history is exactly the funding transaction.
	hist, next, err := h.ix.AddressHistory(dest, Cursor{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if next != nil || len(hist) != 1 {
		t.Fatalf("dest history = %d rows (next=%v), want 1", len(hist), next)
	}
	e := hist[0]
	if e.TxID != txid || e.Flags != RoleFunded || e.Funded != 2_000_000 || e.Spent != 0 {
		t.Fatalf("dest row = %+v", e)
	}
	if e.Height != h.chain.BestHeight() {
		t.Fatalf("dest row height %d, want tip %d", e.Height, h.chain.BestHeight())
	}

	// The payer's row for the same tx aggregates spend + change.
	payerHist, _, err := h.ix.AddressHistory(h.payout, Cursor{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var payerRow *HistEntry
	for i := range payerHist {
		if payerHist[i].TxID == txid {
			payerRow = &payerHist[i]
		}
	}
	if payerRow == nil {
		t.Fatal("payer has no row for the payment tx")
	}
	if payerRow.Flags&RoleSpent == 0 {
		t.Fatalf("payer row flags = %d, want spent bit", payerRow.Flags)
	}

	// Every input of the payment has a spend row naming it.
	for vin, in := range tx.TxIn {
		info, spent, err := h.ix.Outspend(in.PreviousOutPoint)
		if err != nil {
			t.Fatal(err)
		}
		if !spent || info.Spender != txid || info.Vin != uint32(vin) {
			t.Fatalf("outspend(%v) = %+v spent=%v", in.PreviousOutPoint, info, spent)
		}
	}
	// An unspent outpoint has none.
	op := wire.OutPoint{Hash: blk.Transactions[0].TxHash(), Index: 0}
	if _, spent, _ := h.ix.Outspend(op); spent {
		t.Fatal("fresh coinbase output reported spent")
	}

	if err := h.ix.AuditRebuild(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexPrincipalRows(t *testing.T) {
	h := newHarness(t, "index/principal", nil)
	h.fund(t)

	// A carrier-style transaction: output 0 is a 1-of-2 multisig whose
	// second slot packs a commitment hash (the Typecoin embedding), plus
	// a P2PKH payment so a principal is funded by the same tx.
	ownerKey, err := h.wallet.Key(h.payout)
	if err != nil {
		t.Fatal(err)
	}
	meta := chainhash.HashB([]byte("index/commitment"))
	multi, err := script.MultiSigScript(1, ownerKey.PubKey().Serialize(), script.MetadataKeySlot(meta))
	if err != nil {
		t.Fatal(err)
	}
	dest, err := h.wallet.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	carrier, err := h.wallet.Build([]wallet.Output{
		{Value: 500_000, PkScript: multi},
		{Value: 700_000, PkScript: script.PayToPubKeyHash(dest)},
	}, wallet.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.pool.Accept(carrier); err != nil {
		t.Fatal(err)
	}
	h.mine(t)

	// Both the funded principal (receipt) and the spending principal
	// (announce) see the carrier with its commitment hash.
	for _, p := range []bkey.Principal{dest, h.payout} {
		acts, _, err := h.ix.PrincipalActivity(p, Cursor{}, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(acts) != 1 {
			t.Fatalf("principal %s: %d activity rows, want 1", p, len(acts))
		}
		if acts[0].TxID != carrier.TxHash() || acts[0].Commitment != meta {
			t.Fatalf("principal %s activity = %+v", p, acts[0])
		}
	}
	dacts, _, _ := h.ix.PrincipalActivity(dest, Cursor{}, 10)
	if dacts[0].Flags&RoleFunded == 0 {
		t.Fatal("funded principal lacks the funded role")
	}
	pacts, _, _ := h.ix.PrincipalActivity(h.payout, Cursor{}, 10)
	if pacts[0].Flags&RoleSpent == 0 {
		t.Fatal("spending principal lacks the spent role")
	}
	if err := h.ix.AuditRebuild(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexPagination(t *testing.T) {
	h := newHarness(t, "index/pagination", nil)
	h.fund(t)
	// More wallet→payout traffic: several rows for the payout address
	// across heights (plus one per coinbase).
	for i := 0; i < 5; i++ {
		h.pay(t, h.payout, 100_000+int64(i))
		h.mine(t)
	}

	full, next, err := h.ix.AddressHistory(h.payout, Cursor{}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if next != nil {
		t.Fatal("full scan returned a next cursor")
	}
	if len(full) < h.params.CoinbaseMaturity+6 {
		t.Fatalf("only %d rows for the payout address", len(full))
	}

	// Walking one row at a time must reproduce the full scan exactly.
	var walked []HistEntry
	cur := Cursor{}
	for {
		page, n, err := h.ix.AddressHistory(h.payout, cur, 1)
		if err != nil {
			t.Fatal(err)
		}
		walked = append(walked, page...)
		if n == nil {
			break
		}
		cur = *n
	}
	if !reflect.DeepEqual(full, walked) {
		t.Fatalf("pagination walk diverged: %d rows vs %d", len(walked), len(full))
	}

	// Chain order: heights never decrease, (height, txIdx) strictly grows.
	for i := 1; i < len(full); i++ {
		prev, cur := full[i-1], full[i]
		if cur.Height < prev.Height ||
			(cur.Height == prev.Height && cur.TxIndex <= prev.TxIndex) {
			t.Fatalf("rows out of order at %d: %+v then %+v", i, prev, cur)
		}
	}
}

// TestIndexCatchup exercises the three open paths against one shared
// store: fresh build from genesis, incremental catch-up from a stored
// tip, and wipe-and-rebuild after the stored tip is poisoned.
func TestIndexCatchup(t *testing.T) {
	st := store.NewMem()
	h := newHarness(t, "index/catchup", st)
	h.fund(t)
	dest, _ := h.wallet.NewKey()
	h.pay(t, dest, 1_000_000)
	h.mine(t)
	wantRows, err := dumpIndexRows(st)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh store has no index tip: the open replay indexes exactly
	// the genesis block, and everything later arrives via contribute.
	if h.ix.catchupBlocks != 1 {
		t.Fatalf("live-attached index caught up %d blocks, want 1 (genesis)", h.ix.catchupBlocks)
	}

	reopen := func(label string) *Indexer {
		t.Helper()
		c2, err := chain.Open(chain.Config{Params: h.params, Clock: h.clk, Store: st})
		if err != nil {
			t.Fatalf("%s: reopen chain: %v", label, err)
		}
		ix2, err := Open(c2)
		if err != nil {
			t.Fatalf("%s: reopen index: %v", label, err)
		}
		got, err := dumpIndexRows(st)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, wantRows) {
			t.Fatalf("%s: reopened rows differ (%d vs %d)", label, len(got), len(wantRows))
		}
		if err := ix2.AuditRebuild(); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return ix2
	}

	// Incremental: the stored tip matches the chain, so catch-up indexes
	// nothing.
	ix2 := reopen("incremental")
	if ix2.catchupBlocks != 0 {
		t.Fatalf("up-to-date reopen caught up %d blocks", ix2.catchupBlocks)
	}

	// Behind: roll the index tip back by lying that it stopped at height
	// 3; catch-up must index exactly the blocks above it.
	blk3, _ := h.chain.BlockAtHeight(3)
	b := store.NewBatch()
	b.Put(keyTip, encodeTip(blk3.BlockHash(), 3))
	if err := st.Apply(b); err != nil {
		t.Fatal(err)
	}
	ix3 := reopen("behind")
	if want := h.chain.BestHeight() - 3; ix3.catchupBlocks != want {
		t.Fatalf("behind reopen caught up %d blocks, want %d", ix3.catchupBlocks, want)
	}

	// Poisoned: a tip hash that is not on the main chain forces a full
	// wipe and rebuild.
	b = store.NewBatch()
	b.Put(keyTip, encodeTip(chainhash.HashB([]byte("not a block")), 3))
	if err := st.Apply(b); err != nil {
		t.Fatal(err)
	}
	ix4 := reopen("poisoned")
	if want := h.chain.BestHeight() + 1; ix4.catchupBlocks != want {
		t.Fatalf("poisoned reopen caught up %d blocks, want full %d", ix4.catchupBlocks, want)
	}
}

// TestReorgConsistencyProperty is the property test: seeded random
// histories of wallet traffic interleaved with forced forks. After
// every reorganization (and at the end) the incrementally-maintained
// index must be bit-for-bit identical to a from-genesis rebuild, and
// spot queries must agree with the chain's own records.
func TestReorgConsistencyProperty(t *testing.T) {
	for _, seed := range indexSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runReorgScenario(t, seed)
		})
	}
}

func runReorgScenario(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	h := newHarness(t, fmt.Sprintf("index/reorg/%d", seed), nil)
	h.fund(t)

	reorgs := 0
	for round := 0; round < 15 || reorgs == 0; round++ {
		if round > 60 {
			t.Fatal("no reorg occurred in 60 rounds")
		}
		for i := rng.Intn(3); i > 0; i-- {
			dest, err := h.wallet.NewKey()
			if err != nil {
				t.Fatal(err)
			}
			h.pay(t, dest, 60_000+int64(rng.Intn(1_000_000)))
		}
		h.mine(t)
		if rng.Intn(3) == 0 {
			depth := 1 + rng.Intn(3)
			h.fork(t, depth)
			reorgs++
			if err := h.ix.AuditRebuild(); err != nil {
				t.Fatalf("seed %d: after reorg %d (depth %d): %v", seed, reorgs, depth, err)
			}
		}
	}
	if err := h.ix.AuditRebuild(); err != nil {
		t.Fatalf("seed %d: final: %v", seed, err)
	}

	// Cross-check the spend index against the chain: every input of
	// every main-chain transaction has a spend row naming its consumer,
	// and the index tip equals the chain tip.
	for height := 1; height <= h.chain.BestHeight(); height++ {
		blk, ok := h.chain.BlockAtHeight(height)
		if !ok {
			t.Fatalf("missing block at %d", height)
		}
		for ti, tx := range blk.Transactions {
			if ti == 0 {
				continue
			}
			txid := tx.TxHash()
			for vin, in := range tx.TxIn {
				info, spent, err := h.ix.Outspend(in.PreviousOutPoint)
				if err != nil {
					t.Fatal(err)
				}
				if !spent || info.Spender != txid || info.Vin != uint32(vin) || info.Height != height {
					t.Fatalf("seed %d: outspend(%v) = %+v/%v, want %s vin %d height %d",
						seed, in.PreviousOutPoint, info, spent, txid, vin, height)
				}
			}
		}
	}
	tipHash, tipHeight, err := h.ix.Tip()
	if err != nil {
		t.Fatal(err)
	}
	if tipHash != h.chain.BestHash() || tipHeight != h.chain.BestHeight() {
		t.Fatalf("seed %d: index tip %s@%d, chain %s@%d",
			seed, tipHash, tipHeight, h.chain.BestHash(), h.chain.BestHeight())
	}
	// Pagination stays coherent over post-reorg state.
	full, _, err := h.ix.AddressHistory(h.payout, Cursor{}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	var walked []HistEntry
	cur := Cursor{}
	for {
		page, n, err := h.ix.AddressHistory(h.payout, cur, 7)
		if err != nil {
			t.Fatal(err)
		}
		walked = append(walked, page...)
		if n == nil {
			break
		}
		cur = *n
	}
	if !reflect.DeepEqual(full, walked) {
		t.Fatalf("seed %d: pagination walk diverged", seed)
	}
}
