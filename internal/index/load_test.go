package index

// Many-client load test: N query clients and K subscription streams
// hammer the HTTP API while the node connects blocks through the async
// group-commit pipeline. Assertions:
//
//  1. No query ever returns an error or malformed JSON under load.
//  2. No stale reads past the durability watermark: every response's
//     indexHeight is >= the chain's FlushedHeight captured before the
//     request was issued (the index may be AHEAD of the watermark —
//     read-your-writes — but never behind it).
//  3. Every subscriber sees the stream; disconnecting all clients
//     leaves zero active subscriptions and no leaked goroutines.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"typecoin/internal/chain"
	"typecoin/internal/clock"
	"typecoin/internal/mempool"
	"typecoin/internal/miner"
	"typecoin/internal/script"
	"typecoin/internal/store"
	"typecoin/internal/testutil"
	"typecoin/internal/wallet"
)

func TestIndexManyClientLoad(t *testing.T) {
	const (
		queryClients = 16
		subscribers  = 8
		blocks       = 30
	)

	// Group-commit store: the durability watermark genuinely lags the
	// tip, so the staleness assertion bites.
	params := chain.RegTestParams()
	clk := clock.NewSimulated(params.GenesisBlock.Header.Timestamp.Add(time.Minute))
	g := store.NewGroup(store.NewMem(), store.GroupConfig{Interval: 2 * time.Millisecond})
	defer g.Close()
	c, err := chain.Open(chain.Config{Params: params, Clock: clk, Store: g})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(c)
	if err != nil {
		t.Fatal(err)
	}
	pool := mempool.New(c, -1)
	w, err := wallet.Open(c, testutil.NewEntropy("index/load"))
	if err != nil {
		t.Fatal(err)
	}
	payout, err := w.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	m := miner.New(c, pool, clk)
	for i := 0; i < params.CoinbaseMaturity+1; i++ {
		clk.Advance(time.Minute)
		if _, _, err := m.Mine(payout); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(ix.Handler())
	defer srv.Close()

	baseGoroutines := runtime.NumGoroutine()

	// Subscription clients: each streams block events until canceled.
	subCtx, cancelSubs := context.WithCancel(context.Background())
	var subWG sync.WaitGroup
	subBlockEvents := make([]int64, subscribers)
	for i := 0; i < subscribers; i++ {
		i := i
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			req, err := http.NewRequestWithContext(subCtx, "GET",
				srv.URL+"/subscribe?blocks=1&addrs="+payout.String(), nil)
			if err != nil {
				t.Errorf("subscriber %d: %v", i, err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("subscriber %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				var ev struct {
					Type string `json:"type"`
				}
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					t.Errorf("subscriber %d: bad event line %q", i, sc.Text())
					return
				}
				if ev.Type == "block" {
					atomic.AddInt64(&subBlockEvents[i], 1)
				}
			}
		}()
	}
	// All streams registered before traffic starts.
	waitFor(t, time.Second, func() bool { return ix.hub.active() == subscribers })

	// Query clients: loop /address and /status until mining finishes,
	// checking the watermark invariant on every response.
	var (
		done      atomic.Bool
		queries   atomic.Int64
		staleness atomic.Int64 // failures observed (reported once)
	)
	var qWG sync.WaitGroup
	queryErr := make(chan error, queryClients)
	for i := 0; i < queryClients; i++ {
		i := i
		qWG.Add(1)
		go func() {
			defer qWG.Done()
			paths := []string{
				"/address/" + payout.String() + "?limit=25",
				"/status",
				"/sync?limit=10",
			}
			for n := 0; !done.Load(); n++ {
				watermark := c.FlushedHeight()
				resp, err := http.Get(srv.URL + paths[n%len(paths)])
				if err != nil {
					queryErr <- fmt.Errorf("client %d: %v", i, err)
					return
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					queryErr <- fmt.Errorf("client %d: status %d err %v body %.200s", i, resp.StatusCode, err, raw)
					return
				}
				var out struct {
					IndexHeight int `json:"indexHeight"`
				}
				if err := json.Unmarshal(raw, &out); err != nil {
					queryErr <- fmt.Errorf("client %d: bad JSON %.200s", i, raw)
					return
				}
				if out.IndexHeight < watermark {
					staleness.Add(1)
					queryErr <- fmt.Errorf("client %d: stale read: indexHeight %d < watermark %d",
						i, out.IndexHeight, watermark)
					return
				}
				queries.Add(1)
			}
		}()
	}

	// Drive blocks with wallet traffic while the clients run.
	for i := 0; i < blocks; i++ {
		dest, err := w.NewKey()
		if err != nil {
			t.Fatal(err)
		}
		tx, err := w.Build([]wallet.Output{
			{Value: 200_000 + int64(i), PkScript: script.PayToPubKeyHash(dest)},
		}, wallet.BuildOptions{})
		if err == nil {
			_, _ = pool.Accept(tx)
		}
		clk.Advance(time.Minute)
		if _, _, err := m.Mine(payout); err != nil {
			t.Fatal(err)
		}
		// Yield so clients interleave with connects.
		time.Sleep(time.Millisecond)
	}
	done.Store(true)
	qWG.Wait()
	close(queryErr)
	for err := range queryErr {
		t.Error(err)
	}
	if got := queries.Load(); got < int64(queryClients) {
		t.Fatalf("only %d queries completed under load", got)
	}
	t.Logf("load: %d queries across %d clients, %d blocks", queries.Load(), queryClients, blocks)

	// Subscribers: every stream must have seen block events (buffered
	// channels absorb the burst; drops are allowed by contract but with
	// 30 blocks and depth 256 none should occur here).
	cancelSubs()
	subWG.Wait()
	for i, n := range subBlockEvents {
		if atomic.LoadInt64(&subBlockEvents[i]) == 0 {
			t.Errorf("subscriber %d saw no block events (got %d)", i, n)
		}
	}

	// Disconnect accounting: the hub empties and the handler goroutines
	// exit (no leak).
	waitFor(t, 2*time.Second, func() bool { return ix.hub.active() == 0 })
	http.DefaultClient.CloseIdleConnections()
	srv.CloseClientConnections()
	waitFor(t, 3*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseGoroutines+2
	})

	// Final consistency under the drained pipeline.
	if err := g.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := ix.AuditRebuild(); err != nil {
		t.Fatal(err)
	}
	if got, want := c.FlushedHeight(), c.BestHeight(); got != want {
		t.Fatalf("drained watermark %d, tip %d", got, want)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !cond() {
		t.Fatalf("condition not reached within %v (goroutines=%d)", d, runtime.NumGoroutine())
	}
}
