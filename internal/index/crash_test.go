package index

// Crash recovery: the index rows ride in the chain's atomic commit
// batch, so a store that dies mid-commit — torn frame on disk — must
// never leave a block without its rows or rows without their block.
// The test drives a file-backed node through a fault that tears a
// frame, reopens the directory, lets the index catch up, resyncs the
// missed blocks, and demands the result be bit-for-bit identical to a
// control node that never crashed.

import (
	"errors"
	"reflect"
	"testing"

	"typecoin/internal/chain"
	"typecoin/internal/store"
)

func TestIndexCrashMidCommitRecovers(t *testing.T) {
	// Control node: in-memory, never crashes, indexes everything.
	ctl := newHarness(t, "index/crash", nil)

	// Crash node: file store under a fault that tears the 18th Apply
	// mid-frame — inside the run of payment-carrying blocks (bootstrap
	// is 1 apply, funding 11). Chain and index only — rows derive from
	// blocks alone.
	dir := t.TempDir()
	fileSt, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	fault := store.NewFault(fileSt, 18, 10)
	chF, err := chain.Open(chain.Config{Params: ctl.params, Clock: ctl.clk, Store: fault})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(chF); err != nil {
		t.Fatal(err)
	}

	// Mature the control wallet, then feed those blocks to the crash
	// node (they fit comfortably below the armed Apply).
	ctl.fund(t)
	for h := 1; h <= ctl.chain.BestHeight(); h++ {
		blk, _ := ctl.chain.BlockAtHeight(h)
		if _, err := chF.ProcessBlock(blk); err != nil {
			t.Fatalf("feed funding block: %v", err)
		}
	}
	// Wallet payments every block so the batches carry address and
	// spend rows; somewhere in here the fault tears a frame.
	crashed := false
	for i := 0; i < 8 && !crashed; i++ {
		dest, err := ctl.wallet.NewKey()
		if err != nil {
			t.Fatal(err)
		}
		ctl.pay(t, dest, 500_000+int64(i))
		blk := ctl.mine(t)
		if _, err := chF.ProcessBlock(blk); err != nil {
			if !errors.Is(err, store.ErrClosed) {
				t.Fatalf("crash node rejected block for the wrong reason: %v", err)
			}
			crashed = true
		}
	}
	if !crashed {
		t.Fatalf("fault never fired: %d applies", fault.Applies())
	}
	_ = fault.Close()

	// Reopen: journal replay truncates the torn frame; the chain comes
	// back at a durable prefix and the index catches up to it inside
	// Open — then resync restores the missed blocks through the normal
	// contribute path.
	st2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.TruncatedBytes() == 0 {
		t.Error("reopen found no torn frame to truncate")
	}
	ch2, err := chain.Open(chain.Config{Params: ctl.params, Clock: ctl.clk, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	if ch2.BestHeight() >= ctl.chain.BestHeight() {
		t.Fatalf("recovered height %d, want < control %d", ch2.BestHeight(), ctl.chain.BestHeight())
	}
	ix2, err := Open(ch2)
	if err != nil {
		t.Fatalf("reopen index: %v", err)
	}
	// Consistency at the recovered prefix, before resync: the index tip
	// must equal the recovered chain tip (atomicity), and the rows must
	// already pass the rebuild audit.
	tipHash, tipHeight, err := ix2.Tip()
	if err != nil {
		t.Fatal(err)
	}
	if tipHash != ch2.BestHash() || tipHeight != ch2.BestHeight() {
		t.Fatalf("recovered index tip %s@%d, chain %s@%d",
			tipHash, tipHeight, ch2.BestHash(), ch2.BestHeight())
	}
	if err := ix2.AuditRebuild(); err != nil {
		t.Fatalf("recovered index audit: %v", err)
	}

	// Resync from the control chain and compare against the control
	// node's index: bit-for-bit equal rows.
	for h := 1; h <= ctl.chain.BestHeight(); h++ {
		blk, _ := ctl.chain.BlockAtHeight(h)
		if _, err := ch2.ProcessBlock(blk); err != nil {
			t.Fatalf("resync block at %d: %v", h, err)
		}
	}
	if ch2.BestHash() != ctl.chain.BestHash() {
		t.Fatal("resynced chain diverged from control")
	}
	got, err := dumpIndexRows(ix2.st)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dumpIndexRows(ctl.ix.st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered index rows differ from control: %d vs %d rows", len(got), len(want))
	}
	if err := ix2.AuditRebuild(); err != nil {
		t.Fatalf("resynced index audit: %v", err)
	}
}
