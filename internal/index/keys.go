package index

// Key schema. Every index row lives under the 'i' byte, disjoint from
// the chain ('T','m','b','u','s','U'), wallet ("wk","wu"), ledger
// ("ka","ls","la"), mempool ("P") and banscore ("nb") families. Heights
// and transaction positions are big-endian in keys so lexicographic
// order is chain order — the property cursor pagination leans on.
//
//	iT                                  -> index tip: hash + height
//	ih + addr(20) + be32(h) + be32(tx)  -> address history row: txid,
//	                                       role flags, satoshi funded
//	                                       and spent by that tx
//	is + outpoint(36)                   -> spending-tx row: spender
//	                                       txid, input index, height
//	ip + addr(20) + be32(h) + be32(tx)  -> principal activity row: the
//	                                       metadata-bearing carrier and
//	                                       the Typecoin commitment hash
//	                                       it announces, with the
//	                                       principal's role
//
// One history row aggregates everything a single transaction does to a
// single address (multiple outputs to one principal coalesce), exactly
// the granularity Blockbook's address API exposes.

import (
	"encoding/binary"
	"fmt"

	"typecoin/internal/bkey"
	"typecoin/internal/chainhash"
	"typecoin/internal/wire"
)

// Role flags in history and principal rows.
const (
	// RoleFunded marks a transaction that pays the address.
	RoleFunded byte = 1 << 0
	// RoleSpent marks a transaction that consumes an output of the
	// address.
	RoleSpent byte = 1 << 1
)

var keyTip = []byte("iT")

const (
	addrKeyLen     = 2 + bkey.PrincipalSize + 4 + 4
	outPointKeyLen = 2 + 36
)

// ErrCorrupt reports an index row that fails to decode — the index is
// derived state, so the remedy is a rebuild, not a refusal to start.
var errCorrupt = fmt.Errorf("index: corrupt row")

func appendAddrKey(dst []byte, kind byte, p bkey.Principal, height, txIdx uint32) []byte {
	dst = append(dst, 'i', kind)
	dst = append(dst, p[:]...)
	var be [8]byte
	binary.BigEndian.PutUint32(be[:4], height)
	binary.BigEndian.PutUint32(be[4:], txIdx)
	return append(dst, be[:]...)
}

func histKey(p bkey.Principal, height, txIdx uint32) []byte {
	return appendAddrKey(make([]byte, 0, addrKeyLen), 'h', p, height, txIdx)
}

func prinKey(p bkey.Principal, height, txIdx uint32) []byte {
	return appendAddrKey(make([]byte, 0, addrKeyLen), 'p', p, height, txIdx)
}

func addrPrefix(kind byte, p bkey.Principal) []byte {
	dst := make([]byte, 0, 2+bkey.PrincipalSize)
	dst = append(dst, 'i', kind)
	return append(dst, p[:]...)
}

// decodeAddrKey recovers (height, txIdx) from a history/principal key.
func decodeAddrKey(k []byte) (height, txIdx uint32, err error) {
	if len(k) != addrKeyLen {
		return 0, 0, fmt.Errorf("%w: addr key is %d bytes", errCorrupt, len(k))
	}
	return binary.BigEndian.Uint32(k[22:26]), binary.BigEndian.Uint32(k[26:30]), nil
}

func spendKey(op wire.OutPoint) []byte {
	dst := make([]byte, 0, outPointKeyLen)
	dst = append(dst, 'i', 's')
	dst = append(dst, op.Hash[:]...)
	var le [4]byte
	binary.LittleEndian.PutUint32(le[:], op.Index)
	return append(dst, le[:]...)
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// Tip row: hash + uvarint height.

func encodeTip(h chainhash.Hash, height int) []byte {
	return appendUvarint(append([]byte(nil), h[:]...), uint64(height))
}

func decodeTip(b []byte) (chainhash.Hash, int, error) {
	var h chainhash.Hash
	if len(b) < 32 {
		return h, 0, fmt.Errorf("%w: tip row is %d bytes", errCorrupt, len(b))
	}
	copy(h[:], b[:32])
	v, n := binary.Uvarint(b[32:])
	if n <= 0 || n != len(b)-32 {
		return h, 0, fmt.Errorf("%w: bad tip height", errCorrupt)
	}
	return h, int(v), nil
}

// History row: txid + flags + uvarint funded + uvarint spent.

func encodeHist(txid chainhash.Hash, flags byte, funded, spent int64) []byte {
	out := make([]byte, 0, 32+1+2*binary.MaxVarintLen64)
	out = append(out, txid[:]...)
	out = append(out, flags)
	out = appendUvarint(out, uint64(funded))
	return appendUvarint(out, uint64(spent))
}

func decodeHist(b []byte) (txid chainhash.Hash, flags byte, funded, spent int64, err error) {
	if len(b) < 33 {
		return txid, 0, 0, 0, fmt.Errorf("%w: history row is %d bytes", errCorrupt, len(b))
	}
	copy(txid[:], b[:32])
	flags = b[32]
	rest := b[33:]
	f, n := binary.Uvarint(rest)
	if n <= 0 {
		return txid, 0, 0, 0, fmt.Errorf("%w: bad funded amount", errCorrupt)
	}
	rest = rest[n:]
	s, n := binary.Uvarint(rest)
	if n <= 0 || n != len(rest) {
		return txid, 0, 0, 0, fmt.Errorf("%w: bad spent amount", errCorrupt)
	}
	return txid, flags, int64(f), int64(s), nil
}

// Spend row: spender txid + le32 input index + uvarint height.

func encodeSpend(spender chainhash.Hash, vin uint32, height int) []byte {
	out := make([]byte, 0, 32+4+binary.MaxVarintLen64)
	out = append(out, spender[:]...)
	var le [4]byte
	binary.LittleEndian.PutUint32(le[:], vin)
	out = append(out, le[:]...)
	return appendUvarint(out, uint64(height))
}

func decodeSpend(b []byte) (spender chainhash.Hash, vin uint32, height int, err error) {
	if len(b) < 37 {
		return spender, 0, 0, fmt.Errorf("%w: spend row is %d bytes", errCorrupt, len(b))
	}
	copy(spender[:], b[:32])
	vin = binary.LittleEndian.Uint32(b[32:36])
	v, n := binary.Uvarint(b[36:])
	if n <= 0 || n != len(b)-36 {
		return spender, 0, 0, fmt.Errorf("%w: bad spend height", errCorrupt)
	}
	return spender, vin, int(v), nil
}

// Principal row: carrier txid + commitment hash + flags.

func encodePrin(carrier, commitment chainhash.Hash, flags byte) []byte {
	out := make([]byte, 0, 65)
	out = append(out, carrier[:]...)
	out = append(out, commitment[:]...)
	return append(out, flags)
}

func decodePrin(b []byte) (carrier, commitment chainhash.Hash, flags byte, err error) {
	if len(b) != 65 {
		return carrier, commitment, 0, fmt.Errorf("%w: principal row is %d bytes", errCorrupt, len(b))
	}
	copy(carrier[:], b[:32])
	copy(commitment[:], b[32:64])
	return carrier, commitment, b[64], nil
}
