package index

// Index observability, following the chain's convention: collectors are
// nil until SetTelemetry, every collector type no-ops on nil, so an
// uninstrumented indexer pays only dead branches.

import (
	"fmt"

	"typecoin/internal/telemetry"
)

const evIndexSubscriber = telemetry.EvIndexSubscriber

type indexTelemetry struct {
	tracer *telemetry.Tracer
	spans  *telemetry.SpanStore

	rowsWritten   *telemetry.Counter
	rowsDeleted   *telemetry.Counter
	eventsDropped *telemetry.Counter
	subscribes    *telemetry.Counter
	queries       *telemetry.CounterVec
	querySeconds  *telemetry.Histogram
}

// SetTelemetry registers the indexer's metrics on reg and routes
// lifecycle events to tr; either may be nil. Call once, after Open.
// The catch-up that already ran inside Open is reported here
// retroactively (as a counter and one trace event), since telemetry is
// wired after the subsystems exist.
func (ix *Indexer) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	ix.tel = indexTelemetry{
		tracer: tr,

		rowsWritten:   reg.Counter("index_rows_written_total", "Index rows written by connect batches."),
		rowsDeleted:   reg.Counter("index_rows_deleted_total", "Index rows deleted by disconnect batches."),
		eventsDropped: reg.Counter("index_events_dropped_total", "Subscription events dropped on full client buffers."),
		subscribes:    reg.Counter("index_subscriptions_total", "Subscription streams opened."),
		queries:       reg.CounterVec("index_queries_total", "Index API queries served.", "endpoint"),
		querySeconds:  reg.Histogram("index_query_seconds", "Wall time to serve one index query.", telemetry.LatencyBuckets),
	}
	reg.CounterFunc("index_catchup_blocks_total", "Blocks indexed by the bulk catch-up replay at open.", func() float64 {
		return float64(ix.catchupBlocks)
	})
	reg.GaugeFunc("index_tip_height", "Height of the committed index tip.", func() float64 {
		return float64(ix.TipHeight())
	})
	reg.GaugeFunc("index_active_subscriptions", "Live subscription streams.", func() float64 {
		return float64(ix.hub.active())
	})
	if tr != nil && ix.catchupBlocks > 0 {
		tr.Record(telemetry.EvIndexCatchup, "",
			fmt.Sprintf("blocks=%d tip=%d", ix.catchupBlocks, ix.TipHeight()))
	}
}

// SetSpans routes commitment-latency span stages to s: a connected
// block's post-commit publish marks the indexed stage for the block and
// its transactions. Call once, after Open; s may be nil (the default).
func (ix *Indexer) SetSpans(s *telemetry.SpanStore) {
	ix.tel.spans = s
}
