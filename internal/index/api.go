package index

// The query and subscription API, Blockbook-style, over stdlib HTTP.
// Every query response carries the index tip it was answered at
// (indexHeight/indexHash), so a client — or the load test's staleness
// assertion — can compare what it read against the durability
// watermark. Subscriptions are long-lived GET requests streaming one
// JSON object per line; the hub never blocks on a slow client, and a
// client learns about its own gaps through the dropped counter.

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"typecoin/internal/bkey"
	"typecoin/internal/chainhash"
	"typecoin/internal/store"
	"typecoin/internal/wire"
)

// Handler returns the index API. Routes:
//
//	GET /status                     index tip, subscriber count
//	GET /address/{principal}        paginated address history
//	GET /principal/{principal}      paginated Typecoin activity
//	GET /outspend/{outpoint}        spending tx of txid:n
//	GET /sync                       bulk initial-sync dump of history rows
//	GET /subscribe                  JSON-lines event stream
//	GET /audit                      from-genesis rebuild comparison
func (ix *Indexer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /status", ix.instrument("status", ix.handleStatus))
	mux.Handle("GET /address/{principal}", ix.instrument("address", ix.handleAddress))
	mux.Handle("GET /principal/{principal}", ix.instrument("principal", ix.handlePrincipal))
	mux.Handle("GET /outspend/{outpoint}", ix.instrument("outspend", ix.handleOutspend))
	mux.Handle("GET /sync", ix.instrument("sync", ix.handleSync))
	mux.Handle("GET /subscribe", http.HandlerFunc(ix.handleSubscribe))
	mux.Handle("GET /audit", ix.instrument("audit", ix.handleAudit))
	return mux
}

// instrument counts and times one endpoint.
func (ix *Indexer) instrument(name string, fn http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		fn(w, r)
		ix.tel.queries.With(name).Inc()
		if ix.tel.querySeconds != nil {
			ix.tel.querySeconds.Observe(time.Since(start).Seconds())
		}
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// tipInfo is the index-tip stamp carried by every query response.
type tipInfo struct {
	IndexHeight int    `json:"indexHeight"`
	IndexHash   string `json:"indexHash"`
}

func (ix *Indexer) tipInfo() (tipInfo, error) {
	h, height, err := ix.Tip()
	if err != nil {
		return tipInfo{}, err
	}
	return tipInfo{IndexHeight: height, IndexHash: h.String()}, nil
}

func (ix *Indexer) handleStatus(w http.ResponseWriter, r *http.Request) {
	ti, err := ix.tipInfo()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, struct {
		tipInfo
		ChainHeight   int `json:"chainHeight"`
		FlushedHeight int `json:"flushedHeight"`
		Subscribers   int `json:"subscribers"`
	}{ti, ix.c.BestHeight(), ix.c.FlushedHeight(), ix.hub.active()})
}

// ParseCursor parses the "cursor" query parameter: empty (start), or
// "height.txIndex" decimal — the position of the last row the client
// already has. Exported for the fuzz harness.
func ParseCursor(s string) (Cursor, error) {
	if s == "" {
		return Cursor{}, nil
	}
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		return Cursor{}, fmt.Errorf("index: cursor %q: want height.txIndex", s)
	}
	h, err := strconv.ParseUint(s[:dot], 10, 32)
	if err != nil {
		return Cursor{}, fmt.Errorf("index: cursor height %q: %v", s[:dot], err)
	}
	t, err := strconv.ParseUint(s[dot+1:], 10, 32)
	if err != nil {
		return Cursor{}, fmt.Errorf("index: cursor txIndex %q: %v", s[dot+1:], err)
	}
	return Cursor{Height: uint32(h), TxIndex: uint32(t), Set: true}, nil
}

// FormatCursor renders a cursor as ParseCursor's input.
func FormatCursor(c Cursor) string {
	return strconv.FormatUint(uint64(c.Height), 10) + "." + strconv.FormatUint(uint64(c.TxIndex), 10)
}

// ParseLimit parses the "limit" query parameter, clamped to
// [1, MaxPageLimit]; empty selects DefaultPageLimit. Exported for the
// fuzz harness.
func ParseLimit(s string) (int, error) {
	if s == "" {
		return DefaultPageLimit, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("index: limit %q: want a positive integer", s)
	}
	if n > MaxPageLimit {
		n = MaxPageLimit
	}
	return n, nil
}

// ParseOutpoint parses "txid:n" with txid in the usual reversed-hex
// display form. Exported for the fuzz harness.
func ParseOutpoint(s string) (wire.OutPoint, error) {
	colon := strings.LastIndexByte(s, ':')
	if colon < 0 {
		return wire.OutPoint{}, fmt.Errorf("index: outpoint %q: want txid:n", s)
	}
	h, err := chainhash.NewHashFromStr(s[:colon])
	if err != nil {
		return wire.OutPoint{}, fmt.Errorf("index: outpoint txid: %v", err)
	}
	n, err := strconv.ParseUint(s[colon+1:], 10, 32)
	if err != nil {
		return wire.OutPoint{}, fmt.Errorf("index: outpoint index %q: %v", s[colon+1:], err)
	}
	return wire.OutPoint{Hash: h, Index: uint32(n)}, nil
}

// histJSON is the wire form of one history row.
type histJSON struct {
	TxID    string `json:"txid"`
	Height  int    `json:"height"`
	TxIndex int    `json:"txIndex"`
	Funded  int64  `json:"funded"`
	Spent   int64  `json:"spent"`
	Roles   string `json:"roles"` // "funded", "spent" or "funded+spent"
}

func rolesString(flags byte) string {
	switch {
	case flags&RoleFunded != 0 && flags&RoleSpent != 0:
		return "funded+spent"
	case flags&RoleSpent != 0:
		return "spent"
	default:
		return "funded"
	}
}

func pageParams(r *http.Request) (Cursor, int, error) {
	cur, err := ParseCursor(r.URL.Query().Get("cursor"))
	if err != nil {
		return Cursor{}, 0, err
	}
	limit, err := ParseLimit(r.URL.Query().Get("limit"))
	if err != nil {
		return Cursor{}, 0, err
	}
	return cur, limit, nil
}

func (ix *Indexer) handleAddress(w http.ResponseWriter, r *http.Request) {
	p, err := bkey.ParsePrincipal(r.PathValue("principal"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cur, limit, err := pageParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ti, err := ix.tipInfo()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	entries, next, err := ix.AddressHistory(p, cur, limit)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]histJSON, len(entries))
	for i, e := range entries {
		out[i] = histJSON{
			TxID: e.TxID.String(), Height: e.Height, TxIndex: e.TxIndex,
			Funded: e.Funded, Spent: e.Spent, Roles: rolesString(e.Flags),
		}
	}
	resp := struct {
		tipInfo
		Address    string     `json:"address"`
		Entries    []histJSON `json:"entries"`
		NextCursor string     `json:"nextCursor,omitempty"`
	}{ti, p.String(), out, ""}
	if next != nil {
		resp.NextCursor = FormatCursor(*next)
	}
	writeJSON(w, resp)
}

func (ix *Indexer) handlePrincipal(w http.ResponseWriter, r *http.Request) {
	p, err := bkey.ParsePrincipal(r.PathValue("principal"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cur, limit, err := pageParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ti, err := ix.tipInfo()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	entries, next, err := ix.PrincipalActivity(p, cur, limit)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	type prinJSON struct {
		TxID       string `json:"txid"`
		Commitment string `json:"commitment"`
		Height     int    `json:"height"`
		TxIndex    int    `json:"txIndex"`
		Roles      string `json:"roles"`
	}
	out := make([]prinJSON, len(entries))
	for i, e := range entries {
		out[i] = prinJSON{
			TxID: e.TxID.String(), Commitment: e.Commitment.String(),
			Height: e.Height, TxIndex: e.TxIndex, Roles: rolesString(e.Flags),
		}
	}
	resp := struct {
		tipInfo
		Principal  string     `json:"principal"`
		Entries    []prinJSON `json:"entries"`
		NextCursor string     `json:"nextCursor,omitempty"`
	}{ti, p.String(), out, ""}
	if next != nil {
		resp.NextCursor = FormatCursor(*next)
	}
	writeJSON(w, resp)
}

func (ix *Indexer) handleOutspend(w http.ResponseWriter, r *http.Request) {
	op, err := ParseOutpoint(r.PathValue("outpoint"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ti, err := ix.tipInfo()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	info, spent, err := ix.Outspend(op)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp := struct {
		tipInfo
		Spent   bool   `json:"spent"`
		Spender string `json:"spender,omitempty"`
		Vin     uint32 `json:"vin"`
		Height  int    `json:"height"`
	}{ti, spent, "", 0, 0}
	if spent {
		resp.Spender = info.Spender.String()
		resp.Vin = info.Vin
		resp.Height = info.Height
	}
	writeJSON(w, resp)
}

// handleSync is the bulk initial-sync endpoint: it dumps history rows
// for ALL addresses in key order, paginated by an opaque hex cursor (the
// last key of the previous page), so a fresh client can mirror the
// whole address index without issuing one request per address.
func (ix *Indexer) handleSync(w http.ResponseWriter, r *http.Request) {
	limit, err := ParseLimit(r.URL.Query().Get("limit"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	prefix := []byte("ih")
	start := prefix
	if c := r.URL.Query().Get("cursor"); c != "" {
		last, err := hex.DecodeString(c)
		if err != nil || len(last) != addrKeyLen || last[0] != 'i' || last[1] != 'h' {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("index: bad sync cursor"))
			return
		}
		// Resume strictly after the last delivered key.
		start = append(last, 0)
	}
	ti, err := ix.tipInfo()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	type syncRow struct {
		Address string `json:"address"`
		histJSON
	}
	var (
		rows    []syncRow
		lastKey []byte
		more    bool
		scanErr error
	)
	stop := fmt.Errorf("index: sync done")
	err = store.IterateFrom(ix.st, prefix, start, func(k, v []byte) error {
		if len(rows) >= limit {
			more = true
			return stop
		}
		height, txIdx, err := decodeAddrKey(k)
		if err != nil {
			scanErr = err
			return stop
		}
		txid, flags, funded, spent, err := decodeHist(v)
		if err != nil {
			scanErr = err
			return stop
		}
		var p bkey.Principal
		copy(p[:], k[2:2+bkey.PrincipalSize])
		rows = append(rows, syncRow{
			Address: p.String(),
			histJSON: histJSON{
				TxID: txid.String(), Height: int(height), TxIndex: int(txIdx),
				Funded: funded, Spent: spent, Roles: rolesString(flags),
			},
		})
		lastKey = append(lastKey[:0], k...)
		return nil
	})
	if (err != nil && err != stop) || scanErr != nil {
		if scanErr != nil {
			err = scanErr
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp := struct {
		tipInfo
		Rows       []syncRow `json:"rows"`
		NextCursor string    `json:"nextCursor,omitempty"`
	}{ti, rows, ""}
	if more {
		resp.NextCursor = hex.EncodeToString(lastKey)
	}
	writeJSON(w, resp)
}

func (ix *Indexer) handleAudit(w http.ResponseWriter, r *http.Request) {
	if err := ix.AuditRebuild(); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	ti, err := ix.tipInfo()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, struct {
		tipInfo
		OK bool `json:"ok"`
	}{ti, true})
}

// ParseAddrList parses the comma-separated "addrs" subscription
// parameter. Exported for the fuzz harness.
func ParseAddrList(s string) ([]bkey.Principal, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]bkey.Principal, 0, len(parts))
	for _, part := range parts {
		p, err := bkey.ParsePrincipal(part)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// eventJSON is the line format of the subscription stream.
type eventJSON struct {
	Type      string `json:"type"` // hello | block | tx | address
	Dropped   int    `json:"dropped,omitempty"`
	Height    int    `json:"height,omitempty"`
	Hash      string `json:"hash,omitempty"`
	Connected *bool  `json:"connected,omitempty"`
	TxCount   int    `json:"txCount,omitempty"`
	TxID      string `json:"txid,omitempty"`
	Address   string `json:"address,omitempty"`
	TxIndex   int    `json:"txIndex,omitempty"`
	Funded    int64  `json:"funded,omitempty"`
	Spent     int64  `json:"spent,omitempty"`
	Roles     string `json:"roles,omitempty"`
}

// handleSubscribe streams hub events as JSON lines until the client
// disconnects. Parameters: blocks=1, txs=1, addrs=<hex,hex,...>; with
// no parameters the stream carries only the hello line and block
// events (the least surprising default for a chain-tip watcher). The
// hello line carries the index tip, so a client can bulk-sync through
// /sync and /address and splice the stream on without a gap.
func (ix *Indexer) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	addrs, err := ParseAddrList(q.Get("addrs"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	wantBlocks := q.Get("blocks") != "0"
	wantTxs := q.Get("txs") == "1"

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("index: streaming unsupported"))
		return
	}
	sub := ix.hub.subscribe(wantBlocks, wantTxs, addrs)
	defer ix.hub.unsubscribe(sub)
	ix.tel.subscribes.Inc()
	if ix.tel.tracer != nil {
		ix.tel.tracer.Record(evIndexSubscriber, r.RemoteAddr, "subscribed")
		defer ix.tel.tracer.Record(evIndexSubscriber, r.RemoteAddr, "unsubscribed")
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	enc := json.NewEncoder(w)
	ti, err := ix.tipInfo()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	_ = enc.Encode(eventJSON{Type: "hello", Height: ti.IndexHeight, Hash: ti.IndexHash})
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub.ch:
			var line eventJSON
			switch {
			case ev.Block != nil:
				conn := ev.Block.Connected
				line = eventJSON{
					Type: "block", Hash: ev.Block.Hash.String(),
					Height: ev.Block.Height, Connected: &conn,
					TxCount: ev.Block.TxCount,
				}
			case ev.Tx != nil:
				line = eventJSON{Type: "tx", TxID: ev.Tx.TxID.String()}
			case ev.Addr != nil:
				conn := ev.Addr.Connected
				line = eventJSON{
					Type: "address", Address: ev.Addr.Principal.String(),
					TxID: ev.Addr.TxID.String(), Height: ev.Addr.Height,
					TxIndex: ev.Addr.TxIndex, Connected: &conn,
					Funded: ev.Addr.Funded, Spent: ev.Addr.Spent,
					Roles: rolesString(ev.Addr.Flags),
				}
			default:
				continue
			}
			line.Dropped = ev.Dropped
			if err := enc.Encode(line); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
