package index

// Fuzz the query-parameter parsers that sit directly on the HTTP
// surface. They must never panic, and the accepting paths must uphold
// their invariants: cursors round-trip, limits stay in range, outpoints
// and address lists re-serialize to what was parsed.

import (
	"strings"
	"testing"
)

func FuzzIndexQuery(f *testing.F) {
	f.Add("", "", "", "")
	f.Add("12.3", "100", "deadbeef:0", "a,b,c")
	f.Add("0.0", "1", ":", ",")
	f.Add("4294967295.4294967295", "1000", strings.Repeat("f", 64)+":4294967295", strings.Repeat("0", 64))
	f.Add("1.2.3", "-5", "abc:xyz", strings.Repeat("a", 4096))
	f.Add("18446744073709551616.0", "9999999999999999999", strings.Repeat("0", 64)+":-1", "0,,1")

	f.Fuzz(func(t *testing.T, cursor, limit, outpoint, addrs string) {
		c, err := ParseCursor(cursor)
		if err == nil {
			if cursor == "" {
				if c.Set {
					t.Fatalf("empty cursor parsed as set: %+v", c)
				}
			} else {
				// Accepted cursors round-trip through their canonical form.
				back, err := ParseCursor(FormatCursor(c))
				if err != nil {
					t.Fatalf("canonical cursor %q rejected: %v", FormatCursor(c), err)
				}
				if back != c {
					t.Fatalf("cursor round-trip: %+v -> %q -> %+v", c, FormatCursor(c), back)
				}
			}
		}

		n, err := ParseLimit(limit)
		if err == nil && (n < 1 || n > MaxPageLimit) {
			t.Fatalf("ParseLimit(%q) = %d outside [1,%d]", limit, n, MaxPageLimit)
		}

		op, err := ParseOutpoint(outpoint)
		if err == nil {
			// Accepted outpoints re-serialize to an equal value.
			back, err := ParseOutpoint(op.String())
			if err != nil {
				t.Fatalf("canonical outpoint %q rejected: %v", op.String(), err)
			}
			if back != op {
				t.Fatalf("outpoint round-trip: %v -> %v", op, back)
			}
		}

		ps, err := ParseAddrList(addrs)
		if err == nil {
			for _, p := range ps {
				back, err := ParseAddrList(p.String())
				if err != nil || len(back) != 1 || back[0] != p {
					t.Fatalf("address round-trip %v: %v %v", p, back, err)
				}
			}
		}
	})
}
