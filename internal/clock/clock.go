// Package clock abstracts time so that the chain, the miner and the
// Typecoin condition checker (before(t), paper Section 5) can run against
// wall time in production and a deterministic simulated clock in tests and
// benchmarks.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// System is the wall clock.
type System struct{}

// Now returns time.Now.
func (System) Now() time.Time { return time.Now() }

// Simulated is a manually advanced clock. The zero value is not usable;
// create one with NewSimulated. It is safe for concurrent use.
type Simulated struct {
	mu  sync.Mutex
	now time.Time
}

// NewSimulated returns a simulated clock starting at start.
func NewSimulated(start time.Time) *Simulated {
	return &Simulated{now: start}
}

// Now returns the simulated current time.
func (c *Simulated) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
func (c *Simulated) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Set jumps the clock to t.
func (c *Simulated) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}
