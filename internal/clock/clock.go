// Package clock abstracts time so that the chain, the miner and the
// Typecoin condition checker (before(t), paper Section 5) can run against
// wall time in production and a deterministic simulated clock in tests and
// benchmarks.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// System is the wall clock.
type System struct{}

// Now returns time.Now.
func (System) Now() time.Time { return time.Now() }

// Simulated is a manually advanced clock. The zero value is not usable;
// create one with NewSimulated. It is safe for concurrent use.
//
// Beyond Now, a Simulated clock supports virtual timers (AfterFunc) and
// change subscriptions (Subscribe), which the netsim package uses to
// deliver in-flight network traffic as virtual time passes.
type Simulated struct {
	mu     sync.Mutex
	now    time.Time
	timers []*Timer
	subs   []func(time.Time)
}

// NewSimulated returns a simulated clock starting at start.
func NewSimulated(start time.Time) *Simulated {
	return &Simulated{now: start}
}

// Now returns the simulated current time.
func (c *Simulated) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time. Timers
// that become due fire (in due order) before Advance returns, followed by
// the change subscribers.
func (c *Simulated) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	due, subs := c.collectLocked(now)
	c.mu.Unlock()
	runCallbacks(due, subs, now)
	return now
}

// Set jumps the clock to t, firing any timers due at or before t and then
// the change subscribers.
func (c *Simulated) Set(t time.Time) {
	c.mu.Lock()
	c.now = t
	due, subs := c.collectLocked(t)
	c.mu.Unlock()
	runCallbacks(due, subs, t)
}

// Timer is a pending AfterFunc callback on a Simulated clock.
type Timer struct {
	c     *Simulated
	at    time.Time
	fn    func()
	fired bool
}

// AfterFunc schedules fn to run once the clock has advanced by at least d.
// The callback runs on the goroutine that advances the clock, after the
// clock's internal lock is released, so it may use the clock freely.
func (c *Simulated) AfterFunc(d time.Duration, fn func()) *Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &Timer{c: c, at: c.now.Add(d), fn: fn}
	c.timers = append(c.timers, t)
	return t
}

// Stop cancels the timer. It reports whether the call prevented the
// callback from firing.
func (t *Timer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.fired {
		return false
	}
	t.fired = true
	return true
}

// Subscribe registers fn to run after every clock change (Advance or
// Set), on the advancing goroutine, outside the clock's internal lock.
// Subscriptions cannot be removed; they live as long as the clock.
func (c *Simulated) Subscribe(fn func(now time.Time)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subs = append(c.subs, fn)
}

// collectLocked extracts the timers due at now (marking them fired and
// removing them from the pending set) plus a snapshot of the subscribers.
func (c *Simulated) collectLocked(now time.Time) ([]*Timer, []func(time.Time)) {
	var due []*Timer
	keep := c.timers[:0]
	for _, t := range c.timers {
		switch {
		case t.fired:
			// Stopped; drop it.
		case !t.at.After(now):
			t.fired = true
			due = append(due, t)
		default:
			keep = append(keep, t)
		}
	}
	c.timers = keep
	sort.SliceStable(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	subs := make([]func(time.Time), len(c.subs))
	copy(subs, c.subs)
	return due, subs
}

func runCallbacks(due []*Timer, subs []func(time.Time), now time.Time) {
	for _, t := range due {
		t.fn()
	}
	for _, fn := range subs {
		fn(now)
	}
}
