package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSimulatedAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewSimulated(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", c.Now(), start)
	}
	got := c.Advance(10 * time.Minute)
	want := start.Add(10 * time.Minute)
	if !got.Equal(want) || !c.Now().Equal(want) {
		t.Errorf("after Advance: %v, want %v", c.Now(), want)
	}
	c.Set(time.Unix(99, 0))
	if c.Now().Unix() != 99 {
		t.Errorf("Set did not take: %v", c.Now())
	}
}

func TestSimulatedConcurrent(t *testing.T) {
	c := NewSimulated(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Advance(time.Second)
				_ = c.Now()
			}
		}()
	}
	wg.Wait()
	if got := c.Now().Unix(); got != 800 {
		t.Errorf("after 800 concurrent advances: %d", got)
	}
}

func TestAfterFuncFiresInDueOrder(t *testing.T) {
	c := NewSimulated(time.Unix(0, 0))
	var order []int
	c.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	c.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	c.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	c.AfterFunc(10*time.Second, func() { order = append(order, 10) })
	c.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired order = %v, want [1 2 3]", order)
	}
	c.Advance(5 * time.Second)
	if len(order) != 4 || order[3] != 10 {
		t.Fatalf("fired order = %v, want trailing 10", order)
	}
}

func TestTimerStop(t *testing.T) {
	c := NewSimulated(time.Unix(0, 0))
	fired := false
	timer := c.AfterFunc(time.Second, func() { fired = true })
	if !timer.Stop() {
		t.Fatal("Stop before firing should return true")
	}
	c.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if timer.Stop() {
		t.Fatal("second Stop should return false")
	}

	t2 := c.AfterFunc(time.Second, func() {})
	c.Advance(2 * time.Second)
	if t2.Stop() {
		t.Fatal("Stop after firing should return false")
	}
}

func TestSubscribeSeesEveryChange(t *testing.T) {
	c := NewSimulated(time.Unix(0, 0))
	var seen []int64
	c.Subscribe(func(now time.Time) { seen = append(seen, now.Unix()) })
	c.Advance(time.Second)
	c.Set(time.Unix(50, 0))
	c.Advance(time.Second)
	want := []int64{1, 50, 51}
	if len(seen) != len(want) {
		t.Fatalf("subscriber saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("subscriber saw %v, want %v", seen, want)
		}
	}
}

// TestTimerCallbackMayUseClock guards against the callback deadlocking on
// the clock's own lock.
func TestTimerCallbackMayUseClock(t *testing.T) {
	c := NewSimulated(time.Unix(0, 0))
	var rescheduled bool
	c.AfterFunc(time.Second, func() {
		_ = c.Now()
		c.AfterFunc(time.Hour, func() {})
		rescheduled = true
	})
	c.Advance(2 * time.Second)
	if !rescheduled {
		t.Fatal("timer callback did not run")
	}
}

func TestSystemClock(t *testing.T) {
	before := time.Now().Add(-time.Second)
	got := System{}.Now()
	after := time.Now().Add(time.Second)
	if got.Before(before) || got.After(after) {
		t.Errorf("System.Now() = %v outside [%v, %v]", got, before, after)
	}
}
