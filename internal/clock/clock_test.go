package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSimulatedAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewSimulated(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", c.Now(), start)
	}
	got := c.Advance(10 * time.Minute)
	want := start.Add(10 * time.Minute)
	if !got.Equal(want) || !c.Now().Equal(want) {
		t.Errorf("after Advance: %v, want %v", c.Now(), want)
	}
	c.Set(time.Unix(99, 0))
	if c.Now().Unix() != 99 {
		t.Errorf("Set did not take: %v", c.Now())
	}
}

func TestSimulatedConcurrent(t *testing.T) {
	c := NewSimulated(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Advance(time.Second)
				_ = c.Now()
			}
		}()
	}
	wg.Wait()
	if got := c.Now().Unix(); got != 800 {
		t.Errorf("after 800 concurrent advances: %d", got)
	}
}

func TestSystemClock(t *testing.T) {
	before := time.Now().Add(-time.Second)
	got := System{}.Now()
	after := time.Now().Add(time.Second)
	if got.Before(before) || got.After(after) {
		t.Errorf("System.Now() = %v outside [%v, %v]", got, before, after)
	}
}
