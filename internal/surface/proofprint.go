package surface

import (
	"encoding/hex"
	"fmt"

	"typecoin/internal/proof"
)

// PrintProof renders a proof term in the concrete syntax accepted by
// ParseProof (round-trip property). Hypothesis names are printed as-is;
// LF binder hints are freshened against the reserved words.
func PrintProof(m proof.Term) string { return printProof(m, nil, 0) }

// Precedence: 0 = binder position (no parens), 1 = application argument
// (parens around binders and applications), 2 = prefix-operand (parens
// around applications too).
func printProof(m proof.Term, lfNames []string, prec int) string {
	wrapApp := func(s string) string {
		if prec >= 1 {
			return "(" + s + ")"
		}
		return s
	}
	switch m := m.(type) {
	case proof.Var:
		return m.Name
	case proof.Const:
		return m.Ref.String()
	case proof.Lam:
		return wrapApp(fmt.Sprintf("\\%s:%s. %s", m.Name,
			printProp(m.Ty, lfNames, 1), printProof(m.Body, lfNames, 0)))
	case proof.App:
		return wrapApp(fmt.Sprintf("%s %s",
			printProof(m.Fn, lfNames, 0+appHeadPrec(m.Fn)),
			printProof(m.Arg, lfNames, 1)))
	case proof.TApp:
		return wrapApp(fmt.Sprintf("%s [%s]",
			printProof(m.Fn, lfNames, 0+appHeadPrec(m.Fn)),
			printTerm(m.Arg, lfNames, false)))
	case proof.Pair:
		return fmt.Sprintf("pair(%s, %s)",
			printProof(m.L, lfNames, 0), printProof(m.R, lfNames, 0))
	case proof.LetPair:
		return wrapApp(fmt.Sprintf("let %s * %s = %s in %s",
			m.LName, m.RName, printProof(m.Of, lfNames, 1), printProof(m.Body, lfNames, 0)))
	case proof.Unit:
		return "unit"
	case proof.LetUnit:
		return wrapApp(fmt.Sprintf("let unit = %s in %s",
			printProof(m.Of, lfNames, 1), printProof(m.Body, lfNames, 0)))
	case proof.WithPair:
		return fmt.Sprintf("<%s, %s>",
			printProof(m.L, lfNames, 0), printProof(m.R, lfNames, 0))
	case proof.Fst:
		return wrapApp("fst " + printProof(m.Of, lfNames, 2))
	case proof.Snd:
		return wrapApp("snd " + printProof(m.Of, lfNames, 2))
	case proof.Inl:
		return wrapApp(fmt.Sprintf("inl[%s] %s",
			printProp(m.As, lfNames, 1), printProof(m.Of, lfNames, 2)))
	case proof.Inr:
		return wrapApp(fmt.Sprintf("inr[%s] %s",
			printProp(m.As, lfNames, 1), printProof(m.Of, lfNames, 2)))
	case proof.Case:
		return wrapApp(fmt.Sprintf("case %s of inl %s => %s | inr %s => %s",
			printProof(m.Of, lfNames, 1),
			m.LName, printProof(m.L, lfNames, 0),
			m.RName, printProof(m.R, lfNames, 0)))
	case proof.Abort:
		return wrapApp(fmt.Sprintf("abort[%s] %s",
			printProp(m.As, lfNames, 1), printProof(m.Of, lfNames, 2)))
	case proof.BangI:
		return wrapApp("!" + printProof(m.Of, lfNames, 2))
	case proof.LetBang:
		return wrapApp(fmt.Sprintf("let !%s = %s in %s",
			m.Name, printProof(m.Of, lfNames, 1), printProof(m.Body, lfNames, 0)))
	case proof.TLam:
		name := freshen(m.Hint, lfNames)
		return wrapApp(fmt.Sprintf("/\\%s:%s. %s", name,
			printFamily(m.Ty, lfNames, false),
			printProof(m.Body, append(lfNames, name), 0)))
	case proof.Pack:
		return fmt.Sprintf("pack[%s : %s](%s)",
			printTerm(m.Witness, lfNames, false),
			printProp(m.As, lfNames, 1),
			printProof(m.Of, lfNames, 0))
	case proof.Unpack:
		name := freshen(m.Hint, lfNames)
		return wrapApp(fmt.Sprintf("let (%s, %s) = unpack %s in %s",
			name, m.Name, printProof(m.Of, lfNames, 1),
			printProof(m.Body, append(lfNames, name), 0)))
	case proof.SayReturn:
		return wrapApp(fmt.Sprintf("sayreturn[%s] %s",
			printTerm(m.Prin, lfNames, false), printProof(m.Of, lfNames, 2)))
	case proof.SayBind:
		return wrapApp(fmt.Sprintf("saybind %s = %s in %s",
			m.Name, printProof(m.Of, lfNames, 1), printProof(m.Body, lfNames, 0)))
	case proof.Assert:
		bang := ""
		if m.Persistent {
			bang = "!"
		}
		return fmt.Sprintf("assert%s(%s, %s, %s)", bang,
			hex.EncodeToString(m.Key.Serialize()),
			hex.EncodeToString(m.Sig.Serialize()),
			printProp(m.Prop, lfNames, 1))
	case proof.IfReturn:
		return wrapApp(fmt.Sprintf("ifreturn[%s] %s",
			printCond(m.Cond, lfNames), printProof(m.Of, lfNames, 2)))
	case proof.IfBind:
		return wrapApp(fmt.Sprintf("ifbind %s = %s in %s",
			m.Name, printProof(m.Of, lfNames, 1), printProof(m.Body, lfNames, 0)))
	case proof.IfWeaken:
		return wrapApp(fmt.Sprintf("ifweaken[%s] %s",
			printCond(m.Cond, lfNames), printProof(m.Of, lfNames, 2)))
	case proof.IfSay:
		return wrapApp("ifsay " + printProof(m.Of, lfNames, 2))
	default:
		return "?proof"
	}
}

// appHeadPrec: an application head that is itself an application needs
// no parens; binders and prefix forms do.
func appHeadPrec(m proof.Term) int {
	switch m.(type) {
	case proof.App, proof.TApp, proof.Var, proof.Const, proof.Pair,
		proof.WithPair, proof.Unit, proof.Pack, proof.Assert:
		return 0
	default:
		return 1
	}
}
