// Package surface implements a concrete syntax for the Typecoin logic:
// a lexer, parser and printer for LF kinds, type families, index terms,
// propositions and conditions, using ASCII spellings of the paper's
// notation:
//
//	A -o B          affine implication
//	A * B           simultaneous conjunction (tensor)
//	A & B           alternative conjunction (with)
//	A + B           disjunction
//	1, 0            units
//	!A              exponential
//	all u:t. A      universal quantification
//	some u:t. A     existential quantification
//	<K> A           affirmation ("K says A")
//	receipt(A / n ->> K)
//	if(phi, A)      conditional
//	true, c1 /\ c2, ~c, before(t), spent(txid.n)
//	\u:t. m         LF abstraction;  Pi u:t. t'  dependent function type
//	#hex40          principal literal;  decimal digits  nat literal
//	this.l, txid64.l, name   constant references
//
// The parser resolves names against a Scope; the printer emits text the
// parser accepts (round-trip property, experiment F1).
package surface

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokHash // #hex principal literal
	tokLParen
	tokRParen
	tokComma
	tokColon
	tokDot
	tokLolli    // -o
	tokArrow    // ->
	tokRouted   // ->>
	tokStar     // *
	tokAmp      // &
	tokPlusSym  // +
	tokBang     // !
	tokLAngle   // <
	tokRAngle   // >
	tokTilde    // ~
	tokWedge    // /\
	tokSlash    // /
	tokLambda   // \
	tokLBracket // [
	tokRBracket // ]
	tokEquals   // =
	tokDArrow   // =>
	tokPipe     // |
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokHash:
		return "principal literal"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokDot:
		return "'.'"
	case tokLolli:
		return "'-o'"
	case tokArrow:
		return "'->'"
	case tokRouted:
		return "'->>'"
	case tokStar:
		return "'*'"
	case tokAmp:
		return "'&'"
	case tokPlusSym:
		return "'+'"
	case tokBang:
		return "'!'"
	case tokLAngle:
		return "'<'"
	case tokRAngle:
		return "'>'"
	case tokTilde:
		return "'~'"
	case tokWedge:
		return "'/\\'"
	case tokSlash:
		return "'/'"
	case tokLambda:
		return "'\\'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokEquals:
		return "'='"
	case tokDArrow:
		return "'=>'"
	case tokPipe:
		return "'|'"
	default:
		return "?"
	}
}

type token struct {
	kind tokKind
	text string
	pos  int
}

// SyntaxError reports a parse failure with its byte offset.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error renders the failure.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("surface: offset %d: %s", e.Pos, e.Msg)
}

// lex tokenizes the input. Identifiers may contain letters, digits, '-',
// '_' and '\” (primes from the printer), starting with a letter or '_'.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '%': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == ':':
			toks = append(toks, token{tokColon, ":", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '&':
			toks = append(toks, token{tokAmp, "&", i})
			i++
		case c == '+':
			toks = append(toks, token{tokPlusSym, "+", i})
			i++
		case c == '!':
			toks = append(toks, token{tokBang, "!", i})
			i++
		case c == '<':
			toks = append(toks, token{tokLAngle, "<", i})
			i++
		case c == '>':
			toks = append(toks, token{tokRAngle, ">", i})
			i++
		case c == '~':
			toks = append(toks, token{tokTilde, "~", i})
			i++
		case c == '\\':
			toks = append(toks, token{tokLambda, "\\", i})
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", i})
			i++
		case c == '|':
			toks = append(toks, token{tokPipe, "|", i})
			i++
		case c == '=':
			if i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, token{tokDArrow, "=>", i})
				i += 2
			} else {
				toks = append(toks, token{tokEquals, "=", i})
				i++
			}
		case c == '/':
			if i+1 < len(src) && src[i+1] == '\\' {
				toks = append(toks, token{tokWedge, "/\\", i})
				i += 2
			} else {
				toks = append(toks, token{tokSlash, "/", i})
				i++
			}
		case c == '-':
			switch {
			case strings.HasPrefix(src[i:], "->>"):
				toks = append(toks, token{tokRouted, "->>", i})
				i += 3
			case strings.HasPrefix(src[i:], "-o"):
				toks = append(toks, token{tokLolli, "-o", i})
				i += 2
			case strings.HasPrefix(src[i:], "->"):
				toks = append(toks, token{tokArrow, "->", i})
				i += 2
			default:
				return nil, &SyntaxError{i, "stray '-'"}
			}
		case c == '#':
			j := i + 1
			for j < len(src) && isHexDigit(src[j]) {
				j++
			}
			if j == i+1 {
				return nil, &SyntaxError{i, "empty principal literal"}
			}
			toks = append(toks, token{tokHash, src[i+1 : j], i})
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (isHexDigit(src[j]) || isIdentRune(rune(src[j]))) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && isIdentRune(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			return nil, &SyntaxError{i, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func isIdentRune(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '-' || c == '_' || c == '\''
}
