package surface

import (
	"fmt"
	"strconv"

	"typecoin/internal/bkey"
	"typecoin/internal/chainhash"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
	"typecoin/internal/wire"
)

// Scope resolves bare identifiers to constant references. Binders always
// shadow the scope.
type Scope interface {
	ResolveName(name string) (lf.Ref, bool)
}

// MapScope is a Scope backed by explicit bindings, with optional
// fall-through to this.name for unknown identifiers (convenient when
// writing a transaction's own basis).
type MapScope struct {
	Bindings map[string]lf.Ref
	// ImplicitThis resolves unknown names to this.name.
	ImplicitThis bool
}

// NewScope creates a scope preloaded with the built-in constant names.
func NewScope(implicitThis bool) *MapScope {
	return &MapScope{
		Bindings: map[string]lf.Ref{
			"principal":  lf.Global("principal"),
			"nat":        lf.Global("nat"),
			"time":       lf.Global("nat"), // "the type time is actually just nat"
			"add":        lf.Global("add"),
			"plus":       lf.Global("plus"),
			"plus_intro": lf.Global("plus_intro"),
		},
		ImplicitThis: implicitThis,
	}
}

// Bind adds a name binding and returns the scope for chaining.
func (s *MapScope) Bind(name string, r lf.Ref) *MapScope {
	s.Bindings[name] = r
	return s
}

// ResolveName implements Scope.
func (s *MapScope) ResolveName(name string) (lf.Ref, bool) {
	if r, ok := s.Bindings[name]; ok {
		return r, true
	}
	if s.ImplicitThis {
		return lf.This(name), true
	}
	return lf.Ref{}, false
}

// parser state.
type parser struct {
	toks  []token
	pos   int
	scope Scope
	binds []string // LF de Bruijn environment, innermost last
	// proofVars tracks bound proof-hypothesis names (they shadow
	// constants in proof-term position).
	proofVars []string
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokKind) bool {
	return p.toks[p.pos].kind == k
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, &SyntaxError{t.pos, fmt.Sprintf("expected %v, found %v %q", k, t.kind, t.text)}
	}
	return t, nil
}

func (p *parser) lookupBinder(name string) (int, bool) {
	for i := len(p.binds) - 1; i >= 0; i-- {
		if p.binds[i] == name {
			return len(p.binds) - 1 - i, true
		}
	}
	return 0, false
}

// parseRef parses a constant reference: ident, this.ident, or
// hex64.ident. The caller has already ruled out binders.
func (p *parser) parseRef() (lf.Ref, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		if t.text == "this" && p.at(tokDot) {
			p.next()
			lbl, err := p.expect(tokIdent)
			if err != nil {
				return lf.Ref{}, err
			}
			return lf.This(lbl.text), nil
		}
		if len(t.text) == 64 && isAllHex(t.text) && p.at(tokDot) {
			p.next()
			lbl, err := p.expect(tokIdent)
			if err != nil {
				return lf.Ref{}, err
			}
			h, err := chainhash.NewHashFromStr(t.text)
			if err != nil {
				return lf.Ref{}, &SyntaxError{t.pos, err.Error()}
			}
			return lf.TxRef(h, lbl.text), nil
		}
		r, ok := p.scope.ResolveName(t.text)
		if !ok {
			return lf.Ref{}, &SyntaxError{t.pos, fmt.Sprintf("unknown name %q", t.text)}
		}
		return r, nil
	case tokNumber:
		if len(t.text) == 64 && isAllHex(t.text) && p.at(tokDot) {
			p.next()
			lbl, err := p.expect(tokIdent)
			if err != nil {
				return lf.Ref{}, err
			}
			h, err := chainhash.NewHashFromStr(t.text)
			if err != nil {
				return lf.Ref{}, &SyntaxError{t.pos, err.Error()}
			}
			return lf.TxRef(h, lbl.text), nil
		}
		return lf.Ref{}, &SyntaxError{t.pos, "expected a reference"}
	default:
		return lf.Ref{}, &SyntaxError{t.pos, fmt.Sprintf("expected a reference, found %v", t.kind)}
	}
}

func isAllHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isHexDigit(s[i]) {
			return false
		}
	}
	return true
}

// ---- LF terms ----

// parseTerm parses a full term (lambda or application spine).
func (p *parser) parseTerm() (lf.Term, error) {
	if p.at(tokLambda) {
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		ty, err := p.parseFamily()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		p.binds = append(p.binds, name.text)
		body, err := p.parseTerm()
		p.binds = p.binds[:len(p.binds)-1]
		if err != nil {
			return nil, err
		}
		return lf.Lam(name.text, ty, body), nil
	}
	head, err := p.parseTermAtom()
	if err != nil {
		return nil, err
	}
	for p.startsTermAtom() {
		arg, err := p.parseTermAtom()
		if err != nil {
			return nil, err
		}
		head = lf.App(head, arg)
	}
	return head, nil
}

func (p *parser) startsTermAtom() bool {
	switch p.peek().kind {
	case tokNumber, tokHash, tokIdent, tokLParen:
		return true
	}
	return false
}

func (p *parser) parseTermAtom() (lf.Term, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		if len(t.text) == 64 && isAllHex(t.text) && p.toks[p.pos+1].kind == tokDot {
			ref, err := p.parseRef()
			if err != nil {
				return nil, err
			}
			return lf.Const(ref), nil
		}
		p.next()
		n, err := strconv.ParseUint(t.text, 10, 64)
		if err != nil {
			return nil, &SyntaxError{t.pos, "malformed number " + t.text}
		}
		return lf.Nat(n), nil
	case tokHash:
		p.next()
		prin, err := bkey.ParsePrincipal(t.text)
		if err != nil {
			return nil, &SyntaxError{t.pos, err.Error()}
		}
		return lf.Principal(prin), nil
	case tokIdent:
		if idx, ok := p.lookupBinder(t.text); ok {
			p.next()
			return lf.Var(idx, t.text), nil
		}
		ref, err := p.parseRef()
		if err != nil {
			return nil, err
		}
		return lf.Const(ref), nil
	case tokLParen:
		p.next()
		m, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, &SyntaxError{t.pos, fmt.Sprintf("expected a term, found %v", t.kind)}
	}
}

// ---- LF families ----

// parseFamily parses fam ('->' fam)* (right associative) with Pi
// binders.
func (p *parser) parseFamily() (lf.Family, error) {
	if t := p.peek(); t.kind == tokIdent && t.text == "Pi" {
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		arg, err := p.parseFamily()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		p.binds = append(p.binds, name.text)
		body, err := p.parseFamily()
		p.binds = p.binds[:len(p.binds)-1]
		if err != nil {
			return nil, err
		}
		return lf.Pi(name.text, arg, body), nil
	}
	left, err := p.parseFamilyApp()
	if err != nil {
		return nil, err
	}
	if p.at(tokArrow) {
		p.next()
		right, err := p.parseFamily()
		if err != nil {
			return nil, err
		}
		return lf.Arrow(left, right), nil
	}
	return left, nil
}

func (p *parser) parseFamilyApp() (lf.Family, error) {
	head, err := p.parseFamilyAtom()
	if err != nil {
		return nil, err
	}
	for p.startsTermAtom() {
		arg, err := p.parseTermAtom()
		if err != nil {
			return nil, err
		}
		head = lf.FamApp(head, arg)
	}
	return head, nil
}

func (p *parser) parseFamilyAtom() (lf.Family, error) {
	t := p.peek()
	switch t.kind {
	case tokLParen:
		p.next()
		f, err := p.parseFamily()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return f, nil
	case tokIdent, tokNumber:
		ref, err := p.parseRef()
		if err != nil {
			return nil, err
		}
		return lf.FamConst(ref), nil
	default:
		return nil, &SyntaxError{t.pos, fmt.Sprintf("expected a type family, found %v", t.kind)}
	}
}

// ---- LF kinds ----

func (p *parser) parseKind() (lf.Kind, error) {
	t := p.peek()
	if t.kind == tokIdent {
		switch t.text {
		case "type":
			p.next()
			return lf.KType{}, nil
		case "prop":
			p.next()
			return lf.KProp{}, nil
		case "Pi":
			p.next()
			name, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokColon); err != nil {
				return nil, err
			}
			arg, err := p.parseFamily()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokDot); err != nil {
				return nil, err
			}
			p.binds = append(p.binds, name.text)
			body, err := p.parseKind()
			p.binds = p.binds[:len(p.binds)-1]
			if err != nil {
				return nil, err
			}
			return lf.KPi{Hint: name.text, Arg: arg, Body: body}, nil
		}
	}
	// fam -> kind
	arg, err := p.parseFamilyApp()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return nil, err
	}
	body, err := p.parseKind()
	if err != nil {
		return nil, err
	}
	return lf.KArrow(arg, body), nil
}

// ---- propositions ----

// parseProp parses at the lowest precedence: quantifiers and lolli.
func (p *parser) parseProp() (logic.Prop, error) {
	if t := p.peek(); t.kind == tokIdent && (t.text == "all" || t.text == "some") {
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		ty, err := p.parseFamily()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		p.binds = append(p.binds, name.text)
		body, err := p.parseProp()
		p.binds = p.binds[:len(p.binds)-1]
		if err != nil {
			return nil, err
		}
		if t.text == "all" {
			return logic.Forall(name.text, ty, body), nil
		}
		return logic.Exists(name.text, ty, body), nil
	}
	left, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if p.at(tokLolli) {
		p.next()
		right, err := p.parseProp() // right associative
		if err != nil {
			return nil, err
		}
		return logic.PLolli{A: left, B: right}, nil
	}
	return left, nil
}

func (p *parser) parseSum() (logic.Prop, error) {
	left, err := p.parseWith()
	if err != nil {
		return nil, err
	}
	for p.at(tokPlusSym) {
		p.next()
		right, err := p.parseWith()
		if err != nil {
			return nil, err
		}
		left = logic.PPlus{A: left, B: right}
	}
	return left, nil
}

func (p *parser) parseWith() (logic.Prop, error) {
	left, err := p.parseTensor()
	if err != nil {
		return nil, err
	}
	for p.at(tokAmp) {
		p.next()
		right, err := p.parseTensor()
		if err != nil {
			return nil, err
		}
		left = logic.PWith{A: left, B: right}
	}
	return left, nil
}

func (p *parser) parseTensor() (logic.Prop, error) {
	left, err := p.parsePrefix()
	if err != nil {
		return nil, err
	}
	for p.at(tokStar) {
		p.next()
		right, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		left = logic.PTensor{A: left, B: right}
	}
	return left, nil
}

func (p *parser) parsePrefix() (logic.Prop, error) {
	switch p.peek().kind {
	case tokBang:
		p.next()
		body, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		return logic.PBang{A: body}, nil
	case tokLAngle:
		p.next()
		prin, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRAngle); err != nil {
			return nil, err
		}
		body, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		return logic.PSays{Prin: prin, Body: body}, nil
	default:
		return p.parsePropAtom()
	}
}

func (p *parser) parsePropAtom() (logic.Prop, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		if t.text == "1" {
			p.next()
			return logic.POne{}, nil
		}
		if t.text == "0" {
			p.next()
			return logic.PZero{}, nil
		}
		if len(t.text) == 64 && isAllHex(t.text) {
			return p.parseAtomApplication()
		}
		return nil, &SyntaxError{t.pos, "a bare number is not a proposition"}
	case tokLParen:
		p.next()
		inner, err := p.parseProp()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case tokIdent:
		switch t.text {
		case "receipt":
			return p.parseReceipt()
		case "if":
			p.next()
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			cond, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokComma); err != nil {
				return nil, err
			}
			body, err := p.parseProp()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return logic.PIf{Cond: cond, Body: body}, nil
		}
		return p.parseAtomApplication()
	default:
		return nil, &SyntaxError{t.pos, fmt.Sprintf("expected a proposition, found %v", t.kind)}
	}
}

// parseAtomApplication parses an atomic proposition: ref term*.
func (p *parser) parseAtomApplication() (logic.Prop, error) {
	ref, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	fam := lf.FamConst(ref)
	for p.startsTermAtom() {
		arg, err := p.parseTermAtom()
		if err != nil {
			return nil, err
		}
		fam = lf.FamApp(fam, arg)
	}
	return logic.PAtom{Fam: fam}, nil
}

// parseReceipt parses receipt(A / n ->> K) or receipt(n ->> K).
func (p *parser) parseReceipt() (logic.Prop, error) {
	p.next() // 'receipt'
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	// Amount-only form: number followed immediately by '->>'.
	if t := p.peek(); t.kind == tokNumber && p.toks[p.pos+1].kind == tokRouted {
		p.next()
		amount, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, &SyntaxError{t.pos, "malformed amount"}
		}
		p.next() // ->>
		to, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return logic.PReceipt{Amount: amount, To: to}, nil
	}
	res, err := p.parseProp()
	if err != nil {
		return nil, err
	}
	var amount int64
	if p.at(tokSlash) {
		p.next()
		t, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		amount, err = strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, &SyntaxError{t.pos, "malformed amount"}
		}
	}
	if _, err := p.expect(tokRouted); err != nil {
		return nil, err
	}
	to, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return logic.PReceipt{Res: res, Amount: amount, To: to}, nil
}

// ---- conditions ----

func (p *parser) parseCond() (logic.Cond, error) {
	left, err := p.parseCondAtom()
	if err != nil {
		return nil, err
	}
	for p.at(tokWedge) {
		p.next()
		right, err := p.parseCondAtom()
		if err != nil {
			return nil, err
		}
		left = logic.CAnd{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseCondAtom() (logic.Cond, error) {
	t := p.peek()
	switch {
	case t.kind == tokTilde:
		p.next()
		inner, err := p.parseCondAtom()
		if err != nil {
			return nil, err
		}
		return logic.CNot{C: inner}, nil
	case t.kind == tokLParen:
		p.next()
		inner, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tokIdent && t.text == "true":
		p.next()
		return logic.CTrue{}, nil
	case t.kind == tokIdent && t.text == "before":
		p.next()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		tm, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return logic.CBefore{T: tm}, nil
	case t.kind == tokIdent && t.text == "spent":
		p.next()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		id := p.next()
		if (id.kind != tokIdent && id.kind != tokNumber) || len(id.text) != 64 || !isAllHex(id.text) {
			return nil, &SyntaxError{id.pos, "expected a 64-hex transaction id"}
		}
		h, err := chainhash.NewHashFromStr(id.text)
		if err != nil {
			return nil, &SyntaxError{id.pos, err.Error()}
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		idx, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseUint(idx.text, 10, 32)
		if err != nil {
			return nil, &SyntaxError{idx.pos, "malformed output index"}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return logic.CSpent{Out: wire.OutPoint{Hash: h, Index: uint32(n)}}, nil
	default:
		return nil, &SyntaxError{t.pos, fmt.Sprintf("expected a condition, found %v %q", t.kind, t.text)}
	}
}

// ---- entry points ----

func newParser(src string, sc Scope) (*parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	if sc == nil {
		sc = NewScope(false)
	}
	return &parser{toks: toks, scope: sc}, nil
}

func (p *parser) finish() error {
	if !p.at(tokEOF) {
		t := p.peek()
		return &SyntaxError{t.pos, fmt.Sprintf("unexpected trailing %v %q", t.kind, t.text)}
	}
	return nil
}

// ParseProp parses a proposition.
func ParseProp(src string, sc Scope) (logic.Prop, error) {
	p, err := newParser(src, sc)
	if err != nil {
		return nil, err
	}
	out, err := p.parseProp()
	if err != nil {
		return nil, err
	}
	return out, p.finish()
}

// ParseCond parses a condition.
func ParseCond(src string, sc Scope) (logic.Cond, error) {
	p, err := newParser(src, sc)
	if err != nil {
		return nil, err
	}
	out, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	return out, p.finish()
}

// ParseTerm parses an LF index term.
func ParseTerm(src string, sc Scope) (lf.Term, error) {
	p, err := newParser(src, sc)
	if err != nil {
		return nil, err
	}
	out, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return out, p.finish()
}

// ParseFamily parses an LF type family.
func ParseFamily(src string, sc Scope) (lf.Family, error) {
	p, err := newParser(src, sc)
	if err != nil {
		return nil, err
	}
	out, err := p.parseFamily()
	if err != nil {
		return nil, err
	}
	return out, p.finish()
}

// ParseKind parses an LF kind.
func ParseKind(src string, sc Scope) (lf.Kind, error) {
	p, err := newParser(src, sc)
	if err != nil {
		return nil, err
	}
	out, err := p.parseKind()
	if err != nil {
		return nil, err
	}
	return out, p.finish()
}

// ParseBasis parses a sequence of declarations of the form
//
//	name : classifier.
//
// (one per line; '%' comments allowed), building a basis of this-local
// constants. Each classifier is tried as a kind, then as an LF type
// family, then as a proposition — mirroring the three sorts of Figure 1.
// Earlier declarations are visible to later ones through the scope.
func ParseBasis(src string, sc *MapScope) (*logic.Basis, error) {
	if sc == nil {
		sc = NewScope(false)
	}
	b := logic.NewBasis(nil)
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	pos := 0
	for toks[pos].kind != tokEOF {
		name := toks[pos]
		if name.kind != tokIdent {
			return nil, &SyntaxError{name.pos, "expected a declaration name"}
		}
		pos++
		if toks[pos].kind != tokColon {
			return nil, &SyntaxError{toks[pos].pos, "expected ':' after declaration name"}
		}
		pos++
		// Find the terminating '.': the first parenthesis-balanced dot
		// followed by EOF or the start of the next declaration
		// ("ident :"). Binder dots ("all n:nat. ...") never match,
		// because a binder body cannot be empty.
		end := -1
		depth := 0
		for i := pos; toks[i].kind != tokEOF; i++ {
			switch toks[i].kind {
			case tokLParen:
				depth++
			case tokRParen:
				depth--
			case tokDot:
				if depth == 0 {
					next := toks[i+1]
					if next.kind == tokEOF ||
						(next.kind == tokIdent && toks[i+2].kind == tokColon) {
						end = i
					}
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return nil, &SyntaxError{name.pos, "declaration not terminated by '.'"}
		}
		body := &parser{toks: append(append([]token(nil), toks[pos:end]...),
			token{tokEOF, "", toks[end].pos}), scope: sc}

		ref := lf.This(name.text)
		declared := false
		// Try a kind first (kinds cannot be confused with the other
		// sorts: they end in "type" or "prop").
		if k, kerr := tryParse(body, func(p *parser) (interface{}, error) {
			v, e := p.parseKind()
			return v, e
		}); kerr == nil {
			if err := b.DeclareFam(ref, k.(lf.Kind)); err != nil {
				return nil, err
			}
			declared = true
		}
		// Families and propositions share surface forms (an atom IS a
		// family application), so disambiguate semantically: if the body
		// is a well-formed proposition over the basis built so far,
		// declare a proof constant; if it is a well-formed type (kind
		// "type"), declare a term constant.
		if !declared {
			if p2, perr := tryParse(body, func(p *parser) (interface{}, error) {
				v, e := p.parseProp()
				return v, e
			}); perr == nil {
				if logic.CheckProp(b, nil, p2.(logic.Prop)) == nil {
					if err := b.DeclareProp(ref, p2.(logic.Prop)); err != nil {
						return nil, err
					}
					declared = true
				}
			}
		}
		if !declared {
			f, ferr := tryParse(body, func(p *parser) (interface{}, error) {
				v, e := p.parseFamily()
				return v, e
			})
			if ferr != nil {
				return nil, fmt.Errorf("surface: declaration %s: %w", name.text, ferr)
			}
			if err := lf.CheckFamilyIsType(b, nil, f.(lf.Family)); err != nil {
				return nil, fmt.Errorf("surface: declaration %s: %w", name.text, err)
			}
			if err := b.DeclareTerm(ref, f.(lf.Family)); err != nil {
				return nil, err
			}
		}
		sc.Bind(name.text, ref)
		pos = end + 1
	}
	return b, nil
}

// tryParse runs fn on a fresh copy of the parser and requires it to
// consume all input.
func tryParse(template *parser, fn func(*parser) (interface{}, error)) (interface{}, error) {
	p := &parser{toks: template.toks, scope: template.scope}
	v, err := fn(p)
	if err != nil {
		return nil, err
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return v, nil
}
