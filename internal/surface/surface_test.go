package surface

import (
	"strings"
	"testing"
	"testing/quick"

	"typecoin/internal/bkey"
	"typecoin/internal/chainhash"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
	"typecoin/internal/wire"
)

func scope() *MapScope {
	return NewScope(true)
}

func mustParseProp(t *testing.T, src string) logic.Prop {
	t.Helper()
	p, err := ParseProp(src, scope())
	if err != nil {
		t.Fatalf("ParseProp(%q): %v", src, err)
	}
	return p
}

func TestParseSimpleProps(t *testing.T) {
	cases := []struct {
		src  string
		want logic.Prop
	}{
		{"1", logic.One},
		{"0", logic.Zero},
		{"coin 5", logic.Atom(lf.This("coin"), lf.Nat(5))},
		{"bread * ham -o sandwich",
			logic.Lolli(logic.Tensor(logic.Atom(lf.This("bread")), logic.Atom(lf.This("ham"))),
				logic.Atom(lf.This("sandwich")))},
		{"!a", logic.Bang(logic.Atom(lf.This("a")))},
		{"a & b", logic.With(logic.Atom(lf.This("a")), logic.Atom(lf.This("b")))},
		{"a + b", logic.Plus(logic.Atom(lf.This("a")), logic.Atom(lf.This("b")))},
		{"a -o b -o c",
			logic.Lolli(logic.Atom(lf.This("a")),
				logic.Atom(lf.This("b")), logic.Atom(lf.This("c")))},
		{"all n:nat. coin n",
			logic.Forall("n", lf.NatFam, logic.Atom(lf.This("coin"), lf.Var(0, "n")))},
		{"some x:plus 2 3 5. 1",
			logic.Exists("x", lf.FamApp(lf.PlusFam, lf.Nat(2), lf.Nat(3), lf.Nat(5)), logic.One)},
	}
	for _, tc := range cases {
		got := mustParseProp(t, tc.src)
		eq, err := logic.PropEqual(got, tc.want)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("ParseProp(%q) = %s, want %s", tc.src, got, tc.want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// -o binds loosest and associates right; * binds tighter than & which
	// binds tighter than +.
	a, b, c := logic.Atom(lf.This("a")), logic.Atom(lf.This("b")), logic.Atom(lf.This("c"))
	cases := []struct {
		src  string
		want logic.Prop
	}{
		{"a * b -o c", logic.Lolli(logic.Tensor(a, b), c)},
		{"a -o b * c", logic.Lolli(a, logic.Tensor(b, c))},
		{"a * b & c", logic.With(logic.Tensor(a, b), c)},
		{"a & b + c", logic.Plus(logic.With(a, b), c)},
		{"a * b * c", logic.Tensor(a, b, c)}, // left
		{"(a -o b) -o c", logic.Lolli(logic.Lolli(a, b), c)},
	}
	for _, tc := range cases {
		got := mustParseProp(t, tc.src)
		eq, err := logic.PropEqual(got, tc.want)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("ParseProp(%q) = %s, want %s", tc.src, got, tc.want)
		}
	}
}

func TestParseSaysAndPrincipal(t *testing.T) {
	var k bkey.Principal
	k[0], k[19] = 0xab, 0xcd
	src := "<#" + k.String() + "> may-read TOPLAS"
	got := mustParseProp(t, strings.ReplaceAll(src, "TOPLAS", "toplas"))
	want := logic.Says(lf.Principal(k), logic.Atom(lf.This("may-read"), lf.Const(lf.This("toplas"))))
	eq, err := logic.PropEqual(got, want)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestParseConditionsAndIf(t *testing.T) {
	opHash := chainhash.HashB([]byte("R"))
	src := "if(~spent(" + opHash.String() + ".2) /\\ before(1000), commodity)"
	got := mustParseProp(t, src)
	want := logic.If(
		logic.And(logic.Unspent(wire.OutPoint{Hash: opHash, Index: 2}), logic.Before(1000)),
		logic.Atom(lf.This("commodity")))
	eq, err := logic.PropEqual(got, want)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestParseReceipts(t *testing.T) {
	var k bkey.Principal
	k[3] = 7
	lit := "#" + k.String()
	got := mustParseProp(t, "receipt(coupon / 0 ->> "+lit+")")
	want := logic.Receipt(logic.Atom(lf.This("coupon")), 0, lf.Principal(k))
	if eq, _ := logic.PropEqual(got, want); !eq {
		t.Errorf("resource receipt: got %s", got)
	}
	got2 := mustParseProp(t, "receipt(500 ->> "+lit+")")
	want2 := logic.Receipt(nil, 500, lf.Principal(k))
	if eq, _ := logic.PropEqual(got2, want2); !eq {
		t.Errorf("amount receipt: got %s", got2)
	}
}

func TestParseTxRefs(t *testing.T) {
	h := chainhash.HashB([]byte("tx"))
	src := h.String() + ".coin 5"
	got := mustParseProp(t, src)
	want := logic.Atom(lf.TxRef(h, "coin"), lf.Nat(5))
	if eq, _ := logic.PropEqual(got, want); !eq {
		t.Errorf("got %s, want %s", got, want)
	}
	// this.x form.
	got2 := mustParseProp(t, "this.coin 5")
	if eq, _ := logic.PropEqual(got2, logic.Atom(lf.This("coin"), lf.Nat(5))); !eq {
		t.Errorf("this ref: got %s", got2)
	}
}

func TestParseLFTermsAndFamilies(t *testing.T) {
	tm, err := ParseTerm(`\n:nat. add n 1`, scope())
	if err != nil {
		t.Fatal(err)
	}
	want := lf.Lam("n", lf.NatFam, lf.Add(lf.Var(0, "n"), lf.Nat(1)))
	if eq, _ := lf.TermEqual(tm, want); !eq {
		t.Errorf("got %s, want %s", tm, want)
	}
	fam, err := ParseFamily("Pi n:nat. plus n 0 n", scope())
	if err != nil {
		t.Fatal(err)
	}
	wantF := lf.Pi("n", lf.NatFam, lf.FamApp(lf.PlusFam, lf.Var(0, "n"), lf.Nat(0), lf.Var(0, "n")))
	if eq, _ := lf.FamilyEqual(fam, wantF); !eq {
		t.Errorf("got %s, want %s", fam, wantF)
	}
	arrow, err := ParseFamily("nat -> nat -> nat", scope())
	if err != nil {
		t.Fatal(err)
	}
	if eq, _ := lf.FamilyEqual(arrow, lf.Arrow(lf.NatFam, lf.Arrow(lf.NatFam, lf.NatFam))); !eq {
		t.Errorf("arrow: got %s", arrow)
	}
}

func TestParseKinds(t *testing.T) {
	k, err := ParseKind("nat -> prop", scope())
	if err != nil {
		t.Fatal(err)
	}
	if k.String() != "nat -> prop" {
		t.Errorf("kind = %s", k)
	}
	k2, err := ParseKind("type", scope())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := k2.(lf.KType); !ok {
		t.Errorf("kind = %T", k2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"coin 5 extra -o",
		"(a -o b",
		"all n nat. coin n",
		"<5 a", // unclosed affirmation
		"if(true coin)",
		"receipt(a ->>)",
		"2",           // bare number is not a prop
		"spent(ff.0)", // short txid in prop position
	}
	for _, src := range bad {
		if _, err := ParseProp(src, scope()); err == nil {
			t.Errorf("ParseProp(%q) succeeded", src)
		}
	}
	// Unknown name without implicit-this.
	if _, err := ParseProp("mystery", NewScope(false)); err == nil {
		t.Error("unknown name resolved without implicit this")
	}
}

// TestFigure1RoundTrip is experiment F1: every syntactic class of Figure
// 1 (plus the Figure 2 conditionals) survives print-then-parse.
func TestFigure1RoundTrip(t *testing.T) {
	var alice bkey.Principal
	alice[0] = 0xa1
	h := chainhash.HashB([]byte("upstream"))
	op := wire.OutPoint{Hash: h, Index: 3}

	props := []logic.Prop{
		logic.One,
		logic.Zero,
		logic.Atom(lf.This("coin"), lf.Nat(5)),
		logic.Atom(lf.TxRef(h, "may-read"), lf.Principal(alice)),
		logic.Lolli(logic.Atom(lf.This("bread")), logic.Atom(lf.This("sandwich"))),
		logic.Tensor(logic.One, logic.Zero, logic.Atom(lf.This("a"))),
		logic.With(logic.Atom(lf.This("a")), logic.Atom(lf.This("b"))),
		logic.Plus(logic.Atom(lf.This("a")), logic.Atom(lf.This("b"))),
		logic.Bang(logic.Lolli(logic.Atom(lf.This("coupon")),
			logic.Forall("K", lf.PrincipalFam, logic.Atom(lf.This("may-read"), lf.Var(0, "K"))))),
		logic.Forall("n", lf.NatFam, logic.Atom(lf.This("coin"), lf.Var(0, "n"))),
		logic.Exists("x", lf.FamApp(lf.PlusFam, lf.Nat(1), lf.Nat(2), lf.Nat(3)), logic.One),
		logic.Says(lf.Principal(alice), logic.Atom(lf.This("may-write"), lf.Principal(alice))),
		logic.Receipt(logic.Atom(lf.This("coupon")), 100, lf.Principal(alice)),
		logic.Receipt(nil, 500, lf.Principal(alice)),
		logic.If(logic.Before(1000), logic.Atom(lf.This("commodity"))),
		logic.If(logic.And(logic.Unspent(op), logic.Before(99)), logic.One),
		// Nested binder shadowing.
		logic.Forall("n", lf.NatFam, logic.Forall("n", lf.NatFam,
			logic.Atom(lf.This("coin"), lf.Var(1, "n")))),
		// The full TOPLAS offer from Section 4.
		logic.Bang(logic.Says(lf.Principal(alice),
			logic.Lolli(
				logic.Tensor(logic.Atom(lf.This("coupon")),
					logic.Receipt(logic.Atom(lf.This("coupon")), 0, lf.Principal(alice))),
				logic.Forall("K", lf.PrincipalFam, logic.Atom(lf.This("may-read"), lf.Var(0, "K")))))),
	}
	for _, p := range props {
		text := PrintProp(p)
		back, err := ParseProp(text, scope())
		if err != nil {
			t.Errorf("round trip parse of %q: %v", text, err)
			continue
		}
		eq, err := logic.PropEqual(back, p)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("round trip changed %s -> %s (text %q)", p, back, text)
		}
	}

	conds := []logic.Cond{
		logic.True,
		logic.Before(42),
		logic.Spent(op),
		logic.Unspent(op),
		logic.And(logic.Before(1), logic.Not(logic.Spent(op)), logic.True),
		logic.Not(logic.And(logic.Before(1), logic.Before(2))),
	}
	for _, c := range conds {
		text := PrintCond(c)
		back, err := ParseCond(text, scope())
		if err != nil {
			t.Errorf("round trip parse of %q: %v", text, err)
			continue
		}
		eq, err := logic.CondEqual(back, c)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("round trip changed %s -> %s", c, back)
		}
	}

	terms := []lf.Term{
		lf.Nat(7),
		lf.Principal(alice),
		lf.Add(lf.Nat(1), lf.Nat(2)),
		lf.Lam("n", lf.NatFam, lf.Add(lf.Var(0, "n"), lf.Nat(1))),
		lf.App(lf.PlusIntro, lf.Nat(2), lf.Nat(3)),
		lf.Lam("f", lf.Arrow(lf.NatFam, lf.NatFam), lf.App(lf.Var(0, "f"), lf.Nat(9))),
	}
	for _, m := range terms {
		text := PrintTerm(m)
		back, err := ParseTerm(text, scope())
		if err != nil {
			t.Errorf("round trip parse of %q: %v", text, err)
			continue
		}
		eq, err := lf.TermEqual(back, m)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("round trip changed %s -> %s", m, back)
		}
	}

	kinds := []lf.Kind{
		lf.KType{},
		lf.KProp{},
		lf.KArrow(lf.NatFam, lf.KProp{}),
		lf.KArrow(lf.PrincipalFam, lf.KArrow(lf.NatFam, lf.KType{})),
	}
	for _, k := range kinds {
		text := PrintKind(k)
		back, err := ParseKind(text, scope())
		if err != nil {
			t.Errorf("round trip parse of %q: %v", text, err)
			continue
		}
		if back.String() != k.String() {
			t.Errorf("round trip changed %s -> %s", k, back)
		}
	}
}

// TestPropertyRoundTrip generates random propositions and checks the
// print/parse round trip.
func TestPropertyRoundTrip(t *testing.T) {
	var build func(depth int, binders int, seed uint64) logic.Prop
	var buildTerm func(binders int, seed uint64) lf.Term
	buildTerm = func(binders int, seed uint64) lf.Term {
		if binders > 0 && seed%3 == 0 {
			return lf.Var(int(seed/3)%binders, "u")
		}
		return lf.Nat(seed % 50)
	}
	build = func(depth, binders int, seed uint64) logic.Prop {
		if depth == 0 {
			switch seed % 3 {
			case 0:
				return logic.One
			case 1:
				return logic.Atom(lf.This("coin"), buildTerm(binders, seed/3))
			default:
				return logic.Zero
			}
		}
		switch seed % 8 {
		case 0:
			return logic.PLolli{A: build(depth-1, binders, seed/8), B: build(depth-1, binders, seed/8+1)}
		case 1:
			return logic.PTensor{A: build(depth-1, binders, seed/8), B: build(depth-1, binders, seed/8+1)}
		case 2:
			return logic.PWith{A: build(depth-1, binders, seed/8), B: build(depth-1, binders, seed/8+1)}
		case 3:
			return logic.PPlus{A: build(depth-1, binders, seed/8), B: build(depth-1, binders, seed/8+1)}
		case 4:
			return logic.Bang(build(depth-1, binders, seed/8))
		case 5:
			return logic.Forall("n", lf.NatFam, build(depth-1, binders+1, seed/8))
		case 6:
			return logic.Exists("m", lf.NatFam, build(depth-1, binders+1, seed/8))
		default:
			return logic.If(logic.Before(seed%1000), build(depth-1, binders, seed/8))
		}
	}
	f := func(seed uint64) bool {
		p := build(4, 0, seed)
		back, err := ParseProp(PrintProp(p), scope())
		if err != nil {
			t.Logf("parse failure for %q: %v", PrintProp(p), err)
			return false
		}
		eq, err := logic.PropEqual(back, p)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPrintBasis(t *testing.T) {
	b := logic.NewBasis(nil)
	if err := b.DeclareFam(lf.This("coin"), lf.KArrow(lf.NatFam, lf.KProp{})); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareProp(lf.This("issue"),
		logic.Forall("n", lf.NatFam, logic.Atom(lf.This("coin"), lf.Var(0, "n")))); err != nil {
		t.Fatal(err)
	}
	out := PrintBasis(b)
	if !strings.Contains(out, "coin : nat -> prop.") {
		t.Errorf("basis printing: %q", out)
	}
	if !strings.Contains(out, "issue : all n:nat. this.coin n.") {
		t.Errorf("basis printing: %q", out)
	}
}

func TestParseBasis(t *testing.T) {
	src := `
% The newcoin basis of Section 6, in concrete syntax.
coin  : nat -> prop.
merge : all N:nat. all M:nat. all P:nat.
        (some x:plus N M P. 1) -o coin N * coin M -o coin P.
split : all N:nat. all M:nat. all P:nat.
        (some x:plus N M P. 1) -o coin P -o coin N * coin M.
seed  : coin 100.
`
	sc := NewScope(false)
	b, err := ParseBasis(src, sc)
	if err != nil {
		t.Fatalf("ParseBasis: %v", err)
	}
	if got := len(b.LocalFamRefs()); got != 1 {
		t.Errorf("family decls = %d, want 1", got)
	}
	if got := len(b.LocalPropRefs()); got != 3 {
		t.Errorf("prop decls = %d, want 3 (merge, split, seed)", got)
	}
	// The declared kind is right.
	k, ok := b.LookupFamConst(lf.This("coin"))
	if !ok {
		t.Fatal("coin not declared")
	}
	eq, err := lf.KindEqual(k, lf.KArrow(lf.NatFam, lf.KProp{}))
	if err != nil || !eq {
		t.Errorf("coin kind = %s", k)
	}
	// merge matches the hand-built proposition.
	merge, ok := b.LookupProp(lf.This("merge"))
	if !ok {
		t.Fatal("merge not declared")
	}
	coinP := func(m lf.Term) logic.Prop { return logic.Atom(lf.This("coin"), m) }
	want := logic.Forall("N", lf.NatFam, logic.Forall("M", lf.NatFam, logic.Forall("P", lf.NatFam,
		logic.Lolli(
			logic.Exists("x", lf.FamApp(lf.PlusFam, lf.Var(2, "N"), lf.Var(1, "M"), lf.Var(0, "P")), logic.One),
			logic.Tensor(coinP(lf.Var(2, "N")), coinP(lf.Var(1, "M"))),
			coinP(lf.Var(0, "P"))))))
	if eq, _ := logic.PropEqual(merge, want); !eq {
		t.Errorf("merge = %s\nwant   %s", PrintProp(merge), PrintProp(want))
	}
	// The basis round-trips through PrintBasis.
	b2, err := ParseBasis(PrintBasis(b), NewScope(true))
	if err != nil {
		t.Fatalf("reparse printed basis: %v", err)
	}
	m2, _ := b2.LookupProp(lf.This("merge"))
	if eq, _ := logic.PropEqual(m2, merge); !eq {
		t.Error("merge changed through PrintBasis round trip")
	}
	// And it passes the formation + freshness checks.
	if err := logic.FreshBasis(b); err != nil {
		t.Errorf("parsed basis not fresh: %v", err)
	}
}

func TestParseBasisErrors(t *testing.T) {
	bad := []string{
		"coin nat -> prop.",   // missing colon
		"coin : nat -> prop",  // missing dot
		": nat -> prop.",      // missing name
		"coin : ] broken [.",  // lex error
		"a : prop. a : prop.", // duplicate
	}
	for _, src := range bad {
		if _, err := ParseBasis(src, NewScope(false)); err == nil {
			t.Errorf("ParseBasis(%q) succeeded", src)
		}
	}
}

func TestParseSaysBoundVariable(t *testing.T) {
	// The affirming principal may be a bound variable:
	// all K:principal. <K> tok  (the "issue" pattern of Section 6.1).
	got := mustParseProp(t, "all K:principal. <K> tok")
	want := logic.Forall("K", lf.PrincipalFam,
		logic.Says(lf.Var(0, "K"), logic.Atom(lf.This("tok"))))
	if eq, _ := logic.PropEqual(got, want); !eq {
		t.Errorf("got %s, want %s", PrintProp(got), PrintProp(want))
	}
	// And it round-trips.
	back, err := ParseProp(PrintProp(want), scope())
	if err != nil {
		t.Fatal(err)
	}
	if eq, _ := logic.PropEqual(back, want); !eq {
		t.Error("round trip changed the bound-principal affirmation")
	}
}
