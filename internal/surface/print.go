package surface

import (
	"fmt"
	"strings"

	"typecoin/internal/lf"
	"typecoin/internal/logic"
)

// Full-fidelity printing: the output is accepted by the parser and
// elaborates to the same (alpha-equivalent) syntax — the F1 round-trip
// property. Unlike the diagnostic printers in lf and logic, principals
// print in full and binder names are freshened against both enclosing
// binders and a reserved word list.

var reserved = map[string]bool{
	"all": true, "some": true, "if": true, "receipt": true,
	"before": true, "spent": true, "true": true,
	"type": true, "prop": true, "Pi": true, "this": true,
	"principal": true, "nat": true, "time": true,
	"add": true, "plus": true, "plus_intro": true,
}

func freshen(hint string, names []string) string {
	if hint == "" || hint == "_" {
		hint = "u"
	}
	for reserved[hint] || contains(names, hint) {
		hint += "'"
	}
	return hint
}

func contains(names []string, s string) bool {
	for _, n := range names {
		if n == s {
			return true
		}
	}
	return false
}

// PrintTerm renders an LF term.
func PrintTerm(t lf.Term) string { return printTerm(t, nil, false) }

func printTerm(t lf.Term, names []string, paren bool) string {
	switch t := t.(type) {
	case lf.TVar:
		if t.Index < len(names) {
			return names[len(names)-1-t.Index]
		}
		return fmt.Sprintf("_free%d", t.Index)
	case lf.TConst:
		return t.Ref.String()
	case lf.TNat:
		return fmt.Sprintf("%d", t.N)
	case lf.TPrincipal:
		return "#" + t.K.String()
	case lf.TLam:
		name := freshen(t.Hint, names)
		s := fmt.Sprintf("\\%s:%s. %s", name, printFamily(t.Arg, names, false),
			printTerm(t.Body, append(names, name), false))
		if paren {
			return "(" + s + ")"
		}
		return s
	case lf.TApp:
		s := fmt.Sprintf("%s %s", printTerm(t.Fn, names, headNeedsParen(t.Fn)),
			printTerm(t.Arg, names, argNeedsParen(t.Arg)))
		if paren {
			return "(" + s + ")"
		}
		return s
	default:
		return "?term"
	}
}

func headNeedsParen(t lf.Term) bool {
	_, isLam := t.(lf.TLam)
	return isLam
}

func argNeedsParen(t lf.Term) bool {
	switch t.(type) {
	case lf.TApp, lf.TLam:
		return true
	}
	return false
}

// PrintFamily renders an LF family.
func PrintFamily(f lf.Family) string { return printFamily(f, nil, false) }

func printFamily(f lf.Family, names []string, paren bool) string {
	switch f := f.(type) {
	case lf.FConst:
		return f.Ref.String()
	case lf.FApp:
		s := fmt.Sprintf("%s %s", printFamily(f.Fam, names, false),
			printTerm(f.Arg, names, argNeedsParen(f.Arg)))
		if paren {
			return "(" + s + ")"
		}
		return s
	case lf.FPi:
		var s string
		if lf.FamilyUsesVar(f.Body, 0) {
			name := freshen(f.Hint, names)
			s = fmt.Sprintf("Pi %s:%s. %s", name, printFamily(f.Arg, names, false),
				printFamily(f.Body, append(names, name), false))
		} else {
			s = fmt.Sprintf("%s -> %s", printFamily(f.Arg, names, true),
				printFamily(lf.SubstFamily(f.Body, 0, lf.Nat(0)), names, false))
		}
		if paren {
			return "(" + s + ")"
		}
		return s
	default:
		return "?family"
	}
}

// PrintKind renders an LF kind.
func PrintKind(k lf.Kind) string { return printKind(k, nil) }

func printKind(k lf.Kind, names []string) string {
	switch k := k.(type) {
	case lf.KType:
		return "type"
	case lf.KProp:
		return "prop"
	case lf.KPi:
		if lf.KindUsesVar(k.Body, 0) {
			name := freshen(k.Hint, names)
			return fmt.Sprintf("Pi %s:%s. %s", name, printFamily(k.Arg, names, false),
				printKind(k.Body, append(names, name)))
		}
		return fmt.Sprintf("%s -> %s", printFamily(k.Arg, names, true),
			printKind(lf.SubstKind(k.Body, 0, lf.Nat(0)), names))
	default:
		return "?kind"
	}
}

// PrintProp renders a proposition. Precedence levels mirror the parser:
// lolli/quantifiers (1) < plus (2) < with (3) < tensor (4) < prefix (5).
func PrintProp(p logic.Prop) string { return printProp(p, nil, 1) }

func printProp(p logic.Prop, names []string, prec int) string {
	wrap := func(s string, level int) string {
		if prec > level {
			return "(" + s + ")"
		}
		return s
	}
	switch p := p.(type) {
	case logic.PAtom:
		return printFamily(p.Fam, names, false)
	case logic.PLolli:
		return wrap(printProp(p.A, names, 2)+" -o "+printProp(p.B, names, 1), 1)
	case logic.PPlus:
		return wrap(printProp(p.A, names, 2)+" + "+printProp(p.B, names, 3), 2)
	case logic.PWith:
		return wrap(printProp(p.A, names, 3)+" & "+printProp(p.B, names, 4), 3)
	case logic.PTensor:
		return wrap(printProp(p.A, names, 4)+" * "+printProp(p.B, names, 5), 4)
	case logic.PZero:
		return "0"
	case logic.POne:
		return "1"
	case logic.PBang:
		return "!" + printProp(p.A, names, 5)
	case logic.PForall:
		name := freshen(p.Hint, names)
		return wrap(fmt.Sprintf("all %s:%s. %s", name, printFamily(p.Ty, names, false),
			printProp(p.Body, append(names, name), 1)), 1)
	case logic.PExists:
		name := freshen(p.Hint, names)
		return wrap(fmt.Sprintf("some %s:%s. %s", name, printFamily(p.Ty, names, false),
			printProp(p.Body, append(names, name), 1)), 1)
	case logic.PSays:
		return wrap("<"+printTerm(p.Prin, names, false)+"> "+printProp(p.Body, names, 5), 5)
	case logic.PReceipt:
		if p.Res == nil {
			return fmt.Sprintf("receipt(%d ->> %s)", p.Amount, printTerm(p.To, names, false))
		}
		return fmt.Sprintf("receipt(%s / %d ->> %s)",
			printProp(p.Res, names, 1), p.Amount, printTerm(p.To, names, false))
	case logic.PIf:
		return fmt.Sprintf("if(%s, %s)", printCond(p.Cond, names), printProp(p.Body, names, 1))
	default:
		return "?prop"
	}
}

// PrintCond renders a condition.
func PrintCond(c logic.Cond) string { return printCond(c, nil) }

func printCond(c logic.Cond, names []string) string {
	switch c := c.(type) {
	case logic.CTrue:
		return "true"
	case logic.CAnd:
		return condAtom(c.L, names) + " /\\ " + condAtom(c.R, names)
	case logic.CNot:
		return "~" + condAtom(c.C, names)
	case logic.CBefore:
		return fmt.Sprintf("before(%s)", printTerm(c.T, names, false))
	case logic.CSpent:
		return fmt.Sprintf("spent(%s.%d)", c.Out.Hash, c.Out.Index)
	default:
		return "?cond"
	}
}

func condAtom(c logic.Cond, names []string) string {
	if _, ok := c.(logic.CAnd); ok {
		return "(" + printCond(c, names) + ")"
	}
	return printCond(c, names)
}

// PrintBasis renders a basis's local declarations as parsable lines:
// "name : classifier." — families first, then terms, then propositions.
func PrintBasis(b *logic.Basis) string {
	var sb strings.Builder
	for _, r := range b.LocalFamRefs() {
		k, _ := b.LocalFam(r)
		fmt.Fprintf(&sb, "%s : %s.\n", r.Label, PrintKind(k))
	}
	for _, r := range b.LocalTermRefs() {
		f, _ := b.LocalTerm(r)
		fmt.Fprintf(&sb, "%s : %s.\n", r.Label, PrintFamily(f))
	}
	for _, r := range b.LocalPropRefs() {
		p, _ := b.LocalProp(r)
		fmt.Fprintf(&sb, "%s : %s.\n", r.Label, PrintProp(p))
	}
	return sb.String()
}
