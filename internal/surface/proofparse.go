package surface

import (
	"encoding/hex"
	"fmt"

	"typecoin/internal/bkey"
	"typecoin/internal/proof"
)

// Concrete syntax for proof terms, mirroring the paper's notation:
//
//	x                              hypothesis
//	use, this.use, txid64.use      proof constants
//	\x:A. M                        lolli introduction
//	M N                            application
//	M [m]                          index application
//	unit                           1 introduction
//	pair(M, N)                     tensor introduction
//	let x * y = M in N             tensor elimination
//	let unit = M in N              1 elimination
//	<M, N>  fst M  snd M           alternative conjunction
//	inl[A+B] M   inr[A+B] M        sum introduction (annotated)
//	case M of inl x => N | inr y => P
//	abort[A] M                     0 elimination (annotated)
//	!M   let !x = M in N           exponential
//	/\u:t. M                       index abstraction
//	pack[m : A](M)                 existential introduction (A = the existential)
//	let (u, x) = unpack M in N     existential elimination
//	sayreturn[m] M                 affirmation unit
//	saybind x = M in N             affirmation bind
//	assert(keyhex, sighex, A)      affine primitive affirmation
//	assert!(keyhex, sighex, A)     persistent primitive affirmation
//	ifreturn[phi] M  ifweaken[phi] M  ifsay M
//	ifbind x = M in N
//
// Binders extend as far right as possible; application associates left.

// proofKeywords are identifiers with special meaning in proof-term
// position; they cannot name hypotheses.
var proofKeywords = map[string]bool{
	"let": true, "in": true, "case": true, "of": true,
	"inl": true, "inr": true, "fst": true, "snd": true,
	"abort": true, "pack": true, "unpack": true, "unit": true,
	"pair": true, "sayreturn": true, "saybind": true, "assert": true,
	"ifreturn": true, "ifbind": true, "ifweaken": true, "ifsay": true,
}

// ParseProof parses a proof term. Bare identifiers resolve first as
// bound hypothesis names, then through the scope as proof constants.
func ParseProof(src string, sc Scope) (proof.Term, error) {
	p, err := newParser(src, sc)
	if err != nil {
		return nil, err
	}
	out, err := p.parseProofTerm()
	if err != nil {
		return nil, err
	}
	return out, p.finish()
}

// proofBinds tracks proof-variable names so they shadow constants. We
// reuse the parser's LF binder stack for index variables and keep a
// separate set for proof hypotheses.
func (p *parser) bindProof(name string) func() {
	p.proofVars = append(p.proofVars, name)
	return func() { p.proofVars = p.proofVars[:len(p.proofVars)-1] }
}

func (p *parser) isProofVar(name string) bool {
	for _, v := range p.proofVars {
		if v == name {
			return true
		}
	}
	return false
}

// parseProofTerm parses binders and applications.
func (p *parser) parseProofTerm() (proof.Term, error) {
	t := p.peek()
	switch {
	case t.kind == tokLambda:
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		ty, err := p.parseProp()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		unbind := p.bindProof(name.text)
		body, err := p.parseProofTerm()
		unbind()
		if err != nil {
			return nil, err
		}
		return proof.Lam{Name: name.text, Ty: ty, Body: body}, nil

	case t.kind == tokWedge: // /\u:t. M
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		ty, err := p.parseFamily()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		p.binds = append(p.binds, name.text)
		body, err := p.parseProofTerm()
		p.binds = p.binds[:len(p.binds)-1]
		if err != nil {
			return nil, err
		}
		return proof.TLam{Hint: name.text, Ty: ty, Body: body}, nil

	case t.kind == tokIdent && t.text == "let":
		return p.parseProofLet()

	case t.kind == tokIdent && t.text == "case":
		p.next()
		of, err := p.parseProofApp()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("of"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("inl"); err != nil {
			return nil, err
		}
		lname, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDArrow); err != nil {
			return nil, err
		}
		unbindL := p.bindProof(lname.text)
		l, err := p.parseProofTerm()
		unbindL()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPipe); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("inr"); err != nil {
			return nil, err
		}
		rname, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDArrow); err != nil {
			return nil, err
		}
		unbindR := p.bindProof(rname.text)
		r, err := p.parseProofTerm()
		unbindR()
		if err != nil {
			return nil, err
		}
		return proof.Case{Of: of, LName: lname.text, L: l, RName: rname.text, R: r}, nil

	case t.kind == tokIdent && (t.text == "saybind" || t.text == "ifbind"):
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEquals); err != nil {
			return nil, err
		}
		of, err := p.parseProofTerm()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("in"); err != nil {
			return nil, err
		}
		unbind := p.bindProof(name.text)
		body, err := p.parseProofTerm()
		unbind()
		if err != nil {
			return nil, err
		}
		if t.text == "saybind" {
			return proof.SayBind{Name: name.text, Of: of, Body: body}, nil
		}
		return proof.IfBind{Name: name.text, Of: of, Body: body}, nil

	default:
		return p.parseProofApp()
	}
}

// parseProofLet handles the let family.
func (p *parser) parseProofLet() (proof.Term, error) {
	p.next() // 'let'
	t := p.peek()
	switch {
	case t.kind == tokBang: // let !x = M in N
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		of, body, err := p.parseLetTail(name.text)
		if err != nil {
			return nil, err
		}
		return proof.LetBang{Name: name.text, Of: of, Body: body}, nil

	case t.kind == tokIdent && t.text == "unit": // let unit = M in N
		p.next()
		if _, err := p.expect(tokEquals); err != nil {
			return nil, err
		}
		of, err := p.parseProofTerm()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("in"); err != nil {
			return nil, err
		}
		body, err := p.parseProofTerm()
		if err != nil {
			return nil, err
		}
		return proof.LetUnit{Of: of, Body: body}, nil

	case t.kind == tokLParen: // let (u, x) = unpack M in N
		p.next()
		uname, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		xname, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEquals); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("unpack"); err != nil {
			return nil, err
		}
		of, err := p.parseProofTerm()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("in"); err != nil {
			return nil, err
		}
		p.binds = append(p.binds, uname.text)
		unbind := p.bindProof(xname.text)
		body, err := p.parseProofTerm()
		unbind()
		p.binds = p.binds[:len(p.binds)-1]
		if err != nil {
			return nil, err
		}
		return proof.Unpack{Hint: uname.text, Name: xname.text, Of: of, Body: body}, nil

	default: // let x * y = M in N
		lname, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokStar); err != nil {
			return nil, err
		}
		rname, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEquals); err != nil {
			return nil, err
		}
		of, err := p.parseProofTerm()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("in"); err != nil {
			return nil, err
		}
		unbindL := p.bindProof(lname.text)
		unbindR := p.bindProof(rname.text)
		body, err := p.parseProofTerm()
		unbindR()
		unbindL()
		if err != nil {
			return nil, err
		}
		return proof.LetPair{LName: lname.text, RName: rname.text, Of: of, Body: body}, nil
	}
}

// parseLetTail parses "= M in N", binding name in N.
func (p *parser) parseLetTail(name string) (of, body proof.Term, err error) {
	if _, err = p.expect(tokEquals); err != nil {
		return nil, nil, err
	}
	if of, err = p.parseProofTerm(); err != nil {
		return nil, nil, err
	}
	if err = p.expectKeyword("in"); err != nil {
		return nil, nil, err
	}
	unbind := p.bindProof(name)
	body, err = p.parseProofTerm()
	unbind()
	return of, body, err
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != kw {
		return &SyntaxError{t.pos, fmt.Sprintf("expected %q, found %q", kw, t.text)}
	}
	return nil
}

// parseProofApp parses application spines with [m] index arguments.
func (p *parser) parseProofApp() (proof.Term, error) {
	head, err := p.parseProofPrefix()
	if err != nil {
		return nil, err
	}
	for {
		if p.at(tokLBracket) {
			p.next()
			arg, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			head = proof.TApp{Fn: head, Arg: arg}
			continue
		}
		if p.startsProofAtom() {
			arg, err := p.parseProofPrefix()
			if err != nil {
				return nil, err
			}
			head = proof.App{Fn: head, Arg: arg}
			continue
		}
		return head, nil
	}
}

func (p *parser) startsProofAtom() bool {
	t := p.peek()
	switch t.kind {
	case tokLParen, tokLAngle, tokBang:
		return true
	case tokNumber:
		// txid64.label constants.
		return len(t.text) == 64 && isAllHex(t.text) && p.toks[p.pos+1].kind == tokDot
	case tokIdent:
		switch t.text {
		case "in", "of": // binder terminators
			return false
		}
		if proofKeywords[t.text] {
			switch t.text {
			case "unit", "pair", "fst", "snd", "inl", "inr", "abort",
				"pack", "sayreturn", "assert", "ifreturn", "ifweaken", "ifsay":
				return true
			}
			return false
		}
		return true
	}
	return false
}

// parseProofPrefix parses ! and keyword-prefixed forms, then atoms.
func (p *parser) parseProofPrefix() (proof.Term, error) {
	t := p.peek()
	switch {
	case t.kind == tokBang:
		p.next()
		of, err := p.parseProofPrefix()
		if err != nil {
			return nil, err
		}
		return proof.BangI{Of: of}, nil
	case t.kind == tokIdent:
		switch t.text {
		case "fst", "snd", "ifsay":
			p.next()
			of, err := p.parseProofPrefix()
			if err != nil {
				return nil, err
			}
			switch t.text {
			case "fst":
				return proof.Fst{Of: of}, nil
			case "snd":
				return proof.Snd{Of: of}, nil
			default:
				return proof.IfSay{Of: of}, nil
			}
		case "inl", "inr", "abort":
			p.next()
			if _, err := p.expect(tokLBracket); err != nil {
				return nil, err
			}
			as, err := p.parseProp()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			of, err := p.parseProofPrefix()
			if err != nil {
				return nil, err
			}
			switch t.text {
			case "inl":
				return proof.Inl{As: as, Of: of}, nil
			case "inr":
				return proof.Inr{As: as, Of: of}, nil
			default:
				return proof.Abort{As: as, Of: of}, nil
			}
		case "sayreturn":
			p.next()
			if _, err := p.expect(tokLBracket); err != nil {
				return nil, err
			}
			prin, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			of, err := p.parseProofPrefix()
			if err != nil {
				return nil, err
			}
			return proof.SayReturn{Prin: prin, Of: of}, nil
		case "ifreturn", "ifweaken":
			p.next()
			if _, err := p.expect(tokLBracket); err != nil {
				return nil, err
			}
			cond, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			of, err := p.parseProofPrefix()
			if err != nil {
				return nil, err
			}
			if t.text == "ifreturn" {
				return proof.IfReturn{Cond: cond, Of: of}, nil
			}
			return proof.IfWeaken{Cond: cond, Of: of}, nil
		case "pack":
			p.next()
			if _, err := p.expect(tokLBracket); err != nil {
				return nil, err
			}
			witness, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokColon); err != nil {
				return nil, err
			}
			as, err := p.parseProp()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			of, err := p.parseProofTerm()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return proof.Pack{Witness: witness, As: as, Of: of}, nil
		case "assert":
			return p.parseAssert()
		}
	}
	return p.parseProofAtom()
}

// parseAssert parses assert(keyhex, sighex, A) and assert!(...).
func (p *parser) parseAssert() (proof.Term, error) {
	p.next() // 'assert'
	persistent := false
	if p.at(tokBang) {
		p.next()
		persistent = true
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	keyTok := p.next()
	if keyTok.kind != tokIdent && keyTok.kind != tokNumber {
		return nil, &SyntaxError{keyTok.pos, "expected a hex public key"}
	}
	keyRaw, err := hex.DecodeString(keyTok.text)
	if err != nil {
		return nil, &SyntaxError{keyTok.pos, "bad key hex: " + err.Error()}
	}
	key, err := bkey.ParsePubKey(keyRaw)
	if err != nil {
		return nil, &SyntaxError{keyTok.pos, err.Error()}
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	sigTok := p.next()
	if sigTok.kind != tokIdent && sigTok.kind != tokNumber {
		return nil, &SyntaxError{sigTok.pos, "expected a hex signature"}
	}
	sigRaw, err := hex.DecodeString(sigTok.text)
	if err != nil {
		return nil, &SyntaxError{sigTok.pos, "bad signature hex: " + err.Error()}
	}
	sig, err := bkey.ParseSignature(sigRaw)
	if err != nil {
		return nil, &SyntaxError{sigTok.pos, err.Error()}
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	prop, err := p.parseProp()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return proof.Assert{Key: key, Prop: prop, Sig: sig, Persistent: persistent}, nil
}

// parseProofAtom parses leaves.
func (p *parser) parseProofAtom() (proof.Term, error) {
	t := p.peek()
	switch t.kind {
	case tokLParen:
		p.next()
		m, err := p.parseProofTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return m, nil
	case tokLAngle: // <M, N>
		p.next()
		l, err := p.parseProofTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		r, err := p.parseProofTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRAngle); err != nil {
			return nil, err
		}
		return proof.WithPair{L: l, R: r}, nil
	case tokIdent:
		switch t.text {
		case "unit":
			p.next()
			return proof.Unit{}, nil
		case "pair":
			p.next()
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			l, err := p.parseProofTerm()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokComma); err != nil {
				return nil, err
			}
			r, err := p.parseProofTerm()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return proof.Pair{L: l, R: r}, nil
		}
		if proofKeywords[t.text] {
			return nil, &SyntaxError{t.pos, fmt.Sprintf("unexpected keyword %q", t.text)}
		}
		// Hypothesis name or proof constant.
		if p.isProofVar(t.text) {
			p.next()
			return proof.V(t.text), nil
		}
		ref, err := p.parseRef()
		if err != nil {
			return nil, err
		}
		return proof.Const{Ref: ref}, nil
	case tokNumber:
		if len(t.text) == 64 && isAllHex(t.text) && p.toks[p.pos+1].kind == tokDot {
			ref, err := p.parseRef()
			if err != nil {
				return nil, err
			}
			return proof.Const{Ref: ref}, nil
		}
		return nil, &SyntaxError{t.pos, "a bare number is not a proof term"}
	default:
		return nil, &SyntaxError{t.pos, fmt.Sprintf("expected a proof term, found %v", t.kind)}
	}
}
