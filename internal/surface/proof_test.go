package surface

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"typecoin/internal/bkey"
	"typecoin/internal/lf"
	"typecoin/internal/logic"
	"typecoin/internal/proof"
)

type detEntropy struct{ state [32]byte }

func (d *detEntropy) Read(p []byte) (int, error) {
	for i := range p {
		if i%32 == 0 {
			d.state = sha256.Sum256(d.state[:])
		}
		p[i] = d.state[i%32]
	}
	return len(p), nil
}

// proofEq compares proof terms via their canonical encoding.
func proofEq(a, b proof.Term) bool {
	var ba, bb bytes.Buffer
	if proof.Encode(&ba, a) != nil || proof.Encode(&bb, b) != nil {
		return false
	}
	return bytes.Equal(ba.Bytes(), bb.Bytes())
}

func proofScope() *MapScope {
	return NewScope(true)
}

func TestParseProofBasics(t *testing.T) {
	a := logic.Atom(lf.This("a"))
	cases := []struct {
		src  string
		want proof.Term
	}{
		{`\x:a. x`, proof.Lam{Name: "x", Ty: a, Body: proof.V("x")}},
		{`unit`, proof.Unit{}},
		{`pair(unit, unit)`, proof.Pair{L: proof.Unit{}, R: proof.Unit{}}},
		{`let x * y = p in pair(y, x)`,
			proof.LetPair{LName: "x", RName: "y", Of: proof.Const{Ref: lf.This("p")},
				Body: proof.Pair{L: proof.V("y"), R: proof.V("x")}}},
		{`let unit = u in unit`,
			proof.LetUnit{Of: proof.Const{Ref: lf.This("u")}, Body: proof.Unit{}}},
		{`<unit, unit>`, proof.WithPair{L: proof.Unit{}, R: proof.Unit{}}},
		{`fst w`, proof.Fst{Of: proof.Const{Ref: lf.This("w")}}},
		{`snd w`, proof.Snd{Of: proof.Const{Ref: lf.This("w")}}},
		{`inl[a + a] unit`, proof.Inl{As: logic.Plus(a, a), Of: proof.Unit{}}},
		{`case s of inl x => x | inr y => y`,
			proof.Case{Of: proof.Const{Ref: lf.This("s")},
				LName: "x", L: proof.V("x"), RName: "y", R: proof.V("y")}},
		{`abort[a] z`, proof.Abort{As: a, Of: proof.Const{Ref: lf.This("z")}}},
		{`!unit`, proof.BangI{Of: proof.Unit{}}},
		{`let !x = u in pair(x, x)`,
			proof.LetBang{Name: "x", Of: proof.Const{Ref: lf.This("u")},
				Body: proof.Pair{L: proof.V("x"), R: proof.V("x")}}},
		{`/\n:nat. unit`, proof.TLam{Hint: "n", Ty: lf.NatFam, Body: proof.Unit{}}},
		{`f [7]`, proof.TApp{Fn: proof.Const{Ref: lf.This("f")}, Arg: lf.Nat(7)}},
		{`pack[3 : some n:nat. 1](unit)`,
			proof.Pack{Witness: lf.Nat(3),
				As: logic.Exists("n", lf.NatFam, logic.One), Of: proof.Unit{}}},
		{`let (n, x) = unpack e in x`,
			proof.Unpack{Hint: "n", Name: "x", Of: proof.Const{Ref: lf.This("e")},
				Body: proof.V("x")}},
		{`saybind x = s in sayreturn[#0000000000000000000000000000000000000000] x`,
			proof.SayBind{Name: "x", Of: proof.Const{Ref: lf.This("s")},
				Body: proof.SayReturn{Prin: lf.Principal(bkey.Principal{}), Of: proof.V("x")}}},
		{`ifbind x = s in ifreturn[before(9)] x`,
			proof.IfBind{Name: "x", Of: proof.Const{Ref: lf.This("s")},
				Body: proof.IfReturn{Cond: logic.Before(9), Of: proof.V("x")}}},
		{`ifweaken[true] s`, proof.IfWeaken{Cond: logic.True, Of: proof.Const{Ref: lf.This("s")}}},
		{`ifsay s`, proof.IfSay{Of: proof.Const{Ref: lf.This("s")}}},
		// Application is left-associative; binders extend right.
		{`f x y`, proof.Apply(proof.Const{Ref: lf.This("f")},
			proof.Const{Ref: lf.This("x")}, proof.Const{Ref: lf.This("y")})},
		{`\x:a. f x`, proof.Lam{Name: "x", Ty: a,
			Body: proof.App{Fn: proof.Const{Ref: lf.This("f")}, Arg: proof.V("x")}}},
	}
	for _, tc := range cases {
		got, err := ParseProof(tc.src, proofScope())
		if err != nil {
			t.Errorf("ParseProof(%q): %v", tc.src, err)
			continue
		}
		if !proofEq(got, tc.want) {
			t.Errorf("ParseProof(%q) = %s, want %s", tc.src, got, tc.want)
		}
	}
}

func TestParseProofErrors(t *testing.T) {
	bad := []string{
		``,
		`\x. x`,                // missing annotation
		`let x y = p in x`,     // malformed let
		`case s of inl x => x`, // missing arm
		`pack[3](unit)`,        // missing annotation
		`pair(unit)`,           // arity
		`fst`,                  // missing operand
		`let`, `in`,            // stray keywords
		`assert(zz, zz, 1)`, // bad hex
	}
	for _, src := range bad {
		if _, err := ParseProof(src, proofScope()); err == nil {
			t.Errorf("ParseProof(%q) succeeded", src)
		}
	}
}

// TestProofRoundTrip: PrintProof output reparses to the same term for
// every constructor, including a full end-to-end check through the proof
// checker.
func TestProofRoundTrip(t *testing.T) {
	key, err := bkey.NewPrivateKey(&detEntropy{state: sha256.Sum256([]byte("surface"))})
	if err != nil {
		t.Fatal(err)
	}
	a := logic.Atom(lf.This("a"))
	sig, err := proof.SignPersistent(key, a)
	if err != nil {
		t.Fatal(err)
	}
	terms := []proof.Term{
		proof.Lam{Name: "x", Ty: a, Body: proof.V("x")},
		proof.Lam{Name: "p", Ty: logic.Tensor(a, a),
			Body: proof.LetPair{LName: "x", RName: "y", Of: proof.V("p"),
				Body: proof.Pair{L: proof.V("y"), R: proof.V("x")}}},
		proof.WithPair{L: proof.Unit{}, R: proof.Fst{Of: proof.Const{Ref: lf.This("w")}}},
		proof.Case{Of: proof.Const{Ref: lf.This("s")},
			LName: "x", L: proof.Inl{As: logic.Plus(a, a), Of: proof.V("x")},
			RName: "y", R: proof.Inr{As: logic.Plus(a, a), Of: proof.V("y")}},
		proof.LetBang{Name: "m", Of: proof.Const{Ref: lf.This("u")},
			Body: proof.BangI{Of: proof.V("m")}},
		proof.TLam{Hint: "n", Ty: lf.NatFam,
			Body: proof.TApp{Fn: proof.Const{Ref: lf.This("f")}, Arg: lf.Var(0, "n")}},
		proof.Pack{Witness: lf.App(lf.PlusIntro, lf.Nat(2), lf.Nat(3)),
			As: logic.Exists("x", lf.FamApp(lf.PlusFam, lf.Nat(2), lf.Nat(3), lf.Nat(5)), logic.One),
			Of: proof.Unit{}},
		proof.Unpack{Hint: "n", Name: "x", Of: proof.Const{Ref: lf.This("e")},
			Body: proof.V("x")},
		proof.SayBind{Name: "f", Of: proof.Assert{Key: key.PubKey(), Prop: a, Sig: sig, Persistent: true},
			Body: proof.SayReturn{Prin: lf.Principal(key.Principal()), Of: proof.V("f")}},
		proof.IfBind{Name: "z",
			Of: proof.IfWeaken{Cond: logic.And(logic.Before(10), logic.True),
				Of: proof.IfSay{Of: proof.Const{Ref: lf.This("s")}}},
			Body: proof.IfReturn{Cond: logic.And(logic.Before(10), logic.True), Of: proof.V("z")}},
		proof.Abort{As: a, Of: proof.Const{Ref: lf.This("z")}},
		proof.LetUnit{Of: proof.Unit{}, Body: proof.Unit{}},
	}
	for _, m := range terms {
		text := PrintProof(m)
		back, err := ParseProof(text, proofScope())
		if err != nil {
			t.Errorf("reparse of %q: %v", text, err)
			continue
		}
		if !proofEq(back, m) {
			t.Errorf("round trip changed:\n  term:  %s\n  text:  %s\n  back:  %s", m, text, back)
		}
	}
}

// TestParsedProofChecks: a proof written in concrete syntax passes the
// proof checker — the newcoin merge, end to end from text.
func TestParsedProofChecks(t *testing.T) {
	basisSrc := `
coin  : nat -> prop.
merge : all N:nat. all M:nat. all P:nat.
        (some x:plus N M P. 1) -o coin N * coin M -o coin P.
`
	sc := NewScope(false)
	b, err := ParseBasis(basisSrc, sc)
	if err != nil {
		t.Fatal(err)
	}
	proofSrc := `\p:coin 2 * coin 3.
	  merge [2] [3] [5] (pack[plus_intro 2 2 : some x:plus 2 3 5. 1](unit)) p`
	// Deliberate mistake first: plus_intro 2 2 witnesses 2+2=4, not
	// 2+3=5.
	m, err := ParseProof(proofSrc, sc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want, err := ParseProp("coin 2 * coin 3 -o coin 5", sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.Check(b, nil, m, want); err == nil {
		t.Fatal("wrong witness accepted")
	}
	// Now the correct witness.
	m2, err := ParseProof(`\p:coin 2 * coin 3.
	  merge [2] [3] [5] (pack[plus_intro 2 3 : some x:plus 2 3 5. 1](unit)) p`, sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.Check(b, nil, m2, want); err != nil {
		t.Fatalf("textual merge proof rejected: %v", err)
	}
}
